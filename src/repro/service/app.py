"""The scheduling service: parse → memoize → dispatch → respond.

:class:`SchedulingService` is the transport-agnostic core behind the HTTP
front-end (:mod:`repro.service.http`) and the ``repro submit`` client:

1. a request payload (canonical wire format, :mod:`repro.service.codec`)
   is parsed into a problem, a configured scheduler and a budget;
2. the content-addressed key (:mod:`repro.service.keys`) is looked up in
   the memoizing result store (:mod:`repro.service.cache`) — a hit
   replays the stored result fragment byte-for-byte with
   ``cache_hit: true``;
3. a miss is dispatched to the bounded job executor
   (:mod:`repro.service.executor`), which runs the registered scheduler,
   encodes the result, and populates both cache tiers;
4. ``stats()`` aggregates cache hit-rate, executor counters and p50/p95
   latencies for ``GET /v1/stats``.

Fabric lifecycle (see ``docs/service.md`` "Resilience & multi-node"):
:attr:`SchedulingService.ready` distinguishes readiness from liveness
(``/v1/readyz`` vs ``/v1/healthz``), :meth:`SchedulingService.drain`
performs the graceful shutdown contract (reject new work, finish
in-flight jobs, flush the disk cache), and ``degrade_on_timeout=True``
turns a per-job deadline overrun into a least-cost fallback response
marked ``degraded: true`` instead of a 504.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Mapping, Sequence
from concurrent.futures import Future
from typing import Any

from repro.algorithms import declared_params, get_scheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import (
    EventConflictError,
    InfeasibleBudgetError,
    LiveLogCorruptionError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    StaleEpochError,
    TransientServiceError,
    UnknownWorkflowError,
)
from repro.live.store import LiveWorkflowManager, PeerLink
from repro.service import codec
from repro.service.cache import ResultCache
from repro.service.executor import JobExecutor
from repro.service.jobs import percentile
from repro.service.keys import RequestKey, params_hash, problem_hash

__all__ = [
    "KeyedRequest",
    "ParsedRequest",
    "SchedulingService",
    "batch_group_key",
    "error_payload",
]

#: Algorithm used when a request does not name one.
DEFAULT_ALGORITHM = "critical-greedy"


@dataclasses.dataclass
class ParsedRequest:
    """A decoded, validated solve request ready for lookup or dispatch."""

    problem: MedCCProblem
    scheduler: Any
    algorithm: str
    budget: float
    timeout: float | None
    key: RequestKey


@dataclasses.dataclass
class KeyedRequest:
    """A validated request whose problem payload is not yet decoded.

    Everything needed for a cache lookup — the content-addressed
    :attr:`key`, the configured scheduler and the budget — is present,
    but :func:`repro.service.codec.decode_problem` has not run.  The
    asyncio core (:mod:`repro.service.aio`) keys its single-flight table
    on :attr:`key` straight from the hash, so N coalesced duplicates pay
    for one decode (the flight leader's) instead of N.
    :meth:`SchedulingService.complete` upgrades this to a
    :class:`ParsedRequest`.
    """

    problem_payload: Mapping[str, Any]
    scheduler: Any
    algorithm: str
    budget: float
    timeout: float | None
    key: RequestKey


def batch_group_key(parsed: "ParsedRequest | KeyedRequest") -> tuple[str, str, str, float | None]:
    """The micro-batch grouping key: members may differ only in budget.

    Requests sharing a workflow, algorithm, knob set and timeout can run
    as one ``solve_batch`` pass; the knob hash is computed at budget 0.0
    so it is budget-independent.  Used by both the threaded
    ``/v1/solve_batch`` grouping and the asyncio micro-batcher.
    """
    return (
        parsed.key.problem_hash,
        parsed.algorithm,
        params_hash(parsed.algorithm, 0.0, declared_params(parsed.scheduler)),
        parsed.timeout,
    )


@dataclasses.dataclass
class _BatchSolveJob:
    """One executor job covering several same-workflow cache misses.

    All items share a problem, algorithm, knob set and timeout — only the
    budgets differ — so the scheduler's ``solve_batch`` can run them as a
    single structure-of-arrays pass on one worker slot.
    """

    items: list[ParsedRequest]


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The canonical error body (shared by HTTP responses and batch items)."""
    if isinstance(exc, ServiceOverloadedError):
        kind = "overloaded"
    elif isinstance(exc, ServiceTimeoutError):
        kind = "timeout"
    elif isinstance(exc, TransientServiceError):
        # Router-side exhaustion: every retry/failover against the fleet
        # failed.  503-shaped so clients know the request itself was fine.
        kind = "upstream_unavailable"
    elif isinstance(exc, InfeasibleBudgetError):
        kind = "infeasible_budget"
    elif isinstance(exc, (EventConflictError, StaleEpochError)):
        # Out-of-order / divergent live-workflow events, or a fenced
        # writer that could not re-claim: permanent (409), retrying the
        # identical request cannot succeed.
        kind = "conflict"
    elif isinstance(exc, UnknownWorkflowError):
        kind = "not_found"
    elif isinstance(exc, LiveLogCorruptionError):
        # Server-side live-log damage (500): "internal" is a node-fault
        # kind, so the shard router fails over to a healthy replica.
        kind = "internal"
    elif isinstance(exc, (ServiceError, ReproError)):
        kind = "bad_request"
    else:
        kind = "internal"
    return {
        "status": "error",
        "error": {"kind": kind, "type": type(exc).__name__, "message": str(exc)},
    }


class SchedulingService:
    """Cached, concurrent MED-CC solve service (transport-agnostic core).

    Parameters
    ----------
    max_workers / queue_size / default_timeout / use_processes:
        Forwarded to the :class:`~repro.service.executor.JobExecutor`.
    cache_size / cache_dir:
        Forwarded to the :class:`~repro.service.cache.ResultCache`;
        ``cache_dir`` enables the persistent disk tier.
    latency_window:
        How many recent end-to-end request latencies to keep for the
        p50/p95 figures in :meth:`stats`.
    degrade_on_timeout:
        When ``True``, a solve that exceeds its per-job deadline answers
        with the least-cost schedule marked ``degraded: true`` (graceful
        degradation) instead of raising
        :class:`~repro.exceptions.ServiceTimeoutError` (HTTP 504).
        Degraded responses are never cached, so a later retry can still
        compute the real answer.
    live_dir:
        Directory for the live-workflow event logs
        (:class:`~repro.live.store.LiveWorkflowManager`).  Nodes sharing
        one ``live_dir`` can take over each other's running workflows on
        failover; ``None`` keeps live state in memory only.
    live_fsync / live_node / live_peers / live_checkpoint_interval /
    live_retention:
        Forwarded to the :class:`~repro.live.store.LiveWorkflowManager`
        durability layer: per-append fsync (off is unsafe), the node
        name stamped into fence records, replication links to sibling
        nodes, the checkpoint/compaction cadence, and the archive /
        expiry window for completed workflows.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 1024,
        cache_dir: str | None = None,
        default_timeout: float | None = None,
        use_processes: bool = False,
        latency_window: int = 4096,
        degrade_on_timeout: bool = False,
        live_dir: str | None = None,
        live_fsync: bool = True,
        live_node: str | None = None,
        live_peers: Sequence[PeerLink] = (),
        live_checkpoint_interval: int = 0,
        live_retention: float | None = None,
    ) -> None:
        self.cache = ResultCache(capacity=cache_size, cache_dir=cache_dir)
        self.live = LiveWorkflowManager(
            live_dir=live_dir,
            fsync=live_fsync,
            node=live_node,
            peers=live_peers,
            checkpoint_interval=live_checkpoint_interval,
            retention=live_retention,
        )
        self.executor = JobExecutor(
            self._solve_job,
            max_workers=max_workers,
            queue_size=queue_size,
            default_timeout=default_timeout,
            use_processes=use_processes,
            annotate=self._annotate_record,
        )
        self.degrade_on_timeout = bool(degrade_on_timeout)
        self._started_at = time.time()
        self._lock = threading.Lock()
        self._request_latencies: deque[float] = deque(maxlen=latency_window)
        self._requests = 0
        self._degraded = 0
        self._draining = False
        self._batch_deduped = 0
        self._batch_grouped_items = 0
        self._batch_grouped_runs = 0

    @staticmethod
    def _annotate_record(response: Mapping[str, Any]) -> dict[str, Any]:
        """JobRecord annotation for both single and grouped responses."""
        batch = response.get("batch")
        if batch:
            first = batch[0] if isinstance(batch[0], Mapping) else {}
            return {
                "engine": first.get("result", {}).get("engine"),
                "cache_hit": False,
            }
        return {
            "engine": response.get("result", {}).get("engine"),
            "cache_hit": response.get("cache_hit"),
        }

    # ------------------------------------------------------------------ #
    # Request parsing
    # ------------------------------------------------------------------ #

    def parse_request(self, payload: Mapping[str, Any]) -> ParsedRequest:
        """Decode and validate one solve-request payload.

        Request shape::

            {
              "problem":   {...},          # codec problem envelope or bare
                                           # problem_to_dict() body
              "budget":    57.0,           # required
              "algorithm": "critical-greedy",   # optional
              "params":    {"engine": "fast"},  # optional scheduler knobs
              "timeout":   10.0            # optional per-job timeout (s)
            }
        """
        return self.complete(self.parse_head(payload))

    def parse_head(self, payload: Mapping[str, Any]) -> KeyedRequest:
        """Validate a request and compute its key, deferring the decode.

        Everything except :func:`codec.decode_problem` runs here: field
        validation, scheduler configuration, and the content hash.  The
        asyncio core coalesces on the returned key before paying for the
        decode; :meth:`complete` finishes the job.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        problem_payload = payload.get("problem")
        if not isinstance(problem_payload, Mapping):
            raise ServiceError("request is missing the 'problem' object")
        if "budget" not in payload:
            raise ServiceError("request is missing the required 'budget' field")
        try:
            budget = float(payload["budget"])
        except (TypeError, ValueError):
            raise ServiceError(
                f"budget must be a number, got {payload['budget']!r}"
            ) from None

        algorithm = str(payload.get("algorithm") or DEFAULT_ALGORITHM)
        scheduler = get_scheduler(algorithm)

        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise ServiceError("'params' must be an object of scheduler knobs")
        if params:
            known = declared_params(scheduler)
            unknown = sorted(set(params) - set(known))
            if unknown:
                raise ServiceError(
                    f"unknown parameter(s) {unknown} for algorithm "
                    f"{algorithm!r}; declared knobs: {sorted(known)}"
                )
            try:
                scheduler = dataclasses.replace(scheduler, **dict(params))
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"invalid parameters for {algorithm!r}: {exc}"
                ) from exc

        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"timeout must be a number, got {timeout!r}"
                ) from None

        # Hash the *full* effective knob set (not just the client-supplied
        # subset) so explicit defaults and omitted defaults collide.
        key = RequestKey(
            problem_hash=problem_hash(problem_payload),
            algorithm=algorithm,
            params_hash=params_hash(algorithm, budget, declared_params(scheduler)),
        )
        return KeyedRequest(
            problem_payload=problem_payload,
            scheduler=scheduler,
            algorithm=algorithm,
            budget=budget,
            timeout=timeout,
            key=key,
        )

    @staticmethod
    def complete(
        keyed: KeyedRequest, *, problem: MedCCProblem | None = None
    ) -> ParsedRequest:
        """Upgrade a :class:`KeyedRequest` by decoding its problem payload.

        ``problem`` short-circuits the decode when the caller already
        holds the decoded instance for this payload's content hash (the
        asyncio core keeps a small ``problem_hash``-keyed LRU so a budget
        sweep over one workflow decodes it once).
        """
        if problem is None:
            problem = codec.decode_problem(keyed.problem_payload)
        return ParsedRequest(
            problem=problem,
            scheduler=keyed.scheduler,
            algorithm=keyed.algorithm,
            budget=keyed.budget,
            timeout=keyed.timeout,
            key=keyed.key,
        )

    # ------------------------------------------------------------------ #
    # Solve paths
    # ------------------------------------------------------------------ #

    def _solve_job(self, job: "ParsedRequest | _BatchSolveJob") -> dict[str, Any]:
        """Executor job body: run the scheduler, encode, memoize."""
        if isinstance(job, _BatchSolveJob):
            return self._solve_group_job(job)
        parsed = job
        result = parsed.scheduler.solve(parsed.problem, parsed.budget)
        fragment = codec.encode_result_fragment(
            result,
            parsed.problem.catalog,
            engine=str(getattr(parsed.scheduler, "engine", "default")),
        )
        self.cache.put(parsed.key, fragment)
        return self._response(parsed, fragment, cache_hit=False)

    def _solve_group_job(self, group: _BatchSolveJob) -> dict[str, Any]:
        """One worker slot, B budgets: the vectorized batch-solve job."""
        batch = [
            value if status == "ok" else error_payload(value)
            for status, value in self.solve_group_outcomes(group.items)
        ]
        return {"status": "ok", "batch": batch}

    def solve_group_outcomes(
        self, items: Sequence[ParsedRequest]
    ) -> list[tuple[str, Any]]:
        """Solve a same-group batch, keeping per-item outcomes.

        Returns one ``("ok", response)`` or ``("error", exception)`` pair
        per item, in order.  Results (and therefore the cached fragments)
        are byte-identical to per-item :meth:`_solve_job` runs —
        ``solve_batch`` carries the bit-identity contract.  If the
        batched solve rejects the group as a whole (e.g. one member's
        budget is infeasible), fall back to per-item solves so a bad item
        cannot fail its groupmates.  Shared by the threaded
        ``/v1/solve_batch`` grouping and the asyncio micro-batcher, which
        maps ``"error"`` outcomes back onto individual waiters.
        """
        first = items[0]
        budgets = [parsed.budget for parsed in items]
        try:
            results = first.scheduler.solve_batch(first.problem, budgets)
        except ReproError:
            outcomes: list[tuple[str, Any]] = []
            for parsed in items:
                try:
                    outcomes.append(("ok", self._solve_job(parsed)))
                except Exception as exc:  # lint: ignore[RS602] - outcome fans back per item
                    outcomes.append(("error", exc))
            return outcomes
        engine = str(getattr(first.scheduler, "engine", "default"))
        outcomes = []
        for parsed, result in zip(items, results):
            fragment = codec.encode_result_fragment(
                result, parsed.problem.catalog, engine=engine
            )
            self.cache.put(parsed.key, fragment)
            outcomes.append(("ok", self._response(parsed, fragment, cache_hit=False)))
        return outcomes

    def lookup(self, keyed: "KeyedRequest | ParsedRequest") -> dict[str, Any] | None:
        """The cache-hit response for a request, or ``None`` on a miss.

        Works on a :class:`KeyedRequest` (no decode needed — the response
        only uses the key, algorithm and budget), so the asyncio core can
        probe both cache tiers before paying for the problem decode.
        """
        fragment = self.cache.get(keyed.key)
        if fragment is None:
            return None
        return self._response(keyed, fragment, cache_hit=True)

    def _degraded_response(
        self, parsed: ParsedRequest, exc: ServiceTimeoutError
    ) -> dict[str, Any]:
        """Least-cost fallback for a solve that blew its deadline.

        The least-cost schedule is feasible for every feasible budget and
        costs O(m·n) to build, so it can run synchronously on the intake
        thread.  The response is marked ``degraded: true`` (top level and
        in the fragment) and is *not* cached — a retry after the overload
        passes still computes the real schedule.
        """
        from repro.algorithms.least_cost import LeastCostScheduler

        try:
            result = LeastCostScheduler().solve(parsed.problem, parsed.budget)
        except ReproError:
            raise exc from None
        fragment = codec.encode_result_fragment(
            result,
            parsed.problem.catalog,
            engine="degraded",
            degraded=True,
            degraded_reason=str(exc),
        )
        with self._lock:
            self._degraded += 1
        response = self._response(parsed, fragment, cache_hit=False)
        response["degraded"] = True
        return response

    @staticmethod
    def _response(
        parsed: "ParsedRequest | KeyedRequest",
        fragment: Mapping[str, Any],
        *,
        cache_hit: bool,
    ) -> dict[str, Any]:
        return {
            "status": "ok",
            "cache_hit": cache_hit,
            "problem_hash": parsed.key.problem_hash,
            "params_hash": parsed.key.params_hash,
            "algorithm": parsed.algorithm,
            "budget": parsed.budget,
            "result": dict(fragment),
        }

    def submit_parsed(self, parsed: ParsedRequest) -> "Future[dict[str, Any]]":
        """Return a future for an already-parsed request.

        Cache hits resolve immediately without occupying a worker; misses
        go through the bounded executor (and may raise
        :class:`ServiceOverloadedError` right here).  A draining service
        rejects everything — even cache hits — so a router fails the
        request over to a healthy sibling instead of depending on a node
        that is about to exit.
        """
        if self._draining:
            raise ServiceOverloadedError(
                self.executor.queue_capacity,
                reason="service is draining: in-flight jobs are finishing, "
                "new requests are rejected",
            )
        fragment = self.cache.get(parsed.key)
        if fragment is not None:
            immediate: "Future[dict[str, Any]]" = Future()
            immediate.set_result(self._response(parsed, fragment, cache_hit=True))
            return immediate
        return self.executor.submit(
            parsed, timeout=parsed.timeout, label=parsed.algorithm
        )

    def submit(self, payload: Mapping[str, Any]) -> "Future[dict[str, Any]]":
        """Parse a request and return a future for its response.

        Parse errors raise synchronously; see :meth:`submit_parsed` for
        the dispatch semantics.
        """
        return self.submit_parsed(self.parse_request(payload))

    def _await(
        self, parsed: ParsedRequest, future: "Future[dict[str, Any]]"
    ) -> dict[str, Any]:
        """Block on one future, applying the degradation contract."""
        try:
            return future.result()
        except ServiceTimeoutError as exc:
            if not self.degrade_on_timeout:
                raise
            return self._degraded_response(parsed, exc)

    def solve(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Blocking solve of one request payload; returns the response."""
        started = time.monotonic()
        try:
            parsed = self.parse_request(payload)
            return self._await(parsed, self.submit_parsed(parsed))
        finally:
            self._observe(time.monotonic() - started)

    def solve_batch(self, payloads: Any) -> list[dict[str, Any]]:
        """Solve a batch; responses in input order, errors captured per item.

        Two batch-only optimizations run before dispatch:

        * **Dedupe** — items with an identical request key (same problem,
          algorithm, knobs *and* budget) are solved once; duplicates
          receive a copy of the first occurrence's response marked
          ``deduped: true``.
        * **Grouping** — distinct cache misses that share a workflow,
          algorithm, knob set and timeout (only budgets differ) are
          dispatched as one :class:`_BatchSolveJob` when the scheduler
          exposes ``solve_batch``, so one worker slot vectorizes the
          whole budget axis (:class:`~repro.core.fastpath.BatchedSweep`).
          Responses and cached fragments are byte-identical to per-item
          dispatch.
        """
        if not isinstance(payloads, (list, tuple)):
            raise ServiceError("'requests' must be an array of solve requests")
        started = time.monotonic()
        total = len(payloads)
        responses: list[dict[str, Any] | None] = [None] * total
        parsed_items: list[ParsedRequest | None] = [None] * total
        first_seen: dict[RequestKey, int] = {}
        duplicates: list[tuple[int, int]] = []  # (position, first occurrence)
        distinct: list[int] = []
        for idx, item in enumerate(payloads):
            try:
                parsed = self.parse_request(item)
            except Exception as exc:  # per-item isolation
                responses[idx] = error_payload(exc)
                continue
            parsed_items[idx] = parsed
            first = first_seen.setdefault(parsed.key, idx)
            if first != idx:
                duplicates.append((idx, first))
            else:
                distinct.append(idx)

        # Dispatch distinct items: cache hits answer inline; misses whose
        # scheduler can batch are grouped by (workflow, algorithm, knobs,
        # timeout); the rest go through the normal one-job-per-item path.
        singles: list[int] = []
        groups: dict[tuple[str, str, str, float | None], list[int]] = {}
        for idx in distinct:
            parsed = parsed_items[idx]
            assert parsed is not None
            try:
                if self._draining:
                    raise ServiceOverloadedError(
                        self.executor.queue_capacity,
                        reason="service is draining: in-flight jobs are "
                        "finishing, new requests are rejected",
                    )
                fragment = self.cache.get(parsed.key)
            except Exception as exc:
                responses[idx] = error_payload(exc)
                continue
            if fragment is not None:
                responses[idx] = self._response(parsed, fragment, cache_hit=True)
                continue
            if getattr(parsed.scheduler, "solve_batch", None) is not None:
                groups.setdefault(batch_group_key(parsed), []).append(idx)
            else:
                singles.append(idx)

        group_futures: list[tuple[list[int], "Future[dict[str, Any]]"]] = []
        grouped_items = 0
        for members in groups.values():
            if len(members) == 1:
                singles.extend(members)
                continue
            items = [parsed_items[i] for i in members]
            assert all(item is not None for item in items)
            head = items[0]
            assert head is not None
            try:
                future = self.executor.submit(
                    _BatchSolveJob(items=items),  # type: ignore[arg-type]
                    timeout=head.timeout,
                    label=head.algorithm,
                )
            except Exception as exc:
                for i in members:
                    responses[i] = error_payload(exc)
                continue
            grouped_items += len(members)
            group_futures.append((members, future))

        single_futures: list[tuple[int, "Future[dict[str, Any]]"]] = []
        for idx in singles:
            parsed = parsed_items[idx]
            assert parsed is not None
            try:
                future = self.executor.submit(
                    parsed, timeout=parsed.timeout, label=parsed.algorithm
                )
            except Exception as exc:
                responses[idx] = error_payload(exc)
                continue
            single_futures.append((idx, future))

        for idx, future in single_futures:
            parsed = parsed_items[idx]
            assert parsed is not None
            try:
                responses[idx] = self._await(parsed, future)
            except Exception as exc:
                responses[idx] = error_payload(exc)

        for members, future in group_futures:
            try:
                grouped = future.result()
            except Exception as exc:
                for i in members:
                    parsed = parsed_items[i]
                    assert parsed is not None
                    if isinstance(exc, ServiceTimeoutError) and self.degrade_on_timeout:
                        try:
                            responses[i] = self._degraded_response(parsed, exc)
                            continue
                        except Exception as degrade_exc:
                            responses[i] = error_payload(degrade_exc)
                            continue
                    responses[i] = error_payload(exc)
                continue
            for i, item_response in zip(members, grouped["batch"]):
                responses[i] = item_response

        for idx, first in duplicates:
            source = responses[first]
            assert source is not None
            copy = dict(source)
            copy["deduped"] = True
            responses[idx] = copy

        with self._lock:
            self._batch_deduped += len(duplicates)
            self._batch_grouped_items += grouped_items
            self._batch_grouped_runs += len(group_futures)
        self._observe(time.monotonic() - started)
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Live workflows (stateful mid-flight re-optimization)
    # ------------------------------------------------------------------ #

    def _reject_if_draining(self) -> None:
        if self._draining:
            raise ServiceOverloadedError(
                self.executor.queue_capacity,
                reason="service is draining: in-flight jobs are finishing, "
                "new requests are rejected",
            )

    def register_workflow(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /v1/workflows``: register (or idempotently re-register).

        Runs the offline solve synchronously on the intake thread — the
        registration response *is* the initial plan, and the live event
        path must not sit behind queued batch solves.
        """
        self._reject_if_draining()
        started = time.monotonic()
        try:
            return self.live.register(payload)
        finally:
            self._observe(time.monotonic() - started)

    def workflow_event(
        self, workflow_id: str, payload: Mapping[str, Any]
    ) -> dict[str, Any]:
        """``POST /v1/workflows/<id>/events``: apply or replay one event."""
        self._reject_if_draining()
        started = time.monotonic()
        try:
            return self.live.event(workflow_id, payload)
        finally:
            self._observe(time.monotonic() - started)

    def workflow_status(self, workflow_id: str) -> dict[str, Any]:
        """``GET /v1/workflows/<id>``: status + actual-vs-planned ledger.

        Read-only, so it keeps answering during a drain (operators want
        the ledger of a node that is shutting down).
        """
        return self.live.status(workflow_id)

    def workflow_sync_pull(self, workflow_id: str) -> dict[str, Any]:
        """``GET /v1/workflows/<id>/sync``: the raw log for a peer.

        Keeps answering during a drain — a draining node is exactly the
        one its peers need to pull the tail of the log from.
        """
        return self.live.sync_export(workflow_id)

    def workflow_sync_push(
        self, workflow_id: str, payload: Mapping[str, Any]
    ) -> dict[str, Any]:
        """``POST /v1/workflows/<id>/sync``: accept replicated records."""
        self._reject_if_draining()
        return self.live.sync_import(workflow_id, payload)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def _observe(self, latency: float) -> None:
        with self._lock:
            self._requests += 1
            self._request_latencies.append(latency)

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` body: cache, executor and latency figures."""
        with self._lock:
            latencies = list(self._request_latencies)
            requests = self._requests
            degraded = self._degraded
            batch = {
                "deduped": self._batch_deduped,
                "grouped_items": self._batch_grouped_items,
                "grouped_runs": self._batch_grouped_runs,
            }
        return {
            "uptime": time.time() - self._started_at,
            "requests": requests,
            "degraded": degraded,
            "batch": batch,
            "ready": self.ready,
            "cache": self.cache.stats().to_dict(),
            "executor": self.executor.stats(),
            "live": self.live.stats(),
            "request_latency_p50": percentile(latencies, 50),
            "request_latency_p95": percentile(latencies, 95),
        }

    @property
    def ready(self) -> bool:
        """Readiness (vs liveness): ``False`` once draining has begun."""
        return not self._draining and not self.executor.draining

    def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight, flush disk.

        After this returns, :attr:`ready` is ``False`` (``/v1/readyz``
        answers 503 so routers stop sending traffic), every job that was
        queued or running has completed and left its record, and the disk
        cache tier is flushed.  Idempotent.
        """
        self._draining = True
        self.executor.shutdown(drain=True)
        self.cache.flush()

    def close(self) -> None:
        """Shut the executor down (waits for in-flight jobs)."""
        self.executor.shutdown()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
