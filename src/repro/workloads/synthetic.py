"""Synthetic workflow topology templates.

Deterministic generators for the DAG shapes that recur in the scientific-
workflow literature (and in the paper's motivation): linear pipelines,
fork-joins, diamonds, layered meshes, and simplified versions of the
Pegasus benchmark workflows (Montage, Epigenomics, CyberShake) that papers
such as [2], [5] and [22] of the survey section use.  These exercise the
scheduler on structured parallelism patterns that the paper's random
generator produces only by chance.

All generators return normalized workflows (virtual zero-duration
entry/exit added when needed) with deterministic, parameterized workloads
so tests and benchmarks are reproducible without seeding.
"""

from __future__ import annotations

from repro.core.workflow import Workflow, WorkflowBuilder
from repro.exceptions import WorkflowValidationError

__all__ = [
    "pipeline_workflow",
    "fork_join_workflow",
    "diamond_workflow",
    "layered_workflow",
    "montage_like_workflow",
    "epigenomics_like_workflow",
    "cybershake_like_workflow",
    "ligo_like_workflow",
]


def _workload(i: int, base: float, spread: float) -> float:
    """Deterministic pseudo-varied workload: base plus a fixed wobble."""
    # A fixed irrational stride decorrelates workloads from indices without
    # randomness, keeping instances interesting but reproducible.
    return base * (1.0 + spread * ((i * 0.6180339887) % 1.0))


def pipeline_workflow(
    num_modules: int, *, base_workload: float = 30.0, spread: float = 1.0
) -> Workflow:
    """A linear chain ``s1 -> s2 -> ... -> sN`` (MED-CC-Pipeline shape)."""
    if num_modules < 1:
        raise WorkflowValidationError("a pipeline needs at least one module")
    b = WorkflowBuilder(f"pipeline-{num_modules}")
    for i in range(num_modules):
        b.add_module(f"s{i + 1}", workload=_workload(i, base_workload, spread))
    for i in range(num_modules - 1):
        b.add_edge(f"s{i + 1}", f"s{i + 2}", data_size=1.0)
    return b.normalized()


def fork_join_workflow(
    width: int, *, base_workload: float = 30.0, spread: float = 1.0
) -> Workflow:
    """``split -> {b1..bW} -> join`` — maximal single-level parallelism."""
    if width < 1:
        raise WorkflowValidationError("fork-join width must be >= 1")
    b = WorkflowBuilder(f"fork-join-{width}")
    b.add_module("split", workload=base_workload / 2)
    b.add_module("join", workload=base_workload / 2)
    for i in range(width):
        name = f"b{i + 1}"
        b.add_module(name, workload=_workload(i, base_workload, spread))
        b.add_edge("split", name, data_size=1.0)
        b.add_edge(name, "join", data_size=1.0)
    return b.normalized()


def diamond_workflow(*, base_workload: float = 30.0) -> Workflow:
    """The four-module diamond ``a -> {b, c} -> d`` (smallest branching DAG)."""
    b = WorkflowBuilder("diamond")
    b.add_module("a", workload=base_workload)
    b.add_module("b", workload=base_workload * 2)
    b.add_module("c", workload=base_workload / 2)
    b.add_module("d", workload=base_workload)
    b.add_edge("a", "b", data_size=1.0)
    b.add_edge("a", "c", data_size=1.0)
    b.add_edge("b", "d", data_size=1.0)
    b.add_edge("c", "d", data_size=1.0)
    return b.normalized()


def layered_workflow(
    layers: int,
    width: int,
    *,
    base_workload: float = 30.0,
    spread: float = 1.0,
    dense: bool = False,
) -> Workflow:
    """A layered mesh: ``layers`` ranks of ``width`` modules each.

    With ``dense=False`` each module connects to its same-index successor
    and one neighbour (a communication-light stencil); with ``dense=True``
    every module feeds the whole next layer (all-to-all between layers).
    """
    if layers < 1 or width < 1:
        raise WorkflowValidationError("layers and width must be >= 1")
    b = WorkflowBuilder(f"layered-{layers}x{width}")
    for l in range(layers):
        for w in range(width):
            b.add_module(
                f"l{l}n{w}",
                workload=_workload(l * width + w, base_workload, spread),
            )
    for l in range(layers - 1):
        for w in range(width):
            if dense:
                targets = range(width)
            else:
                targets = {w, (w + 1) % width}
            for t in targets:
                b.add_edge(f"l{l}n{w}", f"l{l + 1}n{t}", data_size=1.0)
    return b.normalized()


def montage_like_workflow(
    degree: int = 6, *, base_workload: float = 20.0
) -> Workflow:
    """A Montage-style mosaicking workflow (simplified Pegasus shape).

    ``degree`` parallel reprojection tasks, pairwise overlap fitting,
    a concatenation/model stage, per-tile background correction, and a
    final mosaic: the classic funnel-fan-funnel profile of Montage [2].
    """
    if degree < 2:
        raise WorkflowValidationError("montage degree must be >= 2")
    b = WorkflowBuilder(f"montage-{degree}")
    for i in range(degree):
        b.add_module(f"mProject{i}", workload=_workload(i, base_workload, 0.5))
    for i in range(degree - 1):
        b.add_module(f"mDiffFit{i}", workload=base_workload / 4)
        b.add_edge(f"mProject{i}", f"mDiffFit{i}", data_size=2.0)
        b.add_edge(f"mProject{i + 1}", f"mDiffFit{i}", data_size=2.0)
    b.add_module("mConcatFit", workload=base_workload / 2)
    for i in range(degree - 1):
        b.add_edge(f"mDiffFit{i}", "mConcatFit", data_size=0.5)
    b.add_module("mBgModel", workload=base_workload)
    b.add_edge("mConcatFit", "mBgModel", data_size=0.5)
    for i in range(degree):
        b.add_module(f"mBackground{i}", workload=base_workload / 3)
        b.add_edge("mBgModel", f"mBackground{i}", data_size=1.0)
        b.add_edge(f"mProject{i}", f"mBackground{i}", data_size=2.0)
    b.add_module("mImgtbl", workload=base_workload / 2)
    b.add_module("mAdd", workload=base_workload * 2)
    for i in range(degree):
        b.add_edge(f"mBackground{i}", "mImgtbl", data_size=1.0)
    b.add_edge("mImgtbl", "mAdd", data_size=4.0)
    return b.normalized()


def epigenomics_like_workflow(
    lanes: int = 4, *, base_workload: float = 40.0
) -> Workflow:
    """An Epigenomics-style workflow: parallel deep pipelines then a merge.

    Each lane is a 4-stage pipeline (filter → align → sort → dedup) and a
    final merge/QC pair joins the lanes — the heavy, pipeline-parallel
    profile typical of sequencing workflows.
    """
    if lanes < 1:
        raise WorkflowValidationError("need at least one lane")
    stages = ("filter", "align", "sort", "dedup")
    b = WorkflowBuilder(f"epigenomics-{lanes}")
    for lane in range(lanes):
        prev: str | None = None
        for s, stage in enumerate(stages):
            name = f"{stage}{lane}"
            b.add_module(
                name, workload=_workload(lane * 4 + s, base_workload, 0.8)
            )
            if prev is not None:
                b.add_edge(prev, name, data_size=3.0)
            prev = name
    b.add_module("merge", workload=base_workload * 2)
    b.add_module("qc", workload=base_workload / 2)
    for lane in range(lanes):
        b.add_edge(f"dedup{lane}", "merge", data_size=3.0)
    b.add_edge("merge", "qc", data_size=1.0)
    return b.normalized()


def cybershake_like_workflow(
    sites: int = 5, *, base_workload: float = 25.0
) -> Workflow:
    """A CyberShake-style workflow: broadcast, wide fan-out, aggregation.

    A strain-green-tensor pair broadcasts to ``2 * sites`` seismogram
    tasks, each followed by a peak-value extraction, all aggregated into a
    hazard curve — the very wide, shallow profile of CyberShake.
    """
    if sites < 1:
        raise WorkflowValidationError("need at least one site")
    b = WorkflowBuilder(f"cybershake-{sites}")
    b.add_module("sgt_x", workload=base_workload * 3)
    b.add_module("sgt_y", workload=base_workload * 3)
    b.add_module("hazard", workload=base_workload)
    for i in range(2 * sites):
        seis = f"seis{i}"
        peak = f"peak{i}"
        b.add_module(seis, workload=_workload(i, base_workload, 0.6))
        b.add_module(peak, workload=base_workload / 5)
        b.add_edge("sgt_x" if i % 2 == 0 else "sgt_y", seis, data_size=4.0)
        b.add_edge(seis, peak, data_size=1.0)
        b.add_edge(peak, "hazard", data_size=0.5)
    return b.normalized()


def ligo_like_workflow(
    segments: int = 4, *, base_workload: float = 35.0
) -> Workflow:
    """A LIGO/inspiral-style workflow: staged matched-filter banks.

    Per data segment: a template bank feeds a wide inspiral-analysis
    stage whose results are thresholded, then a second, refined inspiral
    pass runs on the survivors before a global coincidence test — the
    two-wave profile of the LIGO inspiral search used throughout the
    Pegasus literature.
    """
    if segments < 1:
        raise WorkflowValidationError("need at least one segment")
    b = WorkflowBuilder(f"ligo-{segments}")
    b.add_module("coincidence", workload=base_workload)
    for s in range(segments):
        bank = f"tmpltbank{s}"
        first = f"inspiral1_{s}"
        thinca = f"thinca{s}"
        second = f"inspiral2_{s}"
        b.add_module(bank, workload=base_workload / 5)
        b.add_module(first, workload=_workload(2 * s, base_workload, 1.2))
        b.add_module(thinca, workload=base_workload / 8)
        b.add_module(second, workload=_workload(2 * s + 1, base_workload, 0.6))
        b.add_edge(bank, first, data_size=2.0)
        b.add_edge(first, thinca, data_size=1.0)
        b.add_edge(thinca, second, data_size=1.0)
        b.add_edge(second, "coincidence", data_size=0.5)
    return b.normalized()
