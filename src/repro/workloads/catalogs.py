"""Real-world VM catalog presets.

The paper's cost model is calibrated to 2013-era IaaS pricing ("VM
instances ... are usually priced according to their processing powers but
not necessarily linearly", §I).  These presets let experiments run against
realistic catalogs instead of synthetic linear ones:

* :func:`ec2_2013_catalog` — the first-generation Amazon EC2 on-demand
  family (m1/c1, US-East, Linux, circa the paper's publication), with
  power expressed in EC2 Compute Units (ECU) and rates in $/hour;
* :func:`ec2_free_tier_catalog` — a deliberately tiny two-type catalog
  for pedagogical examples;
* :func:`paper_example_catalog` — alias of the numerical example's
  catalog, re-exported here so every preset lives in one module.

Note the m1 family's *sub-linear* pricing per ECU (bigger instances are
better value), which is exactly the regime where Critical-Greedy's
jump-to-fastest behaviour is cost-efficient — see the pricing discussion
in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.vm import VMType, VMTypeCatalog
from repro.workloads.example import example_catalog

__all__ = [
    "ec2_2013_catalog",
    "ec2_free_tier_catalog",
    "paper_example_catalog",
]

#: (name, ECU, $/hour) — first-generation EC2 on-demand, US-East, Linux,
#: as listed in 2013 (the m1/c1 families the paper's era used).
_EC2_2013: tuple[tuple[str, float, float], ...] = (
    ("m1.small", 1.0, 0.060),
    ("m1.medium", 2.0, 0.120),
    ("m1.large", 4.0, 0.240),
    ("m1.xlarge", 8.0, 0.480),
    ("c1.medium", 5.0, 0.145),
    ("c1.xlarge", 20.0, 0.580),
)


def ec2_2013_catalog(
    *, families: tuple[str, ...] = ("m1", "c1"), startup_time: float = 0.0
) -> VMTypeCatalog:
    """The 2013 EC2 on-demand catalog (see module docstring).

    Parameters
    ----------
    families:
        Which instance families to include (``"m1"`` and/or ``"c1"``).
    startup_time:
        Boot latency applied to every type (for simulator studies).
    """
    types = [
        VMType(name=name, power=ecu, rate=price, startup_time=startup_time)
        for name, ecu, price in _EC2_2013
        if name.split(".")[0] in families
    ]
    return VMTypeCatalog(types)


def ec2_free_tier_catalog() -> VMTypeCatalog:
    """A two-type teaching catalog (micro burst vs small steady)."""
    return VMTypeCatalog(
        [
            VMType(name="t1.micro", power=0.5, rate=0.020),
            VMType(name="m1.small", power=1.0, rate=0.060),
        ]
    )


def paper_example_catalog() -> VMTypeCatalog:
    """The numerical example's Table I catalog (VP 3/15/30, CV 1/4/8)."""
    return example_catalog()
