"""Random workflow generation following the paper's procedure (§VI-A).

The paper generates instances as follows:

    "we first lay out m modules sequentially from w0 to w_{m-1} as a
    pipeline, each of which is assigned a certain workload randomly
    generated within an appropriate range.  The workload for the entry and
    exit modules is ignored for simplicity.  For each module wi, we
    randomly choose a number k within the range [1, m-1-i] and then choose
    k modules with their module ID's in the range [i+1, m-1] as its
    successors.  Finally, we connect all modules without any predecessors
    to the entry module w0 such that the total number of links is equal to
    the given |Ew|."

We reproduce that procedure with two documented clarifications:

* "lay out … as a pipeline" is realized as a sequential edge backbone
  ``w0 -> w1 -> … -> w_{m-1}``, which makes every module reachable (the
  paper's final connect-to-entry step) and gives the DAG a unique sink,
  as the end-to-end-delay objective requires;
* extra successor edges are drawn by the quoted k-successors process and
  topped up with uniform random forward edges until the edge count equals
  the requested ``|Ew|`` exactly (the paper states the target count but
  not the trimming mechanics).

Module IDs follow the paper: ``w0`` is the entry and ``w_{m-1}`` the exit;
both have zero ("ignored") workload and are modelled as fixed-duration
modules.  The paper's 20 simulation problem sizes are exported as
:data:`PAPER_PROBLEM_SIZES`.

VM catalogs are priced linearly in base processing units (§VI-A); see
:func:`paper_catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.vm import VMTypeCatalog, linear_priced_catalog
from repro.core.workflow import Workflow
from repro.exceptions import WorkflowValidationError

__all__ = [
    "PAPER_PROBLEM_SIZES",
    "SMALL_PROBLEM_SIZES",
    "RandomWorkflowSpec",
    "generate_workflow",
    "paper_catalog",
    "generate_problem",
]

#: The 20 problem sizes (m, |Ew|, n) of Table IV, indexed 1..20 in the paper.
PAPER_PROBLEM_SIZES: tuple[tuple[int, int, int], ...] = (
    (5, 6, 3),
    (10, 17, 4),
    (15, 65, 5),
    (20, 80, 5),
    (25, 201, 5),
    (30, 269, 6),
    (35, 401, 6),
    (40, 434, 6),
    (45, 473, 6),
    (50, 503, 7),
    (55, 838, 7),
    (60, 842, 7),
    (65, 993, 7),
    (70, 1142, 7),
    (75, 1179, 8),
    (80, 1352, 8),
    (85, 1424, 8),
    (90, 1825, 8),
    (95, 1891, 9),
    (100, 2344, 9),
)

#: The small problem sizes used for the optimality studies (Table III/Fig 7).
SMALL_PROBLEM_SIZES: tuple[tuple[int, int, int], ...] = (
    (5, 6, 3),
    (6, 11, 3),
    (7, 14, 3),
    (8, 18, 3),
)


@dataclass(frozen=True)
class RandomWorkflowSpec:
    """Parameters of the random generator.

    Attributes
    ----------
    num_modules:
        ``m`` — number of *schedulable* modules (paper convention; the
        fixed-duration entry/exit staging modules are added on top).
    num_edges:
        Target ``|Ew|`` among the schedulable modules.
    workload_distribution:
        ``"lognormal"`` (default) or ``"uniform"``.  The paper only says
        workloads are "randomly generated within an appropriate range";
        we default to a heavy-tailed lognormal because (a) measured
        scientific-workflow stage runtimes are heavy-tailed — the paper's
        own WRF profile spans 13.8 s to 752.6 s, a 55x spread (Table VI) —
        and (b) this is the regime in which the paper's CG-vs-GAIN3
        results reproduce (see EXPERIMENTS.md).
    workload_range:
        For ``"uniform"``: the (lo, hi) range.  For ``"lognormal"``: the
        median is ``(lo + hi) / 2`` and ``workload_sigma`` sets the spread.
    workload_sigma:
        Log-space standard deviation of the lognormal distribution.
    staging_time:
        Fixed duration of the added entry/exit modules (0 by default; the
        numerical example uses 1).
    data_size_range:
        Uniform range for edge data sizes (irrelevant to MED-CC's
        single-cloud objective but kept for the simulator/extensions).
    """

    num_modules: int
    num_edges: int
    workload_distribution: str = "lognormal"
    workload_range: tuple[float, float] = (10.0, 100.0)
    workload_sigma: float = 2.0
    staging_time: float = 0.0
    data_size_range: tuple[float, float] = (1.0, 10.0)

    def __post_init__(self) -> None:
        m = self.num_modules
        if m < 3:
            raise WorkflowValidationError(
                "need at least 3 modules (entry, one computing module, exit)"
            )
        max_edges = m * (m - 1) // 2
        if not m - 1 <= self.num_edges <= max_edges:
            raise WorkflowValidationError(
                f"edge count {self.num_edges} outside [{m - 1}, {max_edges}] "
                f"for {m} modules (every non-entry module needs a predecessor "
                "and every non-exit module a successor)"
            )
        if self.workload_distribution not in ("lognormal", "uniform"):
            raise WorkflowValidationError(
                f"unknown workload distribution {self.workload_distribution!r}"
            )
        lo, hi = self.workload_range
        if lo <= 0 or hi < lo:
            raise WorkflowValidationError(
                f"invalid workload range {self.workload_range!r}"
            )
        if self.workload_sigma <= 0:
            raise WorkflowValidationError(
                f"workload_sigma must be positive, got {self.workload_sigma!r}"
            )

    @property
    def num_schedulable(self) -> int:
        """Computing modules: all but the fixed entry/exit pair."""
        return self.num_modules - 2

    def draw_workloads(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one workload per schedulable (computing) module."""
        lo, hi = self.workload_range
        if self.workload_distribution == "uniform":
            return rng.uniform(lo, hi, size=self.num_schedulable)
        median = (lo + hi) / 2.0
        return np.exp(
            rng.normal(
                np.log(median), self.workload_sigma, size=self.num_schedulable
            )
        )


def generate_workflow(
    spec: RandomWorkflowSpec, rng: np.random.Generator
) -> Workflow:
    """Generate one random workflow per the paper's procedure (§VI-A).

    Modules are ``w0 .. w{m-1}`` laid out "sequentially … as a pipeline":
    a sequential backbone of m-1 edges plus randomly drawn extra forward
    (successor) edges until the total edge count equals ``|Ew|`` exactly.
    ``w0`` is the entry and ``w{m-1}`` the exit, both fixed-duration with
    ignored workload, as in the paper.  The backbone simultaneously
    realizes the paper's final step ("connect all modules without any
    predecessors to the entry module w0 such that the total number of
    links is equal to the given |Ew|") and the unique-sink requirement of
    the end-to-end-delay objective.
    """
    m = spec.num_modules
    names = [f"w{i}" for i in range(m)]
    target = spec.num_edges

    # "lay out m modules sequentially from w0 to w_{m-1} as a pipeline":
    # the sequential backbone guarantees every non-entry module a
    # predecessor and every non-exit module a successor with the minimum
    # m-1 edges.
    adj = np.zeros((m, m), dtype=bool)
    for i in range(m - 1):
        adj[i, i + 1] = True

    # "for each module wi, we randomly choose a number k within the range
    # [1, m-1-i] and then choose k modules with their module ID's in the
    # range [i+1, m-1] as its successors" — extra forward edges on top of
    # the backbone, as long as the target |Ew| allows.
    order = list(rng.permutation(m - 1))
    for i in order:
        if int(adj.sum()) >= target:
            break
        remaining = m - 1 - i
        k = int(rng.integers(1, remaining + 1))
        succ = rng.choice(np.arange(i + 1, m), size=k, replace=False)
        for j in succ:
            if int(adj.sum()) >= target:
                break
            adj[i, j] = True

    # Top up (or we are done): add random absent forward edges until the
    # edge count is exactly |Ew|.  The backbone is never removed, so the
    # degree invariants hold by construction.
    upper_i, upper_j = np.triu_indices(m, k=1)
    deficit = target - int(adj.sum())
    if deficit > 0:
        absent = np.nonzero(~adj[upper_i, upper_j])[0]
        picks = rng.choice(absent, size=deficit, replace=False)
        adj[upper_i[picks], upper_j[picks]] = True
    assert int(adj.sum()) == target

    workloads = spec.draw_workloads(rng)
    modules = [Module("w0", fixed_time=spec.staging_time)]
    modules += [
        Module(names[i + 1], workload=float(workloads[i]))
        for i in range(spec.num_schedulable)
    ]
    modules.append(Module(names[-1], fixed_time=spec.staging_time))

    ds_lo, ds_hi = spec.data_size_range
    edges = [
        DataDependency(
            names[i], names[j], data_size=float(rng.uniform(ds_lo, ds_hi))
        )
        for i, j in zip(*np.nonzero(adj))
    ]
    return Workflow(modules, edges, name=f"random-m{m}-e{spec.num_edges}")


def paper_catalog(
    num_types: int,
    *,
    base_power: float = 1.0,
    base_price: float = 1.0,
    scaling: str = "arithmetic",
) -> VMTypeCatalog:
    """A linearly priced VM catalog as in the paper's simulations (§VI-A).

    "The price is a linear function of the number of processing units in
    the VM type."  The paper does not state the unit progression across
    types; two common progressions are provided:

    * ``"arithmetic"`` (default) — 1, 2, 3, … base units.  This matches
      the paper's proportional rate/power structure (its WRF catalog has
      rate/power exactly constant at 0.137 per unit) and is the regime
      validated against the paper's results in EXPERIMENTS.md;
    * ``"doubling"`` — 1, 2, 4, … base units, mirroring EC2 size families.

    Note that under instance-unit round-up billing a proportionally priced
    catalog still yields a genuine cost/delay trade-off: small workloads
    waste most of a billing unit on large VMs, which is precisely what
    makes the least-cost and fastest schedules differ (the entire MED-CC
    trade-off in the paper's model is round-up-driven).
    """
    if scaling == "doubling":
        units = [2**k for k in range(num_types)]
    elif scaling == "arithmetic":
        units = list(range(1, num_types + 1))
    else:
        raise WorkflowValidationError(
            f"unknown catalog scaling {scaling!r}; use 'doubling' or 'arithmetic'"
        )
    return linear_priced_catalog(
        units, base_power=base_power, base_price=base_price
    )


def generate_problem(
    size: tuple[int, int, int],
    rng: np.random.Generator,
    *,
    workload_range: tuple[float, float] | None = None,
    workload_distribution: str = "lognormal",
    workload_sigma: float = 2.0,
    catalog: VMTypeCatalog | None = None,
) -> MedCCProblem:
    """One random MED-CC instance of the paper's problem size ``(m, |Ew|, n)``.

    Defaults are the validated reproduction regime (see EXPERIMENTS.md):
    an arithmetic, proportionally priced catalog and heavy-tailed
    lognormal workloads whose median is twice the fastest type's power
    (so module times straddle a few billing units, as in the paper's
    numerical example where times run 0.5–13.3 hours).
    """
    m, num_edges, n = size
    cat = catalog if catalog is not None else paper_catalog(n)
    if workload_range is None:
        vp_max = max(cat.powers)
        workload_range = (0.5 * vp_max, 3.5 * vp_max)
    spec = RandomWorkflowSpec(
        num_modules=m,
        num_edges=num_edges,
        workload_distribution=workload_distribution,
        workload_range=workload_range,
        workload_sigma=workload_sigma,
    )
    workflow = generate_workflow(spec, rng)
    return MedCCProblem(workflow=workflow, catalog=cat)
