"""The paper's numerical example (Section V-B), reconstructed.

The paper illustrates Critical-Greedy on a 6-module workflow (plus fixed
one-hour entry/exit modules) with three VM types::

    VM type   VP_j   CV_j
    VT1       3      1
    VT2       15     4
    VT3       30     8

The module workloads and DAG topology live in the paper's Fig. 4, which is
an image and not recoverable from the text.  Every quantity that *is*
derivable from the text is matched exactly by this reconstruction:

* workloads ``[w1..w6] = [15, 40, 20, 20, 40, 17]`` reproduce the
  published cost structure: least-cost schedule (3×VT2 + 3×VT1) with
  :math:`C_{min} = 48`, fastest schedule (6×VT3) with :math:`C_{max} = 64`,
  and upgrade cost deltas (+1 for w4, +1 for w3, +2 for w6, +4 for w2,
  +4 for w5) — hence Table II's exact budget bands
  [48,49), [49,50), [50,52), [52,56), [56,60), [60,∞);
* the worked step "reschedule w4 … decreases the execution time of w4 by
  6" pins :math:`WL_4 = 20`;
* the two-branch topology (entry → {w1, w2}; w1→w4→w6; w2→w3→w5;
  {w5, w6} → exit) makes Critical-Greedy perform the paper's exact upgrade
  order w4, w3, w6, w2, w5 and end with w1 on VT2 at the top budget,
  matching Table II's schedule rows.

Absolute MED values differ from Table II because they depend on the
unpublished topology/edge data; the reconstruction's staircase (measured
in ``EXPERIMENTS.md``) preserves the figure's shape: MED strictly
decreases as the budget grows from 48 to 60 and is flat beyond.
"""

from __future__ import annotations

from repro.core.billing import HourlyBilling
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow

__all__ = [
    "EXAMPLE_WORKLOADS",
    "example_catalog",
    "example_workflow",
    "example_problem",
    "EXAMPLE_BUDGET_BANDS",
]

#: Reconstructed workloads of w1..w6 (see module docstring for derivation).
EXAMPLE_WORKLOADS: tuple[float, ...] = (15.0, 40.0, 20.0, 20.0, 40.0, 17.0)

#: Table II budget bands and the per-band upgraded modules (paper order).
#: Each entry: (band_lower_inclusive, band_upper_exclusive_or_None,
#: modules upgraded to VT3 relative to the least-cost schedule).
EXAMPLE_BUDGET_BANDS: tuple[tuple[float, float | None, tuple[str, ...]], ...] = (
    (48.0, 49.0, ()),
    (49.0, 50.0, ("w4",)),
    (50.0, 52.0, ("w4", "w3")),
    (52.0, 56.0, ("w4", "w3", "w6")),
    (56.0, 60.0, ("w4", "w3", "w6", "w2")),
    (60.0, None, ("w4", "w3", "w6", "w2", "w5")),
)


def example_catalog() -> VMTypeCatalog:
    """The three VM types of Table I (VP 3/15/30, CV 1/4/8)."""
    return VMTypeCatalog(
        [
            VMType(name="VT1", power=3.0, rate=1.0),
            VMType(name="VT2", power=15.0, rate=4.0),
            VMType(name="VT3", power=30.0, rate=8.0),
        ]
    )


def example_workflow() -> Workflow:
    """The reconstructed 6-module example workflow (+ 1h entry/exit)."""
    modules = [
        Module("w0", fixed_time=1.0),
        *(
            Module(f"w{i}", workload=wl)
            for i, wl in enumerate(EXAMPLE_WORKLOADS, start=1)
        ),
        Module("w7", fixed_time=1.0),
    ]
    edges = [
        DataDependency("w0", "w1", data_size=2.0),
        DataDependency("w0", "w2", data_size=2.0),
        DataDependency("w1", "w4", data_size=3.0),
        DataDependency("w2", "w3", data_size=3.0),
        DataDependency("w4", "w6", data_size=3.0),
        DataDependency("w3", "w5", data_size=3.0),
        DataDependency("w6", "w7", data_size=1.0),
        DataDependency("w5", "w7", data_size=1.0),
    ]
    return Workflow(modules, edges, name="paper-example")


def example_problem() -> MedCCProblem:
    """The full numerical-example instance (hourly billing, no transfers)."""
    return MedCCProblem(
        workflow=example_workflow(),
        catalog=example_catalog(),
        billing=HourlyBilling(),
    )
