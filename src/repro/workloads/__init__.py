"""Workload generators: the paper's random DAGs, its numerical example,
the WRF testbed workflow, and synthetic topology templates."""

from repro.workloads.dax import (
    parse_dax,
    parse_dax_file,
    write_dax,
    write_dax_file,
)
from repro.workloads.example import (
    EXAMPLE_BUDGET_BANDS,
    EXAMPLE_WORKLOADS,
    example_catalog,
    example_problem,
    example_workflow,
)
from repro.workloads.generator import (
    PAPER_PROBLEM_SIZES,
    SMALL_PROBLEM_SIZES,
    RandomWorkflowSpec,
    generate_problem,
    generate_workflow,
    paper_catalog,
)
from repro.workloads.synthetic import (
    cybershake_like_workflow,
    ligo_like_workflow,
    diamond_workflow,
    epigenomics_like_workflow,
    fork_join_workflow,
    layered_workflow,
    montage_like_workflow,
    pipeline_workflow,
)
from repro.workloads.wrf import (
    WRF_BUDGETS,
    WRF_RATES,
    WRF_TE,
    wrf_catalog,
    wrf_problem,
    wrf_workflow,
)

__all__ = [
    "parse_dax",
    "parse_dax_file",
    "write_dax",
    "write_dax_file",
    "EXAMPLE_BUDGET_BANDS",
    "EXAMPLE_WORKLOADS",
    "example_catalog",
    "example_problem",
    "example_workflow",
    "PAPER_PROBLEM_SIZES",
    "SMALL_PROBLEM_SIZES",
    "RandomWorkflowSpec",
    "generate_problem",
    "generate_workflow",
    "paper_catalog",
    "pipeline_workflow",
    "fork_join_workflow",
    "diamond_workflow",
    "layered_workflow",
    "montage_like_workflow",
    "epigenomics_like_workflow",
    "cybershake_like_workflow",
    "ligo_like_workflow",
    "WRF_BUDGETS",
    "WRF_RATES",
    "WRF_TE",
    "wrf_catalog",
    "wrf_problem",
    "wrf_workflow",
]
