"""The WRF (Weather Research & Forecasting) testbed workflow (§VI-C).

The paper's real-life experiments run three duplicated WRF pipelines
(``ungrib → metgrid → real → wrf → ARWpost``) on a local Nimbus/Xen cloud,
grouped into six aggregate modules ``w1..w6`` between a start module
``w0`` and an end module ``w7`` (Figs. 13–14).  The measured per-module
execution times on the three offered VM types are published in Table VI
and reproduced verbatim below; the VM catalog (Table V) charges
0.1/0.4/0.8 per *second* of billed (rounded-up) runtime.

Those published numbers fully determine the cost structure and we match it
exactly: :math:`C_{min} = 125.9` and :math:`C_{max} = 243.6`, as stated in
Section VI-C3.

**Substitution note (testbed → simulator).**  The exact inter-module
topology of Fig. 13/14 is an image; we reconstruct it from the MED values
of Table VII, which pin the paths ``w1 → w4 → w6`` (e.g. MED 468.6 =
43.8 + 47.0 + 377.8 at budget 147.5) and ``w2 → w4 → w5`` (MED 809.2 =
9.6 + 47.0 + 752.6 for GAIN3 at the same budget) and ``w1 → w4 → w5``
(MED 206.4 at budget 186.2).  The reconstruction below — three parallel
preprocessing groups fanning into a shared ``real.exe`` stage that fans
out to two WRF/ARWpost groups — realizes all pinned paths and the known
three-pipeline structure.  Table VII MEDs were measured on the physical
testbed (sub-second run-to-run noise is visible in the published rows);
our reproduction reports the model-computed MEDs.
"""

from __future__ import annotations

from repro.core.billing import HourlyBilling
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow

__all__ = [
    "WRF_TE",
    "WRF_RATES",
    "WRF_BUDGETS",
    "WRF_MODULE_GROUPS",
    "WRF_GROUPING",
    "wrf_catalog",
    "wrf_workflow",
    "wrf_ungrouped_workflow",
    "wrf_problem",
]

#: Table VI — measured execution times (seconds) of w1..w6 per VM type.
#: Keys are module names; values are (VT1, VT2, VT3) times.
WRF_TE: dict[str, tuple[float, float, float]] = {
    "w1": (43.8, 19.2, 12.0),
    "w2": (22.7, 9.6, 10.1),
    "w3": (13.8, 7.0, 7.2),
    "w4": (47.0, 30.0, 19.4),
    "w5": (752.6, 241.6, 143.2),
    "w6": (377.8, 123.1, 119.7),
}

#: Table V — charging rates CV_j per billed second for VT1..VT3.
WRF_RATES: tuple[float, float, float] = (0.1, 0.4, 0.8)

#: The six budget values evaluated in Table VII / Fig. 15.
WRF_BUDGETS: tuple[float, ...] = (147.5, 150.0, 155.0, 174.9, 180.1, 186.2)

#: Reconstructed program grouping (documentation only; the scheduler sees
#: just the aggregate modules).
WRF_MODULE_GROUPS: dict[str, str] = {
    "w1": "ungrib+geogrid+metgrid (pipeline 1)",
    "w2": "ungrib+metgrid (pipeline 2)",
    "w3": "ungrib+metgrid (pipeline 3)",
    "w4": "real.exe (all pipelines)",
    "w5": "wrf+ARWpost (pipeline 1)",
    "w6": "wrf+ARWpost (pipelines 2-3)",
}


def wrf_catalog() -> VMTypeCatalog:
    """Table V: three Xen VM types (0.73GHz, 2.93GHz, 2×2.93GHz).

    Processing powers are set to the relative CPU capacities; they only
    matter for reporting since the instance carries measured execution
    times (Table VI) that override the analytical ``WL/VP`` model.
    """
    return VMTypeCatalog(
        [
            VMType(name="VT1", power=0.73, rate=WRF_RATES[0]),
            VMType(name="VT2", power=2.93, rate=WRF_RATES[1]),
            VMType(name="VT3", power=5.86, rate=WRF_RATES[2]),
        ]
    )


def wrf_workflow() -> Workflow:
    """The grouped WRF workflow (reconstruction of Fig. 14).

    ``w0 → {w1, w2, w3} → w4 → {w5, w6} → w7`` with instantaneous staging
    modules (the paper launches VMs in advance and stores inputs on the
    images, so staging adds no measured delay).
    """
    modules = [
        Module("w0", fixed_time=0.0),
        *(
            Module(name, workload=1.0, metadata=(("programs", group),))
            for name, group in WRF_MODULE_GROUPS.items()
        ),
        Module("w7", fixed_time=0.0),
    ]
    edges = [
        DataDependency("w0", "w1", data_size=1.0),
        DataDependency("w0", "w2", data_size=1.0),
        DataDependency("w0", "w3", data_size=1.0),
        DataDependency("w1", "w4", data_size=1.0),
        DataDependency("w2", "w4", data_size=1.0),
        DataDependency("w3", "w4", data_size=1.0),
        DataDependency("w4", "w5", data_size=1.0),
        DataDependency("w4", "w6", data_size=1.0),
        DataDependency("w5", "w7", data_size=1.0),
        DataDependency("w6", "w7", data_size=1.0),
    ]
    return Workflow(modules, edges, name="wrf-grouped")


#: The Fig. 13 → Fig. 14 grouping: aggregate module → member programs of
#: the ungrouped three-pipeline workflow (see :func:`wrf_ungrouped_workflow`).
WRF_GROUPING: dict[str, tuple[str, ...]] = {
    "w1": ("geogrid_1", "ungrib_1", "metgrid_1"),
    "w2": ("geogrid_2", "ungrib_2", "metgrid_2"),
    "w3": ("geogrid_3", "ungrib_3", "metgrid_3"),
    "w4": ("real_1", "real_2", "real_3"),
    "w5": ("wrf_1", "arwpost_1"),
    "w6": ("wrf_2", "arwpost_2", "wrf_3", "arwpost_3"),
}

#: Nominal per-program workloads for the ungrouped workflow, chosen so
#: each aggregate's total reflects the measured VT1 column of Table VI
#: (w1..w6 = 43.8, 22.7, 13.8, 47.0, 752.6, 377.8 seconds at unit power).
_WRF_PROGRAM_WORKLOADS: dict[str, float] = {
    # pipeline 1 preprocessing (heavier: includes the shared static data)
    "geogrid_1": 15.0, "ungrib_1": 12.0, "metgrid_1": 16.8,
    "geogrid_2": 7.0, "ungrib_2": 7.0, "metgrid_2": 8.7,
    "geogrid_3": 4.0, "ungrib_3": 4.0, "metgrid_3": 5.8,
    "real_1": 16.0, "real_2": 16.0, "real_3": 15.0,
    "wrf_1": 700.0, "arwpost_1": 52.6,
    "wrf_2": 170.0, "arwpost_2": 20.0,
    "wrf_3": 167.8, "arwpost_3": 20.0,
}


def wrf_ungrouped_workflow() -> Workflow:
    """The *ungrouped* three-pipeline WRF workflow (reconstruction of Fig. 13).

    Three duplicated pipelines ``(geogrid, ungrib) → metgrid → real →
    wrf → ARWpost``; the per-pipeline ``real`` outputs feed the two
    simulation groups so that contracting :data:`WRF_GROUPING` with
    :func:`repro.clustering.merge_modules` reproduces
    :func:`wrf_workflow`'s grouped topology exactly (tested).
    """
    modules = [Module("w0", fixed_time=0.0)]
    modules += [
        Module(name, workload=wl)
        for name, wl in _WRF_PROGRAM_WORKLOADS.items()
    ]
    modules.append(Module("w7", fixed_time=0.0))

    edges = []
    for p in (1, 2, 3):
        edges.append(DataDependency("w0", f"geogrid_{p}", data_size=0.5))
        edges.append(DataDependency("w0", f"ungrib_{p}", data_size=0.5))
        edges.append(
            DataDependency(f"geogrid_{p}", f"metgrid_{p}", data_size=0.5)
        )
        edges.append(
            DataDependency(f"ungrib_{p}", f"metgrid_{p}", data_size=0.5)
        )
        edges.append(DataDependency(f"metgrid_{p}", f"real_{p}", data_size=0.5))
    # The initialized fields of every pipeline feed both simulation groups
    # (the grouped graph's w4 -> {w5, w6} fan-out).
    for p in (1, 2, 3):
        edges.append(DataDependency(f"real_{p}", "wrf_1", data_size=0.4))
        edges.append(
            DataDependency(f"real_{p}", "wrf_2" if p != 3 else "wrf_3", data_size=0.4)
        )
    for p in (1, 2, 3):
        edges.append(DataDependency(f"wrf_{p}", f"arwpost_{p}", data_size=0.3))
        edges.append(DataDependency(f"arwpost_{p}", "w7", data_size=0.2))
    return Workflow(modules, edges, name="wrf-ungrouped")


def wrf_problem() -> MedCCProblem:
    """The WRF MED-CC instance: measured TE + per-second round-up billing.

    Matches the paper's cost range exactly:
    ``problem.cmin == 125.9`` and ``problem.cmax == 243.6``.
    """
    return MedCCProblem(
        workflow=wrf_workflow(),
        catalog=wrf_catalog(),
        billing=HourlyBilling(),
        measured_te={name: times for name, times in WRF_TE.items()},
    )
