"""Pegasus DAX workflow I/O (abstract DAG XML, the de-facto exchange format).

The scientific-workflow systems the paper builds on (Pegasus appears in
its references [2], [5], [6], [22]) describe workflows as DAX files —
XML "abstract DAGs" listing jobs with runtimes and file usages plus
parent/child dependencies.  This module reads and writes a practical
subset so real published workflow traces can be fed to the schedulers:

* ``<job id=… name=… runtime=…>`` → a module whose workload is
  ``runtime * reference_power`` (DAX runtimes are seconds on a reference
  machine; MED-CC workloads are machine-independent work units);
* ``<uses file=… link=input|output size=…>`` → file sizes, used to weight
  dependency edges (an edge carries the total size of files the parent
  outputs and the child inputs);
* ``<child ref=…><parent ref=…/></child>`` → dependency edges.

Namespaced and namespace-less DAX documents are both accepted.  The
writer emits the same subset, so ``parse_dax(write_dax(wf))`` round-trips.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict
from pathlib import Path

from repro.core.workflow import Workflow, WorkflowBuilder
from repro.exceptions import WorkflowValidationError

__all__ = ["parse_dax", "parse_dax_file", "write_dax", "write_dax_file"]


def _local(tag: str) -> str:
    """Strip an XML namespace from a tag name."""
    return tag.rsplit("}", 1)[-1]


def parse_dax(
    text: str,
    *,
    reference_power: float = 1.0,
    default_runtime: float = 1.0,
    staging_time: float = 0.0,
) -> Workflow:
    """Parse a DAX document into a normalized :class:`Workflow`.

    Parameters
    ----------
    text:
        The DAX XML source.
    reference_power:
        Processing power of the machine the DAX runtimes were measured
        on; workloads are ``runtime * reference_power``.
    default_runtime:
        Runtime for jobs without a ``runtime`` attribute.
    staging_time:
        Fixed duration of the virtual entry/exit modules added when the
        DAG has several sources/sinks (typical for DAX files).

    Raises
    ------
    WorkflowValidationError
        On malformed XML, unknown job references, or invalid numbers.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise WorkflowValidationError(f"invalid DAX XML: {exc}") from exc
    if _local(root.tag) != "adag":
        raise WorkflowValidationError(
            f"expected an <adag> document, found <{_local(root.tag)}>"
        )

    builder = WorkflowBuilder(root.get("name", "dax-workflow"))
    outputs: dict[str, dict[str, float]] = {}
    inputs: dict[str, dict[str, float]] = {}
    job_ids: list[str] = []

    for element in root:
        if _local(element.tag) != "job":
            continue
        job_id = element.get("id")
        if not job_id:
            raise WorkflowValidationError("DAX job without an id attribute")
        try:
            runtime = float(element.get("runtime", default_runtime))
        except ValueError as exc:
            raise WorkflowValidationError(
                f"job {job_id!r}: invalid runtime {element.get('runtime')!r}"
            ) from exc
        builder.add_module(job_id, workload=runtime * reference_power)
        job_ids.append(job_id)
        outputs[job_id] = {}
        inputs[job_id] = {}
        for uses in element:
            if _local(uses.tag) != "uses":
                continue
            file_name = uses.get("file") or uses.get("name") or ""
            try:
                size = float(uses.get("size", 0.0))
            except ValueError as exc:
                raise WorkflowValidationError(
                    f"job {job_id!r}: invalid file size {uses.get('size')!r}"
                ) from exc
            link = (uses.get("link") or "").lower()
            if link == "output":
                outputs[job_id][file_name] = size
            elif link == "input":
                inputs[job_id][file_name] = size

    known = set(job_ids)
    edges_seen: set[tuple[str, str]] = set()
    for element in root:
        if _local(element.tag) != "child":
            continue
        child = element.get("ref")
        if child not in known:
            raise WorkflowValidationError(f"<child ref={child!r}> is not a job")
        for parent_el in element:
            if _local(parent_el.tag) != "parent":
                continue
            parent = parent_el.get("ref")
            if parent not in known:
                raise WorkflowValidationError(
                    f"<parent ref={parent!r}> is not a job"
                )
            if (parent, child) in edges_seen:
                continue
            edges_seen.add((parent, child))
            shared = set(outputs[parent]) & set(inputs[child])
            data_size = sum(outputs[parent][f] for f in shared)
            builder.add_edge(parent, child, data_size=data_size)

    return builder.normalized(staging_time=staging_time)


def parse_dax_file(path: str | Path, **kwargs) -> Workflow:
    """Read and parse a DAX file (see :func:`parse_dax`)."""
    return parse_dax(Path(path).read_text(), **kwargs)


def write_dax(
    workflow: Workflow, *, reference_power: float = 1.0
) -> str:
    """Serialize a workflow to DAX XML (inverse of :func:`parse_dax`).

    Fixed-duration virtual entry/exit modules are omitted (DAX has no
    such concept); edge data sizes become a synthetic transfer file per
    edge so the parse/write pair round-trips workloads, edges and sizes.
    """
    root = ET.Element(
        "adag",
        attrib={
            "xmlns": "http://pegasus.isi.edu/schema/DAX",
            "version": "2.1",
            "name": workflow.name,
        },
    )
    schedulable = set(workflow.schedulable_names)

    produced: dict[str, list[tuple[str, float]]] = defaultdict(list)
    consumed: dict[str, list[tuple[str, float]]] = defaultdict(list)
    for edge in workflow.edges():
        if edge.src in schedulable and edge.dst in schedulable:
            file_name = f"{edge.src}__to__{edge.dst}.dat"
            produced[edge.src].append((file_name, edge.data_size))
            consumed[edge.dst].append((file_name, edge.data_size))

    for name in workflow.schedulable_names:
        module = workflow.module(name)
        job = ET.SubElement(
            root,
            "job",
            attrib={
                "id": name,
                "name": name,
                "runtime": repr(module.workload / reference_power),
            },
        )
        for file_name, size in produced[name]:
            ET.SubElement(
                job,
                "uses",
                attrib={"file": file_name, "link": "output", "size": repr(size)},
            )
        for file_name, size in consumed[name]:
            ET.SubElement(
                job,
                "uses",
                attrib={"file": file_name, "link": "input", "size": repr(size)},
            )

    parents: dict[str, list[str]] = defaultdict(list)
    for edge in workflow.edges():
        if edge.src in schedulable and edge.dst in schedulable:
            parents[edge.dst].append(edge.src)
    for child in workflow.schedulable_names:
        if not parents[child]:
            continue
        child_el = ET.SubElement(root, "child", attrib={"ref": child})
        for parent in sorted(parents[child]):
            ET.SubElement(child_el, "parent", attrib={"ref": parent})

    return ET.tostring(root, encoding="unicode")


def write_dax_file(
    workflow: Workflow, path: str | Path, **kwargs
) -> Path:
    """Write a workflow as a DAX file (see :func:`write_dax`)."""
    target = Path(path)
    target.write_text(write_dax(workflow, **kwargs))
    return target
