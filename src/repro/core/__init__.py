"""Core MED-CC models: workflows, VM catalogs, billing, schedules.

This subpackage implements Section III of the paper — the analytical cost
and time models — plus the problem formulation (Definition 1).  Everything
here is pure and deterministic; algorithms live in
:mod:`repro.algorithms` and execution semantics in :mod:`repro.sim`.
"""

from repro.core.billing import (
    DEFAULT_BILLING,
    BillingPolicy,
    BlockBilling,
    ExactBilling,
    HourlyBilling,
)
from repro.core.critical_path import CriticalPathAnalysis, analyze_critical_path
from repro.core.fastpath import (
    FastPathResult,
    GraphIndex,
    fast_critical_path,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.core.matrices import TimeCostMatrices, compute_matrices
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.schedule import Schedule, ScheduleEvaluation
from repro.core.serialize import (
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
)
from repro.core.vm import VMType, VMTypeCatalog, linear_priced_catalog
from repro.core.workflow import Workflow, WorkflowBuilder

__all__ = [
    "BillingPolicy",
    "HourlyBilling",
    "ExactBilling",
    "BlockBilling",
    "DEFAULT_BILLING",
    "CriticalPathAnalysis",
    "analyze_critical_path",
    "FastPathResult",
    "GraphIndex",
    "fast_critical_path",
    "kernel_enabled",
    "set_kernel_enabled",
    "TimeCostMatrices",
    "compute_matrices",
    "Module",
    "DataDependency",
    "MedCCProblem",
    "TransferModel",
    "Schedule",
    "ScheduleEvaluation",
    "load_problem",
    "problem_from_dict",
    "problem_to_dict",
    "save_problem",
    "VMType",
    "VMTypeCatalog",
    "linear_priced_catalog",
    "Workflow",
    "WorkflowBuilder",
]
