"""JSON (de)serialization of complete MED-CC problem instances.

A serialized instance carries everything a scheduler needs — workflow,
VM catalog, billing policy, transfer model and any measured execution
times — so instances can be generated once, shared, and re-solved
reproducibly (``python -m repro generate`` / ``solve --file``).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.core.billing import (
    BillingPolicy,
    BlockBilling,
    ExactBilling,
    HourlyBilling,
)
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ReproError

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
]

#: Format version stamped into every serialized instance.
_FORMAT_VERSION = 1


def _billing_to_dict(policy: BillingPolicy) -> dict[str, Any]:
    if isinstance(policy, HourlyBilling):
        return {"kind": "hourly"}
    if isinstance(policy, ExactBilling):
        return {"kind": "exact"}
    if isinstance(policy, BlockBilling):
        return {"kind": "block", "block": policy.block}
    raise ReproError(f"cannot serialize billing policy {policy!r}")


def _billing_from_dict(spec: dict[str, Any]) -> BillingPolicy:
    kind = spec.get("kind")
    if kind == "hourly":
        return HourlyBilling()
    if kind == "exact":
        return ExactBilling()
    if kind == "block":
        return BlockBilling(float(spec["block"]))
    raise ReproError(f"unknown billing policy kind {kind!r}")


def problem_to_dict(problem: MedCCProblem) -> dict[str, Any]:
    """Serialize a problem instance to a JSON-compatible dict."""
    transfers = problem.transfers
    return {
        "format_version": _FORMAT_VERSION,
        "workflow": problem.workflow.to_dict(),
        "catalog": [
            {
                "name": t.name,
                "power": t.power,
                "rate": t.rate,
                "startup_time": t.startup_time,
                "startup_cost": t.startup_cost,
            }
            for t in problem.catalog
        ],
        "billing": _billing_to_dict(problem.billing),
        "transfers": {
            "bandwidth": (
                None if math.isinf(transfers.bandwidth) else transfers.bandwidth
            ),
            "latency": transfers.latency,
            "unit_cost": transfers.unit_cost,
        },
        "measured_te": (
            {name: list(times) for name, times in problem.measured_te.items()}
            if problem.measured_te
            else None
        ),
    }


def problem_from_dict(payload: dict[str, Any]) -> MedCCProblem:
    """Inverse of :func:`problem_to_dict`.

    Raises
    ------
    ReproError
        On an unsupported format version or malformed payload.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported instance format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    workflow = Workflow.from_dict(payload["workflow"])
    catalog = VMTypeCatalog(
        [
            VMType(
                name=spec["name"],
                power=float(spec["power"]),
                rate=float(spec["rate"]),
                startup_time=float(spec.get("startup_time", 0.0)),
                startup_cost=float(spec.get("startup_cost", 0.0)),
            )
            for spec in payload["catalog"]
        ]
    )
    t = payload.get("transfers") or {}
    bandwidth = t.get("bandwidth")
    transfers = TransferModel(
        bandwidth=math.inf if bandwidth is None else float(bandwidth),
        latency=float(t.get("latency", 0.0)),
        unit_cost=float(t.get("unit_cost", 0.0)),
    )
    measured = payload.get("measured_te")
    return MedCCProblem(
        workflow=workflow,
        catalog=catalog,
        billing=_billing_from_dict(payload.get("billing", {"kind": "hourly"})),
        transfers=transfers,
        measured_te=(
            {name: tuple(times) for name, times in measured.items()}
            if measured
            else None
        ),
    )


def save_problem(problem: MedCCProblem, path: str | Path) -> Path:
    """Write a problem instance to a JSON file."""
    target = Path(path)
    target.write_text(json.dumps(problem_to_dict(problem), indent=2))
    return target


def load_problem(path: str | Path) -> MedCCProblem:
    """Read a problem instance from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid instance file {path}: {exc}") from exc
    return problem_from_dict(payload)
