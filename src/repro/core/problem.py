"""The MED-CC problem instance (Definition 1 of the paper).

A :class:`MedCCProblem` bundles everything a scheduler needs:

* the DAG workflow :math:`G_w(V_w, E_w)`;
* the VM-type catalog :math:`VT = \\{VT_0, \\dots, VT_{n-1}\\}`;
* the billing policy (instance-hour round-up by default); and
* optionally a data-transfer model (bandwidth/latency per Eq. 5 and a
  per-unit transfer charge :math:`CR` per Eq. 4 — both zero in the paper's
  single-cloud evaluation, non-zero in the multi-cloud extension).

The budget :math:`B` is *not* part of the instance; solvers receive it as
an argument so a single instance can be swept over budget levels, exactly
as the evaluation section does.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.billing import BillingPolicy, DEFAULT_BILLING
from repro.core.matrices import TimeCostMatrices, compute_matrices
from repro.core.schedule import Schedule, ScheduleEvaluation
from repro.core.vm import VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import InfeasibleBudgetError, ScheduleError

__all__ = ["TransferModel", "MedCCProblem"]


@dataclass(frozen=True)
class TransferModel:
    """Data-transfer timing/pricing across dependency edges (Eqs. 4–5).

    Attributes
    ----------
    bandwidth:
        Virtual-link bandwidth :math:`BW'_{p,q}` (data units per time
        unit).  ``math.inf`` makes transfers instantaneous.
    latency:
        Fixed per-transfer link delay :math:`d'_{p,q}`.
    unit_cost:
        Per-data-unit transfer charge :math:`CR`; zero intra-cloud.
    """

    bandwidth: float = math.inf
    latency: float = 0.0
    unit_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ScheduleError(f"bandwidth must be positive, got {self.bandwidth!r}")
        if self.latency < 0 or self.unit_cost < 0:
            raise ScheduleError("latency and unit transfer cost must be >= 0")

    @property
    def is_free(self) -> bool:
        """True when transfers cost nothing and take no time."""
        return (
            math.isinf(self.bandwidth)
            and self.latency == 0.0
            and self.unit_cost == 0.0
        )

    def transfer_time(self, data_size: float) -> float:
        """``T(R_i,j) = DS / BW + d`` (Eq. 5); zero for zero-size data."""
        if data_size <= 0:
            return 0.0
        base = 0.0 if math.isinf(self.bandwidth) else data_size / self.bandwidth
        return base + self.latency

    def transfer_cost(self, data_size: float) -> float:
        """``C(R_i,j) = CR * DS`` (Eq. 4)."""
        return self.unit_cost * max(data_size, 0.0)


#: The paper's single-cloud default: free, instantaneous transfers.
_FREE_TRANSFERS = TransferModel()


@dataclass(frozen=True)
class MedCCProblem:
    """One MED-CC instance: workflow + VM catalog (+ billing, transfers).

    Use :meth:`matrices` (cached) for the :math:`T_E`/:math:`C_E` pair,
    :attr:`cmin`/:attr:`cmax` for the meaningful budget range, and
    :meth:`evaluate` to score candidate schedules.
    """

    workflow: Workflow
    catalog: VMTypeCatalog
    billing: BillingPolicy = DEFAULT_BILLING
    transfers: TransferModel = field(default_factory=TransferModel)
    #: Optional measured execution-time vectors (module → per-type times)
    #: overriding the analytical ``WL/VP`` model, as in the WRF experiments.
    measured_te: Mapping[str, tuple[float, ...]] | None = None

    @cached_property
    def matrices(self) -> TimeCostMatrices:
        """The cached execution-time/cost matrices for this instance."""
        return compute_matrices(
            self.workflow, self.catalog, self.billing, self.measured_te
        )

    @property
    def num_modules(self) -> int:
        """Number of schedulable modules ``m``."""
        return len(self.workflow.schedulable_names)

    @property
    def num_types(self) -> int:
        """Number of available VM types ``n``."""
        return len(self.catalog)

    @property
    def problem_size(self) -> tuple[int, int, int]:
        """The paper's ``(m, |Ew|, n)`` triple."""
        return self.workflow.problem_size(len(self.catalog))

    # ------------------------------------------------------------------ #
    # Transfer schedule (constant across schedules: link properties do not
    # depend on the chosen VM types in this model)
    # ------------------------------------------------------------------ #

    @cached_property
    def transfer_times(self) -> dict[tuple[str, str], float]:
        """Per-edge transfer times under the instance's transfer model."""
        if self.transfers.is_free:
            return {}
        return {
            e.key: self.transfers.transfer_time(e.data_size)
            for e in self.workflow.edges()
        }

    @cached_property
    def transfer_cost_total(self) -> float:
        """Total data-transfer cost over all edges (0 in single-cloud)."""
        if self.transfers.unit_cost == 0.0:
            return 0.0
        return float(
            sum(self.transfers.transfer_cost(e.data_size) for e in self.workflow.edges())
        )

    # ------------------------------------------------------------------ #
    # Canonical schedules and budget range
    # ------------------------------------------------------------------ #

    def least_cost_schedule(self) -> Schedule:
        """The least-cost schedule :math:`S_{least-cost}` (Alg. 1, step 2)."""
        choice = self.matrices.least_cost_choice()
        return Schedule(dict(zip(self.matrices.module_names, map(int, choice))))

    def fastest_schedule(self) -> Schedule:
        """The fastest schedule :math:`S_{fastest}` (Section V-B)."""
        choice = self.matrices.fastest_choice()
        return Schedule(dict(zip(self.matrices.module_names, map(int, choice))))

    @cached_property
    def cmin(self) -> float:
        """Minimum achievable total cost (cost of the least-cost schedule)."""
        return self.matrices.cmin() + self.transfer_cost_total

    @cached_property
    def cmax(self) -> float:
        """Cost of the fastest schedule; budgets above it buy nothing more."""
        return self.matrices.cmax() + self.transfer_cost_total

    def budget_range(self) -> tuple[float, float]:
        """The meaningful budget interval ``[Cmin, Cmax]`` (Section V-B)."""
        return (self.cmin, self.cmax)

    def budget_levels(self, k: int = 20) -> list[float]:
        """``k`` budget levels sweeping ``[Cmin, Cmax]`` (Section VI-B2).

        Reproduces the evaluation's sweep: budgets from :math:`C_{min}` to
        :math:`C_{max}` at a uniform interval
        :math:`\\Delta C = (C_{max} - C_{min}) / k`.  Returns the budgets at
        levels ``1..k`` (i.e. ``Cmin + i * ΔC``); level ``k`` equals
        :math:`C_{max}` exactly.
        """
        if k <= 0:
            raise ScheduleError(f"number of budget levels must be positive, got {k}")
        lo, hi = self.budget_range()
        return [lo + i * (hi - lo) / k for i in range(1, k + 1)]

    def check_feasible(self, budget: float) -> None:
        """Raise :class:`InfeasibleBudgetError` when ``budget < Cmin``.

        Mirrors Algorithm 1, lines 4–5.
        """
        if budget < self.cmin - 1e-9:
            raise InfeasibleBudgetError(budget, self.cmin)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, schedule: Schedule) -> ScheduleEvaluation:
        """Cost/makespan/critical-path evaluation of a candidate schedule.

        Transfer times (if any) extend the critical-path computation; the
        (schedule-independent) transfer cost is added to the total cost.
        """
        evaluation = schedule.evaluate(
            self.workflow, self.matrices, self.transfer_times or None
        )
        if self.transfer_cost_total:
            evaluation = ScheduleEvaluation(
                schedule=evaluation.schedule,
                total_cost=evaluation.total_cost + self.transfer_cost_total,
                makespan=evaluation.makespan,
                analysis=evaluation.analysis,
            )
        return evaluation

    def makespan_of(self, schedule: Schedule) -> float:
        """Shortcut: the end-to-end delay of a schedule."""
        return self.evaluate(schedule).makespan

    def cost_of(self, schedule: Schedule) -> float:
        """Shortcut: the total financial cost of a schedule."""
        return schedule.total_cost(self.matrices) + self.transfer_cost_total

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def schedule_from_names(self, mapping: Mapping[str, str]) -> Schedule:
        """Build a schedule from module-name → VM-type-name pairs."""
        return Schedule(
            {m: self.catalog.index_of(t) for m, t in mapping.items()}
        )

    def random_feasible_budget(self, rng: np.random.Generator) -> float:
        """A uniformly random budget within ``[Cmin, Cmax]`` (Section VI-B1)."""
        lo, hi = self.budget_range()
        return float(rng.uniform(lo, hi))

    def median_budget(self) -> float:
        """The median of the budget range (used for Fig. 7's experiments)."""
        lo, hi = self.budget_range()
        return (lo + hi) / 2.0
