"""Execution-time and execution-cost matrices (:math:`T_E`, :math:`C_E`).

The first step of Algorithm 1 ("Calculate the execution time matrix TE and
execution cost matrix CE") is shared by every scheduler in this library, so
it lives here once.  For a workflow with :math:`m` schedulable modules and a
catalog of :math:`n` VM types:

* ``TE[i, j] = WL_i / VP_j``                      (Eq. 6)
* ``CE[i, j] = billed(TE[i, j]) * CV_j``          (Eq. 7)

Rows follow the workflow's deterministic topological order of schedulable
modules; columns follow catalog declaration order.  Both matrices are plain
``numpy`` arrays computed with a single broadcast (guides: vectorize, no
Python loops over the m×n grid).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.billing import BillingPolicy, DEFAULT_BILLING
from repro.core.vm import VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError

__all__ = ["TimeCostMatrices", "compute_matrices"]


@dataclass(frozen=True)
class TimeCostMatrices:
    """The :math:`T_E` / :math:`C_E` pair for one (workflow, catalog) pair.

    Attributes
    ----------
    module_names:
        Row labels — schedulable module names in topological order.
    type_names:
        Column labels — VM type names in catalog order.
    te:
        Execution-time matrix, shape ``(m, n)``.
    ce:
        Execution-cost matrix, shape ``(m, n)`` (includes billing round-up).
    """

    module_names: tuple[str, ...]
    type_names: tuple[str, ...]
    te: np.ndarray
    ce: np.ndarray

    def __post_init__(self) -> None:
        m, n = len(self.module_names), len(self.type_names)
        if self.te.shape != (m, n) or self.ce.shape != (m, n):
            raise ScheduleError(
                f"matrix shape mismatch: expected {(m, n)}, "
                f"got te={self.te.shape}, ce={self.ce.shape}"
            )
        self.te.setflags(write=False)
        self.ce.setflags(write=False)

    @cached_property
    def row_index(self) -> dict[str, int]:
        """Module name → row index."""
        return {name: i for i, name in enumerate(self.module_names)}

    @cached_property
    def col_index(self) -> dict[str, int]:
        """VM type name → column index."""
        return {name: j for j, name in enumerate(self.type_names)}

    @property
    def num_modules(self) -> int:
        """Number of schedulable modules (rows)."""
        return len(self.module_names)

    @property
    def num_types(self) -> int:
        """Number of VM types (columns)."""
        return len(self.type_names)

    def time(self, module: str, type_index: int) -> float:
        """``T(E_i,j)`` for a module name and VM-type index."""
        return float(self.te[self.row_index[module], type_index])

    def cost(self, module: str, type_index: int) -> float:
        """``C(E_i,j)`` for a module name and VM-type index."""
        return float(self.ce[self.row_index[module], type_index])

    # ------------------------------------------------------------------ #
    # Per-module argmin selections used by the canonical schedules
    # ------------------------------------------------------------------ #

    def least_cost_choice(self) -> np.ndarray:
        """Per-module type index of the least-cost assignment.

        Implements step 2 of Algorithm 1 including its tie-break: "If there
        are multiple VM types with the same amount of C(E_i,min), choose the
        one with the minimum T(E_i,j) among them."
        """
        # Lexicographic argmin over (cost, time): scale-free two-key argmin
        # done by masking non-minimal-cost entries with +inf before the
        # time argmin.
        min_cost = self.ce.min(axis=1, keepdims=True)
        tied = np.isclose(self.ce, min_cost, rtol=0.0, atol=1e-12)
        masked_time = np.where(tied, self.te, np.inf)
        return np.argmin(masked_time, axis=1)

    def fastest_choice(self) -> np.ndarray:
        """Per-module type index of the fastest assignment (ties: cheapest)."""
        min_time = self.te.min(axis=1, keepdims=True)
        tied = np.isclose(self.te, min_time, rtol=0.0, atol=1e-12)
        masked_cost = np.where(tied, self.ce, np.inf)
        return np.argmin(masked_cost, axis=1)

    def cmin(self) -> float:
        """Lower-bound total cost :math:`C_{min}` (least-cost schedule)."""
        return float(self.ce.min(axis=1).sum())

    def cmax(self) -> float:
        """Cost of the fastest schedule, :math:`C_{max}`.

        Note: following the paper's numerical example, :math:`C_{max}` is
        the cost of the *fastest* schedule, not the maximum possible cost;
        budgets above it are "a waste of monetary expenses" (Section V-B).
        """
        rows = np.arange(self.num_modules)
        return float(self.ce[rows, self.fastest_choice()].sum())


def compute_matrices(
    workflow: Workflow,
    catalog: VMTypeCatalog,
    billing: BillingPolicy = DEFAULT_BILLING,
    measured_te: "Mapping[str, Sequence[float]] | None" = None,
) -> TimeCostMatrices:
    """Compute :math:`T_E` and :math:`C_E` for a workflow/catalog pair.

    Fixed-duration (entry/exit) modules are excluded: their duration does
    not depend on the VM type and their cost is ignored, as in the paper's
    numerical example.

    Parameters
    ----------
    measured_te:
        Optional per-module *measured* execution-time vectors (one entry
        per catalog type, in catalog order) overriding the analytical
        ``WL_i / VP_j`` model.  This is the "estimated performance vector"
        formulation the paper uses for its WRF experiments, where the
        :math:`T_E` matrix comes from profiling runs (Table VI) rather
        than from workload/power ratios.  Modules absent from the mapping
        fall back to the analytical model.

    Complexity ``O(m * n)`` — executed once per problem instance (the paper
    notes the same for Algorithm 1's step 1).
    """
    names = workflow.schedulable_names
    workloads = np.array([workflow.module(n).workload for n in names], dtype=float)
    powers = np.array(catalog.powers, dtype=float)
    rates = np.array(catalog.rates, dtype=float)

    te = workloads[:, None] / powers[None, :]
    if measured_te:
        # Name -> row lookup dict: the naive names.index(name) is an O(m)
        # scan per override, quadratic over a fully-profiled workflow.
        row_of = {name: i for i, name in enumerate(names)}
        for name, times in measured_te.items():
            if name not in row_of:
                raise ScheduleError(
                    f"measured_te references unknown or fixed module {name!r}"
                )
            if len(times) != len(catalog):
                raise ScheduleError(
                    f"measured_te[{name!r}] has {len(times)} entries, "
                    f"catalog has {len(catalog)} types"
                )
            te[row_of[name], :] = np.asarray(times, dtype=float)
        if np.any(te < 0) or not np.all(np.isfinite(te)):
            raise ScheduleError("measured execution times must be finite and >= 0")
    # Array billing: one vectorized round-up over the whole m x n grid
    # (replaces an np.vectorize Python loop; semantics live in
    # BillingPolicy.billed_units_array, elementwise identical).
    billed = billing.billed_units_array(te)
    ce = billed * rates[None, :]
    return TimeCostMatrices(
        module_names=names,
        type_names=catalog.names,
        te=te,
        ce=ce,
    )
