"""Critical-path analysis of a mapped workflow (Section III-B).

Given per-module execution durations (and optionally per-edge data-transfer
times), this module computes the quantities defined in the paper:

* earliest start/finish times ``est(w)`` / ``eft(w)`` — a forward pass
  honouring the precedence constraints ("a computing module cannot start
  execution until all its required input data arrive");
* latest start/finish times ``lst(w)`` / ``lft(w)`` — a backward pass
  anchored at the makespan;
* the **buffer time** ``lst(w) - est(w)`` — how long a module can be
  delayed without affecting the end-to-end delay; and
* the **critical path** — "the longest path in the task graph weighted
  with time cost, which consists of all the modules with zero buffer time".

The forward/backward passes are a single sweep over a topological order,
``O(m + |Ew|)`` exactly as the paper states for Algorithm 1's CP step.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError

__all__ = ["CriticalPathAnalysis", "analyze_critical_path"]

#: Absolute slack below which a module is considered critical.  Durations in
#: this library are O(1)–O(1000) time units, so 1e-9 absolute is safely
#: below one float ULP of any realistic makespan.
_SLACK_TOL = 1e-9


@dataclass(frozen=True)
class CriticalPathAnalysis:
    """Result of a critical-path sweep over a mapped workflow.

    All mappings are keyed by module name and cover *every* module of the
    workflow, including fixed-duration entry/exit modules.
    """

    workflow: Workflow
    durations: Mapping[str, float]
    est: Mapping[str, float]
    eft: Mapping[str, float]
    lst: Mapping[str, float]
    lft: Mapping[str, float]
    makespan: float
    critical_path: tuple[str, ...]

    def buffer_time(self, name: str) -> float:
        """Buffer (slack) time ``lst(w) - est(w)`` of a module."""
        return self.lst[name] - self.est[name]

    def is_critical(self, name: str) -> bool:
        """Whether a module has (numerically) zero buffer time."""
        return self.buffer_time(name) <= _SLACK_TOL

    @property
    def critical_modules(self) -> tuple[str, ...]:
        """All modules with zero buffer time, in topological order.

        This is a superset of :attr:`critical_path` when several longest
        paths tie.
        """
        return tuple(
            n for n in self.workflow.topological_order() if self.is_critical(n)
        )

    def critical_schedulable(self) -> tuple[str, ...]:
        """Critical modules that are schedulable (candidates for CG)."""
        return tuple(
            n
            for n in self.critical_modules
            if self.workflow.module(n).is_schedulable
        )


def analyze_critical_path(
    workflow: Workflow,
    durations: Mapping[str, float],
    transfer_times: Mapping[tuple[str, str], float] | None = None,
) -> CriticalPathAnalysis:
    """Run the forward/backward passes and extract one critical path.

    Parameters
    ----------
    workflow:
        The task graph.
    durations:
        Execution duration of every module (fixed modules included).
    transfer_times:
        Optional per-edge data-transfer time ``T(R_i,j)`` (Eq. 5).  Omitted
        edges default to zero, matching the paper's single-cloud assumption
        that intra-cloud transfer time is negligible.

    Returns
    -------
    CriticalPathAnalysis
        est/eft/lst/lft maps, the makespan (= end-to-end delay = ``eft`` of
        the exit module) and one deterministic longest entry→exit path.

    Raises
    ------
    ScheduleError
        If a module is missing from ``durations`` or a duration is negative.
    """
    transfers = transfer_times or {}
    order = workflow.topological_order()
    for name in order:
        if name not in durations:
            raise ScheduleError(f"no duration supplied for module {name!r}")
        if durations[name] < 0:
            raise ScheduleError(
                f"module {name!r} has negative duration {durations[name]!r}"
            )

    def hop(src: str, dst: str) -> float:
        return transfers.get((src, dst), 0.0)

    graph = workflow.graph

    # Forward pass: est/eft plus the predecessor realizing each est, which
    # lets us later walk one longest path backwards deterministically.
    est: dict[str, float] = {}
    eft: dict[str, float] = {}
    argmax_pred: dict[str, str | None] = {}
    for name in order:
        best_start = 0.0
        best_pred: str | None = None
        for pred in sorted(graph.predecessors(name)):
            ready = eft[pred] + hop(pred, name)
            # Strict '>' with sorted predecessors makes ties deterministic
            # (lexicographically-first predecessor wins).
            if best_pred is None or ready > best_start:
                best_start = ready
                best_pred = pred
        est[name] = best_start
        eft[name] = best_start + durations[name]
        argmax_pred[name] = best_pred

    makespan = eft[workflow.exit]

    # Backward pass: lft/lst anchored at the makespan.
    lft: dict[str, float] = {}
    lst: dict[str, float] = {}
    for name in reversed(order):
        succs = list(graph.successors(name))
        if not succs:
            lft[name] = makespan
        else:
            lft[name] = min(lst[s] - hop(name, s) for s in succs)
        lst[name] = lft[name] - durations[name]

    # Extract one longest path by walking argmax predecessors from the exit.
    path: list[str] = [workflow.exit]
    cursor = argmax_pred[workflow.exit]
    while cursor is not None:
        path.append(cursor)
        cursor = argmax_pred[cursor]
    path.reverse()

    return CriticalPathAnalysis(
        workflow=workflow,
        durations=dict(durations),
        est=est,
        eft=eft,
        lst=lst,
        lft=lft,
        makespan=makespan,
        critical_path=tuple(path),
    )
