"""Schedules — a VM-type choice per module — and their evaluation.

A :class:`Schedule` realizes the paper's task schedule
:math:`S : w_i \\to VT_j` under the one-to-one mapping scheme of Section
III-B: every schedulable module is assigned exactly one VM type (and,
conceptually, its own VM instance; VM *reuse* is a post-processing step,
see :mod:`repro.sim.packing`).

Evaluation against a problem instance produces a :class:`ScheduleEvaluation`
holding the paper's two objective quantities:

* ``total_cost`` :math:`C_{Total} = \\sum_i C(E_{i,j})` (Eq. 9), and
* ``makespan``  (MED) — the end-to-end delay, i.e. the critical-path length
  of the mapped workflow (Eq. 8).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core import fastpath
from repro.core.critical_path import CriticalPathAnalysis, analyze_critical_path
from repro.core.matrices import TimeCostMatrices
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError

__all__ = ["Schedule", "ScheduleEvaluation"]


def _sequential_cost(matrices: TimeCostMatrices, assignment: Mapping[str, int]) -> float:
    """Left-to-right total cost in assignment order.

    Bit-identical to ``sum(matrices.cost(m, j) for m, j in items)`` (the
    pre-kernel formula): one C-level gather replaces the per-entry numpy
    scalar indexing, then a plain sequential ``sum`` preserves the exact
    accumulation order.
    """
    row_index = matrices.row_index
    rows = [row_index[module] for module in assignment]
    cols = list(assignment.values())
    return float(sum(matrices.ce[rows, cols].tolist()))


@dataclass(frozen=True)
class Schedule:
    """An immutable assignment of VM-type indices to schedulable modules.

    Attributes
    ----------
    assignment:
        Mapping of module name → VM-type index (column of :math:`T_E`).
    """

    assignment: Mapping[str, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))

    def __getitem__(self, module: str) -> int:
        try:
            return self.assignment[module]
        except KeyError:
            raise ScheduleError(f"module {module!r} is not in this schedule") from None

    def __contains__(self, module: object) -> bool:
        return module in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{m}->{j}" for m, j in sorted(self.assignment.items()))
        return f"Schedule({body})"

    @classmethod
    def _adopt(cls, assignment: dict[str, int]) -> "Schedule":
        """Wrap an already-private dict without the ``__post_init__`` re-copy.

        Internal fast path for call sites that build a fresh dict anyway
        (e.g. :meth:`with_assignment`, executed once per Critical-Greedy
        step); the dict must never be aliased by the caller afterwards.
        """
        schedule = object.__new__(cls)
        object.__setattr__(schedule, "assignment", assignment)
        return schedule

    def with_assignment(self, module: str, type_index: int) -> "Schedule":
        """Return a copy with one module remapped (the CG 'reschedule' step).

        The returned schedule owns a single fresh copy of the assignment
        (previously the dict was copied twice — once here and once by
        ``__post_init__``); immutability is unchanged.
        """
        if module not in self.assignment:
            raise ScheduleError(f"module {module!r} is not in this schedule")
        updated = dict(self.assignment)
        updated[module] = type_index
        return Schedule._adopt(updated)

    def as_type_names(self, type_names: tuple[str, ...]) -> dict[str, str]:
        """Render the assignment with VM-type names instead of indices."""
        return {m: type_names[j] for m, j in self.assignment.items()}

    def type_vector(self, module_order: tuple[str, ...]) -> tuple[int, ...]:
        """Type indices in a given module order (for compact table rows)."""
        return tuple(self.assignment[m] for m in module_order)

    # ------------------------------------------------------------------ #
    # Validation & evaluation
    # ------------------------------------------------------------------ #

    def validate(self, matrices: TimeCostMatrices) -> None:
        """Check this schedule covers exactly the matrix's modules/types.

        Raises
        ------
        ScheduleError
            On missing/extra modules or out-of-range type indices.
        """
        expected = set(matrices.module_names)
        actual = set(self.assignment)
        if expected != actual:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            raise ScheduleError(
                f"schedule does not match problem modules; missing={missing}, "
                f"extra={extra}"
            )
        for module, j in self.assignment.items():
            if not 0 <= j < matrices.num_types:
                raise ScheduleError(
                    f"module {module!r} mapped to invalid VM-type index {j} "
                    f"(catalog has {matrices.num_types} types)"
                )

    def total_cost(self, matrices: TimeCostMatrices) -> float:
        """Total financial cost :math:`C_{Total}` under this schedule (Eq. 9)."""
        self.validate(matrices)
        return float(
            sum(matrices.cost(m, j) for m, j in self.assignment.items())
        )

    def durations(
        self, workflow: Workflow, matrices: TimeCostMatrices
    ) -> dict[str, float]:
        """Per-module execution durations implied by this schedule.

        Fixed-duration modules contribute their fixed time; schedulable
        modules contribute ``TE[i, assignment[i]]``.
        """
        self.validate(matrices)
        out: dict[str, float] = {}
        for name in workflow.topological_order():
            mod = workflow.module(name)
            if mod.is_schedulable:
                out[name] = matrices.time(name, self.assignment[name])
            else:
                out[name] = float(mod.fixed_time or 0.0)
        return out

    def evaluate(
        self,
        workflow: Workflow,
        matrices: TimeCostMatrices,
        transfer_times: Mapping[tuple[str, str], float] | None = None,
    ) -> "ScheduleEvaluation":
        """Full evaluation: cost, makespan and critical-path analysis.

        Routed through the array kernel (:mod:`repro.core.fastpath`) by
        default; the ``analysis`` facade materializes its name-keyed
        dicts lazily, so callers that only read cost/makespan never pay
        for them.  ``REPRO_FASTPATH=0`` (or
        :func:`repro.core.fastpath.set_kernel_enabled`) falls back to the
        dict-based reference path; both produce bit-identical results.
        """
        if not fastpath.kernel_enabled():
            durations = self.durations(workflow, matrices)
            analysis = analyze_critical_path(workflow, durations, transfer_times)
            return ScheduleEvaluation(
                schedule=self,
                total_cost=self.total_cost(matrices),
                makespan=analysis.makespan,
                analysis=analysis,
            )
        self.validate(matrices)
        columns = [self.assignment[name] for name in matrices.module_names]
        result = fastpath.evaluate_assignment_vectors(
            workflow, matrices.te, columns, transfer_times
        )
        return ScheduleEvaluation(
            schedule=self,
            total_cost=_sequential_cost(matrices, self.assignment),
            makespan=result.makespan,
            analysis=result.as_analysis(),
        )


@dataclass(frozen=True)
class ScheduleEvaluation:
    """A schedule together with its objective values.

    Attributes
    ----------
    schedule:
        The evaluated schedule.
    total_cost:
        :math:`C_{Total}` — sum of module execution costs (Eq. 9).
    makespan:
        The minimum end-to-end delay of the mapped workflow (MED), i.e.
        ``eft`` of the exit module.
    analysis:
        The underlying critical-path analysis (est/eft/lst/lft, CP).
    """

    schedule: Schedule
    total_cost: float
    makespan: float
    analysis: CriticalPathAnalysis

    def within_budget(self, budget: float, *, tol: float = 1e-9) -> bool:
        """Whether ``total_cost <= budget`` up to float tolerance."""
        return self.total_cost <= budget + tol

    def summary(self) -> str:
        """One-line human-readable summary for logs and reports."""
        return (
            f"cost={self.total_cost:.4g} makespan={self.makespan:.4g} "
            f"cp={'->'.join(self.analysis.critical_path)}"
        )
