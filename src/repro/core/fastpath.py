"""Fast critical-path kernel: CSR graph engine + array sweeps.

Every iterative scheduler in this library (Critical-Greedy, GAIN/Loss,
lookahead, annealing, the ensemble) spends almost all of its time
recomputing the critical path of the currently mapped workflow — the
paper's own complexity argument has Algorithm 1 running up to
``m * (n - 1)`` CP sweeps.  The reference implementation in
:mod:`repro.core.critical_path` re-walks the networkx graph with
per-node ``sorted(graph.predecessors(...))`` calls and dict-keyed
est/eft/lst/lft maps on every sweep; at ``m = 1000`` that dominates the
end-to-end scheduling cost.

This module removes that bottleneck without changing a single bit of any
result:

* :class:`GraphIndex` — a frozen CSR-style representation of a
  :class:`~repro.core.workflow.Workflow` (topological order, predecessor
  and successor index arrays, per-edge keys for transfer lookups, fixed
  durations, schedulable-row mapping) computed **once** per workflow and
  cached on the workflow object;
* :func:`sweep_arrays` — the low-level forward/backward passes over the
  CSR arrays.  Deliberately a flat CPython loop over preallocated lists:
  the paper's generator lays every workflow out over a sequential
  backbone ``w0 -> w1 -> ...``, so the DAG depth equals ``m`` and
  per-topological-layer vectorization degenerates to one node per layer;
  a branch-free CSR scan beats both networkx and per-node numpy calls by
  an order of magnitude in that regime.  Float semantics (operation
  order, tie-breaks) replicate the reference exactly, so est/eft/lst/lft
  and the extracted critical path are **bit-identical**;
* :class:`FastPathResult` — est/eft/lst/lft/durations as numpy vectors
  plus makespan, critical mask and the argmax-predecessor chain, with
  :meth:`FastPathResult.as_analysis` producing a *lazily materialized*
  :class:`~repro.core.critical_path.CriticalPathAnalysis` so every
  existing caller (and the lint ``--deep`` checks) keeps working
  unchanged — the name-keyed dicts are only built if someone reads them;
* :func:`fast_critical_path` — a drop-in array-backed equivalent of
  :func:`~repro.core.critical_path.analyze_critical_path`;
* :class:`IncrementalSweep` — the *incremental* engine: a state object
  owning preallocated est/eft/lst/lft buffers that, given "node ``v``
  changed duration from ``x`` to ``y``", repropagates only the affected
  region (a contiguous topological span tracked by watermarks) instead
  of resweeping the whole DAG, falling back to a full sweep when the
  dirty span exceeds a size threshold.  Because each repropagated node
  is recomputed with *exactly* the per-node accumulation of
  :func:`sweep_arrays` and propagation stops only where recomputed
  values are bitwise equal to the stored ones, the buffers are at all
  times bit-identical to a from-scratch sweep — the property suite in
  ``tests/core/test_incremental.py`` asserts it after random update
  sequences;
* :class:`BatchedSweep` — the *structure-of-arrays* batch engine: ``B``
  independent critical-path states over one shared :class:`GraphIndex`,
  with EST/LST stacked into 2-D ``(B, num_nodes)`` numpy arrays (one
  row per slot) plus per-slot flat-list shadows for the span-scan hot
  path, a per-row convergence mask (:attr:`BatchedSweep.active`), a
  vectorized multi-slot full sweep (:meth:`BatchedSweep.sweep_batch` —
  one numpy pass over the nodes computes every row; ``max``/``min``
  are exact, order-independent float ops, so each row is bit-identical
  to :func:`sweep_arrays` on its duration vector), per-slot incremental
  updates sharing the exact span-scan bodies of
  :class:`IncrementalSweep`, and batched critical-row masks
  (:func:`critical_row_mask_batch` — all rows in one 2-D comparison).
  This is the kernel behind ``CriticalGreedyScheduler.solve_batch``:
  one graph, B budgets, one numpy kernel per Critical-Greedy step.

The reference implementation is retained untouched as the ground truth;
``REPRO_FASTPATH=0`` (or :func:`set_kernel_enabled`) routes
:meth:`Schedule.evaluate` back through it, which is how the benchmark
harness (``benchmarks/bench_fastpath.py``) measures the speedup and how
the property tests assert equivalence.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property
from typing import Any

import numpy as np

from repro.core.critical_path import _SLACK_TOL, CriticalPathAnalysis
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError

__all__ = [
    "SLACK_TOL",
    "GraphIndex",
    "FastPathResult",
    "IncrementalSweep",
    "BatchedSweep",
    "graph_index",
    "transfer_vector",
    "sweep_arrays",
    "critical_row_mask",
    "critical_row_mask_batch",
    "fast_critical_path",
    "evaluate_assignment_vectors",
    "kernel_enabled",
    "set_kernel_enabled",
]


#: Critical-slack tolerance, re-exported from the reference implementation
#: so kernel callers share the exact same threshold.
SLACK_TOL = _SLACK_TOL

_KERNEL_ENABLED = os.environ.get("REPRO_FASTPATH", "1").lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def kernel_enabled() -> bool:
    """Whether :meth:`Schedule.evaluate` routes through the fast kernel."""
    return _KERNEL_ENABLED


def set_kernel_enabled(enabled: bool) -> bool:
    """Enable/disable the fast kernel globally; returns the previous state.

    Disabling falls back to the reference implementation in
    :mod:`repro.core.critical_path` everywhere — results are identical
    either way (continuously asserted by the test suite and the CI
    perf-smoke gate); the switch exists so benchmarks can measure the
    pre-kernel implementation and tests can cross-check both paths.
    """
    global _KERNEL_ENABLED
    previous = _KERNEL_ENABLED
    _KERNEL_ENABLED = bool(enabled)
    return previous


@dataclass(frozen=True)
class GraphIndex:
    """Frozen CSR-style index of a workflow, computed once and cached.

    Node ids are positions in the workflow's deterministic topological
    order; predecessor lists are sorted by module *name* within each node
    so the forward pass reproduces the reference tie-break
    (lexicographically-first predecessor wins a tied longest path).

    Attributes
    ----------
    names:
        Module names in topological order (node id -> name).
    node_index:
        Inverse mapping, name -> node id.
    entry, exit:
        Node ids of the unique entry/exit modules.
    pred_ptr, pred_idx:
        CSR predecessor adjacency: predecessors of node ``v`` are
        ``pred_idx[pred_ptr[v]:pred_ptr[v + 1]]`` (name-sorted).
    pred_edges:
        ``(src, dst)`` name pair of each predecessor-CSR slot — the key
        order of every per-edge transfer vector.
    succ_ptr, succ_idx, succ_slot:
        CSR successor adjacency; ``succ_slot`` maps each successor slot
        to its predecessor-CSR slot so one transfer vector serves both
        passes.
    base_durations:
        Per-node fixed durations (0.0 for schedulable modules): the
        template a schedule's execution times are scattered into.
    sched_nodes:
        Node id of each schedulable module, in topological order — i.e.
        ``sched_nodes[i]`` is the node of TE/CE row ``i``.
    row_of_node:
        Inverse of ``sched_nodes``: node id -> TE/CE row, ``-1`` for
        fixed-duration modules.
    """

    names: tuple[str, ...]
    node_index: dict[str, int]
    entry: int
    exit: int
    pred_ptr: tuple[int, ...]
    pred_idx: tuple[int, ...]
    pred_edges: tuple[tuple[str, str], ...]
    succ_ptr: tuple[int, ...]
    succ_idx: tuple[int, ...]
    succ_slot: tuple[int, ...]
    base_durations: tuple[float, ...]
    sched_nodes: tuple[int, ...]
    row_of_node: tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        """Total module count (fixed entry/exit included)."""
        return len(self.names)

    @property
    def num_edges(self) -> int:
        """Dependency-edge count."""
        return len(self.pred_idx)

    @cached_property
    def sched_nodes_array(self) -> np.ndarray:
        """``sched_nodes`` as an integer numpy array (cached).

        Lets vectorized callers gather per-row slices of node-order
        vectors (``est[sched_nodes_array]``) without rebuilding the
        index array on every scheduler iteration.
        """
        return np.asarray(self.sched_nodes, dtype=np.intp)

    @cached_property
    def max_succ(self) -> tuple[int, ...]:
        """Highest-id successor of each node (``-1`` for sinks), cached.

        The forward watermark of :class:`IncrementalSweep`: when a node's
        EFT changes, every node up to ``max_succ[v]`` may be affected.
        CSR adjacency is *name*-sorted, not id-sorted, so this must take
        an explicit max over the slice.
        """
        succ_ptr, succ_idx = self.succ_ptr, self.succ_idx
        return tuple(
            max(succ_idx[succ_ptr[v] : succ_ptr[v + 1]], default=-1)
            for v in range(self.num_nodes)
        )

    @cached_property
    def min_pred(self) -> tuple[int, ...]:
        """Lowest-id predecessor of each node (``num_nodes`` for sources).

        The backward watermark of :class:`IncrementalSweep`: when a
        node's LST changes, every node down to ``min_pred[v]`` may be
        affected.
        """
        pred_ptr, pred_idx = self.pred_ptr, self.pred_idx
        n = self.num_nodes
        return tuple(
            min(pred_idx[pred_ptr[v] : pred_ptr[v + 1]], default=n)
            for v in range(n)
        )

    @classmethod
    def from_workflow(cls, workflow: Workflow) -> "GraphIndex":
        """Build the CSR index (called once per workflow via the cache)."""
        names = workflow.topological_order()
        node_index = {name: v for v, name in enumerate(names)}
        graph = workflow.graph

        pred_ptr: list[int] = [0]
        pred_idx: list[int] = []
        pred_edges: list[tuple[str, str]] = []
        for name in names:
            for pred in sorted(graph.predecessors(name)):
                pred_idx.append(node_index[pred])
                pred_edges.append((pred, name))
            pred_ptr.append(len(pred_idx))

        edge_slot = {edge: k for k, edge in enumerate(pred_edges)}
        succ_ptr: list[int] = [0]
        succ_idx: list[int] = []
        succ_slot: list[int] = []
        for name in names:
            for succ in sorted(graph.successors(name)):
                succ_idx.append(node_index[succ])
                succ_slot.append(edge_slot[(name, succ)])
            succ_ptr.append(len(succ_idx))

        base_durations: list[float] = []
        sched_nodes: list[int] = []
        row_of_node = [-1] * len(names)
        for v, name in enumerate(names):
            module = workflow.module(name)
            if module.is_schedulable:
                row_of_node[v] = len(sched_nodes)
                sched_nodes.append(v)
                base_durations.append(0.0)
            else:
                base_durations.append(float(module.fixed_time or 0.0))

        return cls(
            names=names,
            node_index=node_index,
            entry=node_index[workflow.entry],
            exit=node_index[workflow.exit],
            pred_ptr=tuple(pred_ptr),
            pred_idx=tuple(pred_idx),
            pred_edges=tuple(pred_edges),
            succ_ptr=tuple(succ_ptr),
            succ_idx=tuple(succ_idx),
            succ_slot=tuple(succ_slot),
            base_durations=tuple(base_durations),
            sched_nodes=tuple(sched_nodes),
            row_of_node=tuple(row_of_node),
        )


def graph_index(workflow: Workflow) -> GraphIndex:
    """The (cached) CSR index of a workflow.

    The index is immutable and depends only on workflow structure, so it
    is computed on first request and stored on the workflow object; every
    schedule evaluation and every scheduler iteration reuses it.
    """
    cached = workflow._fastpath_cache
    if cached is None:
        cached = GraphIndex.from_workflow(workflow)
        workflow._fastpath_cache = cached
    return cached


def transfer_vector(
    index: GraphIndex,
    transfer_times: Mapping[tuple[str, str], float] | None,
) -> list[float] | None:
    """Per-edge transfer times aligned with ``index.pred_edges``.

    Returns ``None`` for the free-transfer case so the kernel can take
    its branch-free no-transfer path.  Omitted edges default to 0.0,
    matching the reference implementation.
    """
    if not transfer_times:
        return None
    get = transfer_times.get
    return [float(get(edge, 0.0)) for edge in index.pred_edges]


def sweep_arrays(
    index: GraphIndex,
    durations: list[float],
    transfers: list[float] | None = None,
) -> tuple[list[float], list[float], list[float], list[float], list[int], float]:
    """Forward/backward critical-path passes over the CSR arrays.

    Parameters
    ----------
    index:
        The workflow's CSR index.
    durations:
        Per-node execution durations in topological (node-id) order.
    transfers:
        Per-edge transfer times in ``index.pred_edges`` order, or
        ``None`` when all transfers are free.

    Returns
    -------
    ``(est, eft, lst, lft, argmax_pred, makespan)`` — plain lists in
    node-id order plus the makespan.  ``argmax_pred[v]`` is the node id
    of the predecessor realizing ``est[v]`` (``-1`` for the entry),
    which lets callers walk one deterministic longest path; tie-breaks
    are identical to the reference (first name-sorted predecessor wins).

    This is the innermost hot loop of the library: a flat CPython scan
    over preallocated lists, ``O(m + |Ew|)`` with a small constant.  All
    arithmetic replicates the reference implementation operation-for-
    operation, so the outputs are bit-identical to
    :func:`~repro.core.critical_path.analyze_critical_path`.
    """
    n = index.num_nodes
    pred_ptr = index.pred_ptr
    pred_idx = index.pred_idx
    est: list[float] = [0.0] * n
    eft: list[float] = [0.0] * n
    argmax_pred: list[int] = [-1] * n

    if transfers is None:
        for v in range(n):
            lo, hi = pred_ptr[v], pred_ptr[v + 1]
            best = 0.0
            best_pred = -1
            for k in range(lo, hi):
                p = pred_idx[k]
                ready = eft[p]
                if best_pred < 0 or ready > best:
                    best = ready
                    best_pred = p
            est[v] = best
            eft[v] = best + durations[v]
            argmax_pred[v] = best_pred
    else:
        for v in range(n):
            lo, hi = pred_ptr[v], pred_ptr[v + 1]
            best = 0.0
            best_pred = -1
            for k in range(lo, hi):
                p = pred_idx[k]
                ready = eft[p] + transfers[k]
                if best_pred < 0 or ready > best:
                    best = ready
                    best_pred = p
            est[v] = best
            eft[v] = best + durations[v]
            argmax_pred[v] = best_pred

    makespan = eft[index.exit]

    succ_ptr = index.succ_ptr
    succ_idx = index.succ_idx
    succ_slot = index.succ_slot
    lft: list[float] = [0.0] * n
    lst: list[float] = [0.0] * n
    for v in range(n - 1, -1, -1):
        lo, hi = succ_ptr[v], succ_ptr[v + 1]
        if lo == hi:
            latest = makespan
        elif transfers is None:
            latest = lst[succ_idx[lo]]
            for k in range(lo + 1, hi):
                cand = lst[succ_idx[k]]
                if cand < latest:
                    latest = cand
        else:
            latest = lst[succ_idx[lo]] - transfers[succ_slot[lo]]
            for k in range(lo + 1, hi):
                cand = lst[succ_idx[k]] - transfers[succ_slot[k]]
                if cand < latest:
                    latest = cand
        lft[v] = latest
        lst[v] = latest - durations[v]

    return est, eft, lst, lft, argmax_pred, makespan


def critical_row_mask(
    index: GraphIndex,
    est: Sequence[float] | np.ndarray,
    lst: Sequence[float] | np.ndarray,
    *,
    tol: float = SLACK_TOL,
) -> np.ndarray:
    """Boolean mask over TE/CE rows: which schedulable modules are critical.

    ``mask[i]`` is true iff the module of row ``i`` has slack
    ``lst - est <= tol``.  This is the one candidate routine shared by
    both non-reference Critical-Greedy engines and
    :meth:`FastPathResult.critical_schedulable_rows`; the comparison is
    performed on the exact same float values as the reference scan, so
    the selected rows are identical.
    """
    sched = index.sched_nodes_array
    est_arr = np.asarray(est, dtype=float)
    lst_arr = np.asarray(lst, dtype=float)
    mask: np.ndarray = (lst_arr[sched] - est_arr[sched]) <= tol
    return mask


def critical_row_mask_batch(
    index: GraphIndex,
    est2d: np.ndarray,
    lst2d: np.ndarray,
    *,
    tol: float = SLACK_TOL,
) -> np.ndarray:
    """Row-stacked :func:`critical_row_mask`: ``(R, num_sched)`` in one op.

    ``est2d``/``lst2d`` are ``(R, num_nodes)`` slot stacks (e.g. rows of
    :attr:`BatchedSweep.est_batch`); row ``r`` of the result equals
    :func:`critical_row_mask` on that slot's vectors exactly — same
    gather, same subtraction, same tolerance, just broadcast across the
    batch axis.
    """
    sched = index.sched_nodes_array
    mask: np.ndarray = (lst2d[:, sched] - est2d[:, sched]) <= tol
    return mask


def _forward_span(
    index: GraphIndex,
    durations: list[float],
    transfers: list[float] | None,
    est: list[float],
    eft: list[float],
    argmax_pred: list[int],
    node: int,
) -> int:
    """Forward span-scan shared by the incremental engines.

    Recomputes ``est``/``eft``/``argmax_pred`` in place over the span
    ``[node .. hi]``, extending the watermark ``hi`` to
    ``index.max_succ[u]`` whenever ``eft[u]`` changes *bitwise*; returns
    the final ``hi``.  Once the watermark reaches the last node it
    cannot extend further, so the loop drops the change-check/watermark
    bookkeeping (on the generator's backbone topology that is the common
    case almost immediately).  Every recomputed node runs the exact
    per-node accumulation of :func:`sweep_arrays`.
    """
    n = index.num_nodes
    pred_ptr = index.pred_ptr
    pred_idx = index.pred_idx
    max_succ = index.max_succ
    last = n - 1
    hi = node
    v = node
    if transfers is None:
        while v <= hi:
            if hi == last:
                for w in range(v, n):
                    lo_, hi_ = pred_ptr[w], pred_ptr[w + 1]
                    best = 0.0
                    best_pred = -1
                    for k in range(lo_, hi_):
                        p = pred_idx[k]
                        ready = eft[p]
                        if best_pred < 0 or ready > best:
                            best = ready
                            best_pred = p
                    est[w] = best
                    argmax_pred[w] = best_pred
                    eft[w] = best + durations[w]
                break
            lo_, hi_ = pred_ptr[v], pred_ptr[v + 1]
            best = 0.0
            best_pred = -1
            for k in range(lo_, hi_):
                p = pred_idx[k]
                ready = eft[p]
                if best_pred < 0 or ready > best:
                    best = ready
                    best_pred = p
            est[v] = best
            argmax_pred[v] = best_pred
            new_eft = best + durations[v]
            if new_eft != eft[v]:
                eft[v] = new_eft
                ms = max_succ[v]
                if ms > hi:
                    hi = ms
            v += 1
    else:
        while v <= hi:
            if hi == last:
                for w in range(v, n):
                    lo_, hi_ = pred_ptr[w], pred_ptr[w + 1]
                    best = 0.0
                    best_pred = -1
                    for k in range(lo_, hi_):
                        p = pred_idx[k]
                        ready = eft[p] + transfers[k]
                        if best_pred < 0 or ready > best:
                            best = ready
                            best_pred = p
                    est[w] = best
                    argmax_pred[w] = best_pred
                    eft[w] = best + durations[w]
                break
            lo_, hi_ = pred_ptr[v], pred_ptr[v + 1]
            best = 0.0
            best_pred = -1
            for k in range(lo_, hi_):
                p = pred_idx[k]
                ready = eft[p] + transfers[k]
                if best_pred < 0 or ready > best:
                    best = ready
                    best_pred = p
            est[v] = best
            argmax_pred[v] = best_pred
            new_eft = best + durations[v]
            if new_eft != eft[v]:
                eft[v] = new_eft
                ms = max_succ[v]
                if ms > hi:
                    hi = ms
            v += 1
    return hi


def _backward_full(
    index: GraphIndex,
    durations: list[float],
    transfers: list[float] | None,
    makespan: float,
    lst: list[float],
    lft: list[float],
) -> None:
    """Whole-graph backward pass (the plain :func:`sweep_arrays` body).

    Used by the incremental engines whenever the makespan moved — the
    shift reaches nearly every node, so change-check/watermark
    bookkeeping would cost more than it prunes.  Unconditional writes of
    bitwise-identical values where nothing changed.
    """
    n = index.num_nodes
    succ_ptr = index.succ_ptr
    succ_idx = index.succ_idx
    succ_slot = index.succ_slot
    if transfers is None:
        for v in range(n - 1, -1, -1):
            lo_, hi_ = succ_ptr[v], succ_ptr[v + 1]
            if lo_ == hi_:
                latest = makespan
            else:
                latest = lst[succ_idx[lo_]]
                for k in range(lo_ + 1, hi_):
                    cand = lst[succ_idx[k]]
                    if cand < latest:
                        latest = cand
            lft[v] = latest
            lst[v] = latest - durations[v]
    else:
        for v in range(n - 1, -1, -1):
            lo_, hi_ = succ_ptr[v], succ_ptr[v + 1]
            if lo_ == hi_:
                latest = makespan
            else:
                latest = lst[succ_idx[lo_]] - transfers[succ_slot[lo_]]
                for k in range(lo_ + 1, hi_):
                    cand = lst[succ_idx[k]] - transfers[succ_slot[k]]
                    if cand < latest:
                        latest = cand
            lft[v] = latest
            lst[v] = latest - durations[v]


def _backward_span(
    index: GraphIndex,
    durations: list[float],
    transfers: list[float] | None,
    makespan: float,
    lst: list[float],
    lft: list[float],
    node: int,
) -> int:
    """Backward span-scan for a makespan-preserving update; returns ``lo``.

    Rescans ``[lo .. node]`` in descending order, extending ``lo`` to
    ``index.min_pred[u]`` whenever ``lst[u]`` changes bitwise — the
    mirror image of :func:`_forward_span`.
    """
    succ_ptr = index.succ_ptr
    succ_idx = index.succ_idx
    succ_slot = index.succ_slot
    min_pred = index.min_pred
    lo = node
    v = node
    if transfers is None:
        while v >= lo:
            lo_, hi_ = succ_ptr[v], succ_ptr[v + 1]
            if lo_ == hi_:
                latest = makespan
            else:
                latest = lst[succ_idx[lo_]]
                for k in range(lo_ + 1, hi_):
                    cand = lst[succ_idx[k]]
                    if cand < latest:
                        latest = cand
            lft[v] = latest
            new_lst = latest - durations[v]
            if new_lst != lst[v]:
                lst[v] = new_lst
                mp = min_pred[v]
                if mp < lo:
                    lo = mp
            v -= 1
    else:
        while v >= lo:
            lo_, hi_ = succ_ptr[v], succ_ptr[v + 1]
            if lo_ == hi_:
                latest = makespan
            else:
                latest = lst[succ_idx[lo_]] - transfers[succ_slot[lo_]]
                for k in range(lo_ + 1, hi_):
                    cand = lst[succ_idx[k]] - transfers[succ_slot[k]]
                    if cand < latest:
                        latest = cand
            lft[v] = latest
            new_lst = latest - durations[v]
            if new_lst != lst[v]:
                lst[v] = new_lst
                mp = min_pred[v]
                if mp < lo:
                    lo = mp
            v -= 1
    return lo


class IncrementalSweep:
    """Incremental critical-path state with bit-identical float semantics.

    Owns preallocated EST/EFT/LST/LFT/argmax buffers for one workflow
    and repropagates only the affected region after a single-duration
    change.  Node ids are topological, so every node affected by a
    change at ``v`` lies in a contiguous id span:

    * **forward**: recompute ``est``/``eft`` for ``[v .. hi]`` in
      ascending order, where the watermark ``hi`` extends to
      ``index.max_succ[u]`` whenever ``eft[u]`` changes *bitwise*;
    * **backward**: LST depends only on successor LSTs, durations and
      the makespan.  If the makespan moved, the shift reaches nearly
      every node, so the whole graph is recomputed with the plain
      :func:`sweep_arrays` backward body (no span bookkeeping);
      otherwise only ``[lo .. v]`` is rescanned in descending order,
      with ``lo`` extending to ``index.min_pred[u]`` whenever
      ``lst[u]`` changes bitwise.

    Each recomputed node runs the *exact* per-node accumulation loop of
    :func:`sweep_arrays` over the same CSR slices, and propagation stops
    only where recomputed values are bitwise equal to the stored ones —
    by induction the buffers always equal a from-scratch sweep, bit for
    bit (asserted by ``tests/core/test_incremental.py``).

    When the forward span would cover at least ``full_sweep_fraction``
    of the graph, the update falls back to one full
    :func:`sweep_arrays` call instead — near the entry the span-scan
    bookkeeping costs more than the plain sweep it replaces.
    ``full_sweep_fraction=0.0`` forces the full-sweep path (useful in
    tests), ``1.0`` disables the fallback for all schedulable nodes.

    Instances also maintain numpy mirrors of the EST/LST buffers
    (:attr:`est_array`/:attr:`lst_array`), synced by span-slice
    assignment, so vectorized consumers like
    :func:`critical_row_mask` never pay a full list->array conversion.

    Not thread-safe: one instance per solving thread.
    """

    def __init__(
        self,
        workflow: Workflow,
        durations: Mapping[str, float] | None = None,
        transfer_times: Mapping[tuple[str, str], float] | None = None,
        *,
        full_sweep_fraction: float = 0.9,
    ) -> None:
        if not 0.0 <= full_sweep_fraction <= 1.0:
            raise ScheduleError(
                f"full_sweep_fraction must be in [0, 1], got {full_sweep_fraction!r}"
            )
        self.workflow = workflow
        self.index = graph_index(workflow)
        self.full_sweep_fraction = full_sweep_fraction
        n = self.index.num_nodes
        #: Forward spans of at least this many nodes take the full-sweep
        #: fallback instead of the span-scan.
        self.full_sweep_threshold = max(1, int(full_sweep_fraction * n))
        self._transfers = transfer_vector(self.index, transfer_times)
        # Stats: how often each path ran, and total span work done.
        self.updates = 0
        self.incremental_updates = 0
        self.full_sweeps = 0
        self.nodes_recomputed = 0
        self._durations: list[float] = []
        self._est: list[float] = []
        self._eft: list[float] = []
        self._lst: list[float] = []
        self._lft: list[float] = []
        self._argmax_pred: list[int] = []
        self._makespan = 0.0
        self._est_arr: np.ndarray = np.zeros(0)
        self._lst_arr: np.ndarray = np.zeros(0)
        if durations is None:
            self.reset_vector(list(self.index.base_durations))
        else:
            self.reset(durations)

    # -- state accessors (buffers are live views: do not mutate) --------

    @property
    def makespan(self) -> float:
        """Current makespan (``eft`` of the exit node)."""
        return self._makespan

    @property
    def est(self) -> list[float]:
        """Earliest start times in node-id order (live buffer)."""
        return self._est

    @property
    def eft(self) -> list[float]:
        """Earliest finish times in node-id order (live buffer)."""
        return self._eft

    @property
    def lst(self) -> list[float]:
        """Latest start times in node-id order (live buffer)."""
        return self._lst

    @property
    def lft(self) -> list[float]:
        """Latest finish times in node-id order (live buffer)."""
        return self._lft

    @property
    def argmax_pred(self) -> list[int]:
        """Predecessor realizing each ``est`` (live buffer)."""
        return self._argmax_pred

    @property
    def est_array(self) -> np.ndarray:
        """Numpy mirror of :attr:`est`, kept in sync by span slices."""
        return self._est_arr

    @property
    def lst_array(self) -> np.ndarray:
        """Numpy mirror of :attr:`lst`, kept in sync by span slices."""
        return self._lst_arr

    def duration_of(self, node: int) -> float:
        """Current duration of ``node``."""
        return self._durations[node]

    # -- (re)initialization ---------------------------------------------

    def reset_vector(self, durations: list[float]) -> float:
        """Adopt a fresh per-node duration vector and resweep fully.

        The vector is copied; returns the new makespan.
        """
        index = self.index
        if len(durations) != index.num_nodes:
            raise ScheduleError(
                f"expected {index.num_nodes} durations, got {len(durations)}"
            )
        self._durations = [float(d) for d in durations]
        self._full_resweep()
        return self._makespan

    def reset(self, durations: Mapping[str, float]) -> float:
        """Name-keyed :meth:`reset_vector` with reference-style validation."""
        vector: list[float] = []
        for name in self.index.names:
            if name not in durations:
                raise ScheduleError(f"no duration supplied for module {name!r}")
            value = durations[name]
            if value < 0:
                raise ScheduleError(
                    f"module {name!r} has negative duration {value!r}"
                )
            vector.append(float(value))
        return self.reset_vector(vector)

    def _full_resweep(self) -> None:
        self.full_sweeps += 1
        swept = sweep_arrays(self.index, self._durations, self._transfers)
        self._est, self._eft, self._lst, self._lft, self._argmax_pred, self._makespan = swept
        self.nodes_recomputed += self.index.num_nodes
        self._est_arr = np.asarray(self._est, dtype=float)
        self._lst_arr = np.asarray(self._lst, dtype=float)

    # -- the incremental update -----------------------------------------

    def set_row_duration(self, row: int, value: float) -> float:
        """Set the duration of TE/CE row ``row``; returns the new makespan."""
        sched = self.index.sched_nodes
        if not 0 <= row < len(sched):
            raise ScheduleError(f"schedulable row {row} out of range")
        return self.set_duration(sched[row], value)

    def set_duration(self, node: int, value: float) -> float:
        """Set the duration of ``node`` and repropagate; returns makespan.

        After this call every buffer is bitwise equal to what
        :func:`sweep_arrays` would produce from scratch on the updated
        duration vector.
        """
        index = self.index
        n = index.num_nodes
        if not 0 <= node < n:
            raise ScheduleError(f"node id {node} out of range")
        value = float(value)
        if value < 0:
            raise ScheduleError(
                f"module {index.names[node]!r} has negative duration {value!r}"
            )
        self.updates += 1
        durations = self._durations
        if value == durations[node]:
            return self._makespan
        durations[node] = value
        if n - node >= self.full_sweep_threshold:
            self._full_resweep()
            return self._makespan
        self.incremental_updates += 1

        est, eft = self._est, self._eft
        transfers = self._transfers
        hi = _forward_span(
            index, durations, transfers, est, eft, self._argmax_pred, node
        )

        # Bitwise (not tolerance-based) comparison on purpose: the
        # incremental contract is exact equality with a full sweep, and
        # propagation may only stop where values are unchanged bit for bit.
        new_makespan = eft[index.exit]
        makespan_changed = new_makespan != self._makespan  # lint: ignore[RA901]
        self._makespan = new_makespan

        # Backward pass: LST depends only on successor LSTs, durations
        # and the makespan.  When the makespan moved — which a
        # Critical-Greedy upgrade does on essentially every step — the
        # shift reaches nearly every node, so run the whole-graph body;
        # only a makespan-preserving update keeps the span-scan.
        lst, lft = self._lst, self._lft
        if makespan_changed:
            start = n - 1
            lo = 0
            _backward_full(index, durations, transfers, new_makespan, lst, lft)
        else:
            start = node
            lo = _backward_span(
                index, durations, transfers, new_makespan, lst, lft, node
            )

        # Sync the numpy mirrors over exactly the recomputed spans.
        self._est_arr[node : hi + 1] = est[node : hi + 1]
        self._lst_arr[lo : start + 1] = lst[lo : start + 1]
        self.nodes_recomputed += (hi - node + 1) + (start - lo + 1)
        return new_makespan

    def critical_rows(self) -> np.ndarray:
        """Boolean TE/CE-row mask of critical schedulable modules."""
        return critical_row_mask(self.index, self._est_arr, self._lst_arr)

    def result(self) -> FastPathResult:
        """Snapshot the current state as an immutable :class:`FastPathResult`."""
        return _result_from_lists(
            self.workflow,
            self.index,
            list(self._durations),
            (
                list(self._est),
                list(self._eft),
                list(self._lst),
                list(self._lft),
                list(self._argmax_pred),
                self._makespan,
            ),
        )


class BatchedSweep:
    """Structure-of-arrays critical-path state for B solves over one graph.

    Owns ``batch`` independent slots of EST/EFT/LST/LFT state over a
    single shared :class:`GraphIndex`.  The EST/LST planes are stacked
    into 2-D ``(batch, num_nodes)`` numpy arrays (:attr:`est_batch` /
    :attr:`lst_batch`, one row per slot) so batch-wide consumers — the
    batched critical-row mask, the Critical-Greedy batch solver's
    convergence bookkeeping — run as single 2-D numpy ops instead of B
    separate 1-D calls.  Each slot additionally keeps flat python-list
    shadows of all five planes, because the per-update hot path is the
    same branch-free CPython span-scan as :class:`IncrementalSweep`
    (see the module docstring for why per-node numpy loses on the
    paper's backbone-shaped DAGs); the 2-D mirrors are synced by
    span-slice assignment exactly like the 1-D mirrors of the
    incremental engine.

    Slot lifecycle: :meth:`acquire_slot` hands out an inactive slot and
    marks it live in the :attr:`active` convergence mask;
    :meth:`release_slot` retires it (finished budget rows drop out of
    every subsequent batched pass).  :meth:`copy_slot` duplicates one
    slot's state into another — the batch solver's group-split
    primitive.  Per-slot updates (:meth:`set_duration` /
    :meth:`set_row_duration`) share the exact span-scan bodies of
    :class:`IncrementalSweep` (:func:`_forward_span` et al.), so every
    slot is at all times bit-identical to a from-scratch
    :func:`sweep_arrays` on its duration vector; :meth:`sweep_batch`
    recomputes many slots from scratch in one vectorized numpy pass
    over the nodes (``max``/``min`` are exact, order-independent float
    reductions, so the rows match the scalar sweep bit for bit —
    asserted by ``tests/core/test_batched.py``).

    Not thread-safe: one instance per solving thread.
    """

    def __init__(
        self,
        workflow: Workflow,
        batch: int,
        transfer_times: Mapping[tuple[str, str], float] | None = None,
        *,
        full_sweep_fraction: float = 0.9,
    ) -> None:
        if batch < 1:
            raise ScheduleError(f"batch must be >= 1, got {batch!r}")
        if not 0.0 <= full_sweep_fraction <= 1.0:
            raise ScheduleError(
                f"full_sweep_fraction must be in [0, 1], got {full_sweep_fraction!r}"
            )
        self.workflow = workflow
        self.index = graph_index(workflow)
        self.batch = int(batch)
        n = self.index.num_nodes
        #: Forward spans of at least this many nodes take the full-sweep
        #: fallback instead of the span-scan (same policy as the
        #: incremental engine).
        self.full_sweep_threshold = max(1, int(full_sweep_fraction * n))
        self._transfers = transfer_vector(self.index, transfer_times)
        #: Convergence mask: ``active[b]`` is true while slot ``b`` holds
        #: a live solve; finished rows drop out of batched passes.
        self.active = np.zeros(self.batch, dtype=bool)
        # SoA planes: one row per slot.  EST/LST get full 2-D numpy
        # mirrors (the planes batch consumers read); EFT/LFT/argmax live
        # only in the list shadows, like the incremental engine.
        self._est2d = np.zeros((self.batch, n))
        self._lst2d = np.zeros((self.batch, n))
        self._makespans = np.zeros(self.batch)
        self._durations: list[list[float]] = [[] for _ in range(self.batch)]
        self._est: list[list[float]] = [[] for _ in range(self.batch)]
        self._eft: list[list[float]] = [[] for _ in range(self.batch)]
        self._lst: list[list[float]] = [[] for _ in range(self.batch)]
        self._lft: list[list[float]] = [[] for _ in range(self.batch)]
        self._argmax_pred: list[list[int]] = [[] for _ in range(self.batch)]
        # Stats: how often each path ran, and total span work done.
        self.updates = 0
        self.incremental_updates = 0
        self.full_sweeps = 0
        self.batched_sweeps = 0
        self.slot_copies = 0
        self.nodes_recomputed = 0

    # -- slot lifecycle -------------------------------------------------

    def acquire_slot(self) -> int:
        """Claim the first inactive slot; returns its id."""
        for b in range(self.batch):
            if not self.active[b]:
                self.active[b] = True
                return b
        raise ScheduleError(f"all {self.batch} batch slots are active")

    def release_slot(self, slot: int) -> None:
        """Retire a slot: it drops out of the convergence mask."""
        self._check_slot(slot)
        self.active[slot] = False

    def copy_slot(self, src: int, dst: int) -> None:
        """Duplicate slot ``src``'s entire state into slot ``dst``."""
        self._check_slot(src)
        self._check_slot(dst)
        self.slot_copies += 1
        self._durations[dst] = list(self._durations[src])
        self._est[dst] = list(self._est[src])
        self._eft[dst] = list(self._eft[src])
        self._lst[dst] = list(self._lst[src])
        self._lft[dst] = list(self._lft[src])
        self._argmax_pred[dst] = list(self._argmax_pred[src])
        self._est2d[dst] = self._est2d[src]
        self._lst2d[dst] = self._lst2d[src]
        self._makespans[dst] = self._makespans[src]
        self.active[dst] = True

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.batch:
            raise ScheduleError(f"slot {slot} out of range (batch={self.batch})")

    # -- state accessors ------------------------------------------------

    @property
    def est_batch(self) -> np.ndarray:
        """The ``(batch, num_nodes)`` EST plane (live view; do not mutate)."""
        return self._est2d

    @property
    def lst_batch(self) -> np.ndarray:
        """The ``(batch, num_nodes)`` LST plane (live view; do not mutate)."""
        return self._lst2d

    @property
    def makespans(self) -> np.ndarray:
        """Per-slot makespans as one ``(batch,)`` vector (live view)."""
        return self._makespans

    def makespan(self, slot: int) -> float:
        """Current makespan of one slot."""
        self._check_slot(slot)
        return float(self._makespans[slot])

    def duration_of(self, slot: int, node: int) -> float:
        """Current duration of ``node`` in ``slot``."""
        self._check_slot(slot)
        return self._durations[slot][node]

    # -- (re)initialization ---------------------------------------------

    def reset_slot(self, slot: int, durations: Sequence[float]) -> float:
        """Adopt a duration vector for one slot and resweep it fully."""
        self._check_slot(slot)
        index = self.index
        if len(durations) != index.num_nodes:
            raise ScheduleError(
                f"expected {index.num_nodes} durations, got {len(durations)}"
            )
        self._durations[slot] = [float(d) for d in durations]
        self._resweep_slot(slot)
        return float(self._makespans[slot])

    def _resweep_slot(self, slot: int) -> None:
        self.full_sweeps += 1
        swept = sweep_arrays(self.index, self._durations[slot], self._transfers)
        est, eft, lst, lft, argmax_pred, makespan = swept
        self._est[slot] = est
        self._eft[slot] = eft
        self._lst[slot] = lst
        self._lft[slot] = lft
        self._argmax_pred[slot] = argmax_pred
        self._makespans[slot] = makespan
        self._est2d[slot] = est
        self._lst2d[slot] = lst
        self.nodes_recomputed += self.index.num_nodes

    def sweep_batch(self, slots: Sequence[int], durations: np.ndarray) -> np.ndarray:
        """Full sweeps of many slots in one vectorized pass; returns makespans.

        ``durations`` is ``(len(slots), num_nodes)`` — one duration
        vector per requested slot.  The forward/backward passes loop
        over the *nodes* and vectorize across the *slot axis*: per node,
        the predecessor ``max`` (plus per-edge transfers) and successor
        ``min`` reduce over a gathered ``(R, k)`` candidate block.
        ``max``/``min`` over the same operand set are exact and
        order-independent for IEEE floats (no NaNs here, and ``-0.0``
        cannot arise from the nonnegative inputs), and the tied-argmax
        keeps the first name-sorted predecessor exactly like the scalar
        accumulation — so row ``r`` is bit-identical to
        :func:`sweep_arrays` on ``durations[r]``.
        """
        index = self.index
        n = index.num_nodes
        rows = len(slots)
        for slot in slots:
            self._check_slot(slot)
        dur = np.array(durations, dtype=float)
        if dur.shape != (rows, n):
            raise ScheduleError(
                f"expected durations of shape {(rows, n)}, got {dur.shape}"
            )
        if np.any(dur < 0):
            raise ScheduleError("durations must be nonnegative")
        self.batched_sweeps += 1
        self.nodes_recomputed += rows * n

        pred_ptr, pred_idx = index.pred_ptr, index.pred_idx
        transfers = self._transfers
        est = np.zeros((rows, n))
        eft = np.zeros((rows, n))
        argmax_pred = np.full((rows, n), -1, dtype=np.intp)
        for v in range(n):
            lo, hi = pred_ptr[v], pred_ptr[v + 1]
            if lo != hi:
                preds = np.asarray(pred_idx[lo:hi], dtype=np.intp)
                ready = eft[:, preds]
                if transfers is not None:
                    ready = ready + np.asarray(transfers[lo:hi])
                best = ready.max(axis=1)
                est[:, v] = best
                argmax_pred[:, v] = preds[
                    np.argmax(ready == best[:, None], axis=1)
                ]
            eft[:, v] = est[:, v] + dur[:, v]

        makespans = eft[:, index.exit].copy()

        succ_ptr, succ_idx, succ_slot = index.succ_ptr, index.succ_idx, index.succ_slot
        lft = np.zeros((rows, n))
        lst = np.zeros((rows, n))
        for v in range(n - 1, -1, -1):
            lo, hi = succ_ptr[v], succ_ptr[v + 1]
            if lo == hi:
                latest = makespans
            else:
                succs = np.asarray(succ_idx[lo:hi], dtype=np.intp)
                cand = lst[:, succs]
                if transfers is not None:
                    cand = cand - np.asarray(
                        [transfers[succ_slot[k]] for k in range(lo, hi)]
                    )
                latest = cand.min(axis=1)
            lft[:, v] = latest
            lst[:, v] = latest - dur[:, v]

        for r, slot in enumerate(slots):
            self._durations[slot] = dur[r].tolist()
            self._est[slot] = est[r].tolist()
            self._eft[slot] = eft[r].tolist()
            self._lst[slot] = lst[r].tolist()
            self._lft[slot] = lft[r].tolist()
            self._argmax_pred[slot] = argmax_pred[r].tolist()
            self._est2d[slot] = est[r]
            self._lst2d[slot] = lst[r]
            self._makespans[slot] = makespans[r]
        result: np.ndarray = makespans
        return result

    # -- the per-slot incremental update --------------------------------

    def set_row_duration(self, slot: int, row: int, value: float) -> float:
        """Set TE/CE row ``row`` of ``slot``; returns the slot's makespan."""
        sched = self.index.sched_nodes
        if not 0 <= row < len(sched):
            raise ScheduleError(f"schedulable row {row} out of range")
        return self.set_duration(slot, sched[row], value)

    def set_duration(self, slot: int, node: int, value: float) -> float:
        """Set the duration of ``node`` in ``slot`` and repropagate.

        Same contract as :meth:`IncrementalSweep.set_duration`: after
        this call slot ``slot``'s buffers are bitwise equal to what
        :func:`sweep_arrays` would produce from scratch on its updated
        duration vector.
        """
        self._check_slot(slot)
        index = self.index
        n = index.num_nodes
        if not 0 <= node < n:
            raise ScheduleError(f"node id {node} out of range")
        value = float(value)
        if value < 0:
            raise ScheduleError(
                f"module {index.names[node]!r} has negative duration {value!r}"
            )
        self.updates += 1
        durations = self._durations[slot]
        if value == durations[node]:
            return float(self._makespans[slot])
        durations[node] = value
        if n - node >= self.full_sweep_threshold:
            self._resweep_slot(slot)
            return float(self._makespans[slot])
        self.incremental_updates += 1

        est, eft = self._est[slot], self._eft[slot]
        transfers = self._transfers
        hi = _forward_span(
            index, durations, transfers, est, eft, self._argmax_pred[slot], node
        )

        # Bitwise comparison, exactly as in the incremental engine.
        new_makespan = eft[index.exit]
        makespan_changed = new_makespan != self._makespans[slot]  # lint: ignore[RA901]
        self._makespans[slot] = new_makespan

        lst, lft = self._lst[slot], self._lft[slot]
        if makespan_changed:
            start = n - 1
            lo = 0
            _backward_full(index, durations, transfers, new_makespan, lst, lft)
        else:
            start = node
            lo = _backward_span(
                index, durations, transfers, new_makespan, lst, lft, node
            )

        # Sync the 2-D mirrors over exactly the recomputed spans.
        self._est2d[slot, node : hi + 1] = est[node : hi + 1]
        self._lst2d[slot, lo : start + 1] = lst[lo : start + 1]
        self.nodes_recomputed += (hi - node + 1) + (start - lo + 1)
        return new_makespan

    # -- batched consumers ----------------------------------------------

    def critical_rows(self, slot: int) -> np.ndarray:
        """Boolean TE/CE-row mask of critical modules in one slot."""
        self._check_slot(slot)
        return critical_row_mask(self.index, self._est2d[slot], self._lst2d[slot])

    def critical_rows_batch(self, slots: Sequence[int]) -> np.ndarray:
        """``(len(slots), num_sched)`` critical masks in one 2-D comparison."""
        for slot in slots:
            self._check_slot(slot)
        rows = np.asarray(slots, dtype=np.intp)
        return critical_row_mask_batch(
            self.index, self._est2d[rows], self._lst2d[rows]
        )

    def result(self, slot: int) -> FastPathResult:
        """Snapshot one slot as an immutable :class:`FastPathResult`."""
        self._check_slot(slot)
        return _result_from_lists(
            self.workflow,
            self.index,
            list(self._durations[slot]),
            (
                list(self._est[slot]),
                list(self._eft[slot]),
                list(self._lst[slot]),
                list(self._lft[slot]),
                list(self._argmax_pred[slot]),
                float(self._makespans[slot]),
            ),
        )


class _LazyCriticalPathAnalysis(CriticalPathAnalysis):
    """A :class:`CriticalPathAnalysis` materialized from kernel arrays.

    The dict fields (``est``/``eft``/``lst``/``lft``/``durations``), the
    ``critical_path`` tuple and ``makespan`` are only built on first
    attribute access — schedulers that read nothing but the makespan
    (which :class:`~repro.core.schedule.ScheduleEvaluation` carries
    separately) never pay for the name-keyed views.  Once materialized,
    the instance is indistinguishable from a reference analysis: same
    class hierarchy, same dict contents, same deterministic longest path.
    """

    def __init__(self, result: "FastPathResult") -> None:
        # Deliberately does not call the dataclass __init__: fields are
        # installed by _materialize() on first access.
        object.__setattr__(self, "_result", result)

    def __getattr__(self, name: str) -> Any:
        if name in _ANALYSIS_FIELDS:
            object.__getattribute__(self, "_materialize")()
            return object.__getattribute__(self, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __eq__(self, other: object) -> bool:
        # The dataclass-generated __eq__ demands an exact class match; the
        # facade must instead compare equal to any CriticalPathAnalysis
        # with the same field values (the equivalence tests rely on it).
        if isinstance(other, CriticalPathAnalysis):
            self._materialize()
            return all(
                getattr(self, field) == getattr(other, field)
                for field in _ANALYSIS_FIELDS
            )
        return NotImplemented

    __hash__ = CriticalPathAnalysis.__hash__

    def _materialize(self) -> None:
        if "makespan" in self.__dict__:
            return
        result: FastPathResult = object.__getattribute__(self, "_result")
        index = result.index
        names = index.names
        durations = result.durations.tolist()
        object.__setattr__(self, "workflow", result.workflow)
        object.__setattr__(self, "durations", dict(zip(names, durations)))
        object.__setattr__(self, "est", dict(zip(names, result.est.tolist())))
        object.__setattr__(self, "eft", dict(zip(names, result.eft.tolist())))
        object.__setattr__(self, "lst", dict(zip(names, result.lst.tolist())))
        object.__setattr__(self, "lft", dict(zip(names, result.lft.tolist())))
        object.__setattr__(self, "makespan", result.makespan)
        object.__setattr__(self, "critical_path", result.critical_path_names())


_ANALYSIS_FIELDS = frozenset(
    {"workflow", "durations", "est", "eft", "lst", "lft", "makespan", "critical_path"}
)


@dataclass(frozen=True)
class FastPathResult:
    """Array-based result of one critical-path sweep.

    All vectors are numpy float arrays in node-id (topological) order;
    use ``index.node_index[name]`` to address a module by name, or
    :meth:`as_analysis` for the dict-keyed compatibility view.
    """

    workflow: Workflow
    index: GraphIndex
    durations: np.ndarray
    est: np.ndarray
    eft: np.ndarray
    lst: np.ndarray
    lft: np.ndarray
    makespan: float
    argmax_pred: tuple[int, ...]

    def buffer_times(self) -> np.ndarray:
        """Per-node slack ``lst - est`` as one vector."""
        return self.lst - self.est

    def critical_mask(self) -> np.ndarray:
        """Boolean vector: which nodes have (numerically) zero buffer."""
        result: np.ndarray = self.buffer_times() <= _SLACK_TOL
        return result

    def critical_path_names(self) -> tuple[str, ...]:
        """One deterministic longest entry->exit path (reference-identical)."""
        names = self.index.names
        path = [names[self.index.exit]]
        cursor = self.argmax_pred[self.index.exit]
        while cursor >= 0:
            path.append(names[cursor])
            cursor = self.argmax_pred[cursor]
        path.reverse()
        return tuple(path)

    def critical_schedulable_rows(self) -> list[int]:
        """TE/CE rows of critical schedulable modules, in topo order.

        These are exactly the Critical-Greedy rescheduling candidates
        (:meth:`CriticalPathAnalysis.critical_schedulable` as row
        indices).
        """
        mask = critical_row_mask(self.index, self.est, self.lst)
        rows: list[int] = np.flatnonzero(mask).tolist()
        return rows

    def as_analysis(self) -> CriticalPathAnalysis:
        """The lazily materialized :class:`CriticalPathAnalysis` facade."""
        return _LazyCriticalPathAnalysis(self)


def _result_from_lists(
    workflow: Workflow,
    index: GraphIndex,
    durations: list[float],
    swept: tuple[list[float], list[float], list[float], list[float], list[int], float],
) -> FastPathResult:
    est, eft, lst, lft, argmax_pred, makespan = swept
    return FastPathResult(
        workflow=workflow,
        index=index,
        durations=np.asarray(durations, dtype=float),
        est=np.asarray(est, dtype=float),
        eft=np.asarray(eft, dtype=float),
        lst=np.asarray(lst, dtype=float),
        lft=np.asarray(lft, dtype=float),
        makespan=makespan,
        argmax_pred=tuple(argmax_pred),
    )


def fast_critical_path(
    workflow: Workflow,
    durations: Mapping[str, float],
    transfer_times: Mapping[tuple[str, str], float] | None = None,
) -> FastPathResult:
    """Array-backed equivalent of :func:`analyze_critical_path`.

    Same inputs, same validation, bit-identical est/eft/lst/lft/makespan
    and critical path — returned as :class:`FastPathResult` vectors
    instead of name-keyed dicts (use :meth:`FastPathResult.as_analysis`
    for the dict view).

    Raises
    ------
    ScheduleError
        If a module is missing from ``durations`` or a duration is
        negative (identical to the reference).
    """
    index = graph_index(workflow)
    vector: list[float] = []
    for name in index.names:
        if name not in durations:
            raise ScheduleError(f"no duration supplied for module {name!r}")
        value = durations[name]
        if value < 0:
            raise ScheduleError(
                f"module {name!r} has negative duration {value!r}"
            )
        vector.append(float(value))
    transfers = transfer_vector(index, transfer_times)
    swept = sweep_arrays(index, vector, transfers)
    return _result_from_lists(workflow, index, vector, swept)


def evaluate_assignment_vectors(
    workflow: Workflow,
    te: np.ndarray,
    columns: list[int],
    transfer_times: Mapping[tuple[str, str], float] | None = None,
) -> FastPathResult:
    """Sweep a schedule given directly as a per-row type-column vector.

    ``columns[i]`` is the VM-type column chosen for TE/CE row ``i``
    (schedulable modules in topological order).  This is the zero-dict
    entry point used by :meth:`Schedule.evaluate` and the fast
    Critical-Greedy engine.
    """
    index = graph_index(workflow)
    durations = list(index.base_durations)
    for row, node in enumerate(index.sched_nodes):
        durations[node] = float(te[row, columns[row]])
    transfers = transfer_vector(index, transfer_times)
    swept = sweep_arrays(index, durations, transfers)
    return _result_from_lists(workflow, index, durations, swept)
