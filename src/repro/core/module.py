"""Workflow module (task) and data-dependency edge primitives.

The paper models a scientific workflow as a DAG :math:`G_w(V_w, E_w)` whose
nodes are *computing modules* (aggregated tasks, after workflow clustering)
and whose edges are *data dependencies*.  Each module :math:`w_i` carries a
workload :math:`WL_i`; each edge :math:`l_{i,j}` carries a data size
:math:`DS_{i,j}` (Section III-B).

Two special module kinds appear in the paper's examples:

* ordinary **computing modules** with a positive workload, whose execution
  time on a VM of type :math:`VT_j` is :math:`WL_i / VP_j` (Eq. 6); and
* **entry/exit modules** (:math:`w_0`, :math:`w_{m-1}`) that model the
  initial data-input and final data-output stages.  In the paper's numerical
  example those have a *fixed* execution time (one hour) and their financial
  cost is ignored.  We represent them with :attr:`Module.fixed_time`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import WorkflowValidationError

__all__ = ["Module", "DataDependency"]


@dataclass(frozen=True, slots=True)
class Module:
    """A workflow computing module (one node of the task graph).

    Parameters
    ----------
    name:
        Unique identifier within its workflow (e.g. ``"w3"``).
    workload:
        The workload :math:`WL_i` in abstract work units.  Execution time on
        a VM type with processing power ``VP`` is ``workload / VP``.
        Ignored when :attr:`fixed_time` is set.
    fixed_time:
        If not ``None``, this module always takes exactly ``fixed_time``
        time units regardless of the VM it runs on, and it incurs no
        financial cost.  Used for entry/exit (data staging) modules.
    metadata:
        Free-form annotations (e.g. the underlying WRF program names for an
        aggregate module).  Not interpreted by the library.
    """

    name: str
    workload: float = 0.0
    fixed_time: float | None = None
    metadata: tuple[tuple[str, object], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowValidationError("module name must be a non-empty string")
        if self.fixed_time is None:
            if not math.isfinite(self.workload) or self.workload < 0:
                raise WorkflowValidationError(
                    f"module {self.name!r}: workload must be finite and >= 0, "
                    f"got {self.workload!r}"
                )
        else:
            if not math.isfinite(self.fixed_time) or self.fixed_time < 0:
                raise WorkflowValidationError(
                    f"module {self.name!r}: fixed_time must be finite and >= 0, "
                    f"got {self.fixed_time!r}"
                )

    @property
    def is_fixed(self) -> bool:
        """Whether this is a fixed-duration (entry/exit style) module."""
        return self.fixed_time is not None

    @property
    def is_schedulable(self) -> bool:
        """Whether the scheduler must choose a VM type for this module.

        Fixed-duration modules are not schedulable: their duration and
        (zero) cost do not depend on the VM-type choice, matching the
        paper's treatment of :math:`w_0` and the exit module.
        """
        return self.fixed_time is None

    def execution_time(self, processing_power: float) -> float:
        """Execution time of this module on a VM with the given power.

        Implements Eq. 6, :math:`T(E_{i,j}) = WL_i / VP_j`, except for
        fixed-duration modules which return :attr:`fixed_time`.
        """
        if self.fixed_time is not None:
            return self.fixed_time
        if processing_power <= 0:
            raise WorkflowValidationError(
                f"processing power must be positive, got {processing_power!r}"
            )
        return self.workload / processing_power

    def with_workload(self, workload: float) -> "Module":
        """Return a copy of this module with a different workload."""
        return Module(
            name=self.name,
            workload=workload,
            fixed_time=self.fixed_time,
            metadata=self.metadata,
        )


@dataclass(frozen=True, slots=True)
class DataDependency:
    """A directed data-dependency edge :math:`l_{i,j}` of the task graph.

    Parameters
    ----------
    src, dst:
        Names of the producing and consuming modules.
    data_size:
        Data volume :math:`DS_{i,j}` transferred over the edge, in abstract
        data units.  Transfer time over a virtual link of bandwidth ``BW``
        and latency ``d`` is ``data_size / BW + d`` (Eq. 5); transfer cost
        is ``CR * data_size`` (Eq. 4, with ``CR = 0`` intra-cloud).
    """

    src: str
    dst: str
    data_size: float = 0.0

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise WorkflowValidationError("edge endpoints must be non-empty names")
        if self.src == self.dst:
            raise WorkflowValidationError(
                f"self-loop on module {self.src!r} is not allowed in a DAG"
            )
        if not math.isfinite(self.data_size) or self.data_size < 0:
            raise WorkflowValidationError(
                f"edge {self.src!r}->{self.dst!r}: data size must be finite and "
                f">= 0, got {self.data_size!r}"
            )

    @property
    def key(self) -> tuple[str, str]:
        """The ``(src, dst)`` pair identifying this edge."""
        return (self.src, self.dst)
