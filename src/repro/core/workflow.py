"""The validated DAG task-graph model used throughout the library.

A :class:`Workflow` is an immutable-after-construction directed acyclic
graph of :class:`~repro.core.module.Module` nodes connected by
:class:`~repro.core.module.DataDependency` edges, mirroring the paper's
:math:`G_w(V_w, E_w)` (Section III-B).  It enforces the structural
invariants the scheduling and simulation layers rely on:

* the graph is acyclic;
* there is exactly one entry module (no predecessors) and exactly one exit
  module (no successors) — workflows that naturally have several sources or
  sinks can be normalized with :meth:`WorkflowBuilder.normalized`;
* every edge references declared modules.

The class is deliberately a thin, validated wrapper over
:class:`networkx.DiGraph` so analysis code can drop down to networkx
algorithms when convenient (``workflow.graph``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING, Any

import networkx as nx

from repro.core.module import DataDependency, Module
from repro.exceptions import WorkflowValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.fastpath import GraphIndex

__all__ = ["Workflow", "WorkflowBuilder"]


class Workflow:
    """An immutable, validated DAG of workflow modules.

    Parameters
    ----------
    modules:
        The workflow modules.  Names must be unique.
    edges:
        Data-dependency edges between declared modules.
    name:
        Optional human-readable workflow name (used in reports).

    Raises
    ------
    WorkflowValidationError
        If any structural invariant is violated.
    """

    __slots__ = (
        "_name",
        "_modules",
        "_graph",
        "_topo",
        "_entry",
        "_exit",
        "_fastpath_cache",
    )

    def __init__(
        self,
        modules: Iterable[Module],
        edges: Iterable[DataDependency] = (),
        *,
        name: str = "workflow",
    ) -> None:
        self._name = name
        self._modules: dict[str, Module] = {}
        for mod in modules:
            if mod.name in self._modules:
                raise WorkflowValidationError(f"duplicate module name {mod.name!r}")
            self._modules[mod.name] = mod
        if not self._modules:
            raise WorkflowValidationError("a workflow needs at least one module")

        graph = nx.DiGraph()
        graph.add_nodes_from(self._modules)
        for edge in edges:
            for endpoint in edge.key:
                if endpoint not in self._modules:
                    raise WorkflowValidationError(
                        f"edge {edge.src!r}->{edge.dst!r} references unknown "
                        f"module {endpoint!r}"
                    )
            if graph.has_edge(edge.src, edge.dst):
                raise WorkflowValidationError(
                    f"duplicate edge {edge.src!r}->{edge.dst!r}"
                )
            graph.add_edge(edge.src, edge.dst, dep=edge)

        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise WorkflowValidationError(f"workflow contains a cycle: {cycle}")

        sources = [n for n in graph.nodes if graph.in_degree(n) == 0]
        sinks = [n for n in graph.nodes if graph.out_degree(n) == 0]
        if len(sources) != 1:
            raise WorkflowValidationError(
                f"workflow must have exactly one entry module, found {sources}; "
                "use WorkflowBuilder.normalized() to add a virtual entry"
            )
        if len(sinks) != 1:
            raise WorkflowValidationError(
                f"workflow must have exactly one exit module, found {sinks}; "
                "use WorkflowBuilder.normalized() to add a virtual exit"
            )

        self._graph = graph
        self._topo: tuple[str, ...] = tuple(nx.lexicographical_topological_sort(graph))
        self._entry = sources[0]
        self._exit = sinks[0]
        # Lazily built CSR index (repro.core.fastpath.graph_index); the
        # workflow is immutable so the index never invalidates.
        self._fastpath_cache: "GraphIndex | None" = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """Human-readable workflow name."""
        return self._name

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    @property
    def entry(self) -> str:
        """Name of the unique entry (source) module."""
        return self._entry

    @property
    def exit(self) -> str:
        """Name of the unique exit (sink) module."""
        return self._exit

    @property
    def module_names(self) -> tuple[str, ...]:
        """All module names in deterministic topological order."""
        return self._topo

    @property
    def schedulable_names(self) -> tuple[str, ...]:
        """Names of modules that require a VM-type decision, in topo order."""
        return tuple(n for n in self._topo if self._modules[n].is_schedulable)

    @property
    def num_modules(self) -> int:
        """Total number of modules, including fixed entry/exit modules."""
        return len(self._modules)

    @property
    def num_edges(self) -> int:
        """Number of data-dependency edges."""
        return self._graph.number_of_edges()

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, name: object) -> bool:
        return name in self._modules

    def __iter__(self) -> Iterator[Module]:
        for name in self._topo:
            yield self._modules[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workflow(name={self._name!r}, modules={self.num_modules}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, modules and dependency edges.

        Module declaration order is irrelevant (the graph is the same);
        this is what makes the codec round-trip ``decode(encode(wf)) == wf``
        a meaningful property (see :mod:`repro.service.codec`).
        """
        if not isinstance(other, Workflow):
            return NotImplemented
        return (
            self._name == other._name
            and self._modules == other._modules
            and {e.key: e for e in self.edges()} == {e.key: e for e in other.edges()}
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._name,
                frozenset(self._modules.values()),
                frozenset(self.edges()),
            )
        )

    def module(self, name: str) -> Module:
        """Return the module with the given name.

        Raises
        ------
        WorkflowValidationError
            If no module with that name exists.
        """
        try:
            return self._modules[name]
        except KeyError:
            raise WorkflowValidationError(
                f"unknown module {name!r} in workflow {self._name!r}"
            ) from None

    def dependency(self, src: str, dst: str) -> DataDependency:
        """Return the edge object between two modules."""
        try:
            return self._graph.edges[src, dst]["dep"]
        except KeyError:
            raise WorkflowValidationError(
                f"no edge {src!r}->{dst!r} in workflow {self._name!r}"
            ) from None

    def edges(self) -> Iterator[DataDependency]:
        """Iterate over all data-dependency edges (deterministic order)."""
        for src, dst in sorted(self._graph.edges):
            yield self._graph.edges[src, dst]["dep"]

    def predecessors(self, name: str) -> tuple[str, ...]:
        """Direct predecessors of a module, sorted by name."""
        self.module(name)
        return tuple(sorted(self._graph.predecessors(name)))

    def successors(self, name: str) -> tuple[str, ...]:
        """Direct successors of a module, sorted by name."""
        self.module(name)
        return tuple(sorted(self._graph.successors(name)))

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #

    def topological_order(self) -> tuple[str, ...]:
        """Module names in deterministic (lexicographic) topological order."""
        return self._topo

    def layers(self) -> list[tuple[str, ...]]:
        """Partition modules into topological layers (ASAP levels).

        Layer 0 holds the entry module; layer ``k`` holds modules whose
        longest hop-distance from the entry is ``k``.  Useful for layered
        workload generation and quick structural summaries.
        """
        depth: dict[str, int] = {}
        for node in self._topo:
            preds = list(self._graph.predecessors(node))
            depth[node] = 0 if not preds else 1 + max(depth[p] for p in preds)
        num_layers = max(depth.values()) + 1
        buckets: list[list[str]] = [[] for _ in range(num_layers)]
        for node, d in depth.items():
            buckets[d].append(node)
        return [tuple(sorted(b)) for b in buckets]

    def total_workload(self) -> float:
        """Sum of workloads over all schedulable modules."""
        return sum(self._modules[n].workload for n in self.schedulable_names)

    def problem_size(self, num_vm_types: int) -> tuple[int, int, int]:
        """The paper's 3-tuple problem size ``(m, |Ew|, n)``.

        Following the paper's generator ("lay out m modules sequentially
        from w0 to w_{m-1} … the workload for the entry and exit modules is
        ignored"), ``m`` counts *all* modules including the fixed-duration
        entry/exit staging modules; ``|Ew|`` counts all edges; ``n`` is the
        supplied number of available VM types.
        """
        return (self.num_modules, self.num_edges, num_vm_types)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain-dict representation (JSON compatible)."""
        return {
            "name": self._name,
            "modules": [
                {
                    "name": m.name,
                    "workload": m.workload,
                    "fixed_time": m.fixed_time,
                }
                for m in self
            ],
            "edges": [
                {"src": e.src, "dst": e.dst, "data_size": e.data_size}
                for e in self.edges()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Workflow":
        """Inverse of :meth:`to_dict`."""
        modules = [
            Module(
                name=spec["name"],
                workload=float(spec.get("workload", 0.0)),
                fixed_time=spec.get("fixed_time"),
            )
            for spec in payload["modules"]
        ]
        edges = [
            DataDependency(
                src=spec["src"],
                dst=spec["dst"],
                data_size=float(spec.get("data_size", 0.0)),
            )
            for spec in payload.get("edges", ())
        ]
        return cls(modules, edges, name=str(payload.get("name", "workflow")))

    def relabeled(self, mapping: Mapping[str, str]) -> "Workflow":
        """Return a copy with module names replaced per ``mapping``.

        Names absent from the mapping are kept unchanged.
        """
        def rename(n: str) -> str:
            return mapping.get(n, n)

        modules = [
            Module(rename(m.name), m.workload, m.fixed_time, m.metadata)
            for m in self
        ]
        edges = [
            DataDependency(rename(e.src), rename(e.dst), e.data_size)
            for e in self.edges()
        ]
        return Workflow(modules, edges, name=self._name)


class WorkflowBuilder:
    """Mutable builder that accumulates modules/edges, then validates once.

    Example
    -------
    >>> b = WorkflowBuilder("demo")
    >>> b.add_module("w1", workload=10).add_module("w2", workload=20)
    ... # doctest: +ELLIPSIS
    <repro.core.workflow.WorkflowBuilder object at ...>
    >>> b.add_edge("w1", "w2", data_size=5.0)  # doctest: +ELLIPSIS
    <repro.core.workflow.WorkflowBuilder object at ...>
    >>> wf = b.build()
    >>> wf.num_modules, wf.num_edges
    (2, 1)
    """

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._modules: list[Module] = []
        self._edges: list[DataDependency] = []

    def add_module(
        self,
        name: str,
        *,
        workload: float = 0.0,
        fixed_time: float | None = None,
    ) -> "WorkflowBuilder":
        """Declare a module; returns ``self`` for chaining."""
        self._modules.append(Module(name, workload=workload, fixed_time=fixed_time))
        return self

    def add_edge(self, src: str, dst: str, *, data_size: float = 0.0) -> "WorkflowBuilder":
        """Declare a data dependency; returns ``self`` for chaining."""
        self._edges.append(DataDependency(src, dst, data_size=data_size))
        return self

    def module_names(self) -> list[str]:
        """Names declared so far, in insertion order."""
        return [m.name for m in self._modules]

    def build(self) -> Workflow:
        """Validate and return the finished :class:`Workflow`."""
        return Workflow(self._modules, self._edges, name=self.name)

    def normalized(
        self,
        *,
        entry_name: str = "__entry__",
        exit_name: str = "__exit__",
        staging_time: float = 0.0,
    ) -> Workflow:
        """Build, adding virtual entry/exit modules if needed.

        Any module without predecessors is attached to a fixed-duration
        entry module, and any module without successors to a fixed-duration
        exit module, so the result always satisfies the single-source /
        single-sink invariant.  ``staging_time`` is the fixed duration
        assigned to each virtual module (the paper's example uses one hour).
        """
        names = {m.name for m in self._modules}
        if entry_name in names or exit_name in names:
            raise WorkflowValidationError(
                f"virtual module name collision: {entry_name!r}/{exit_name!r}"
            )
        graph = nx.DiGraph()
        graph.add_nodes_from(names)
        graph.add_edges_from((e.src, e.dst) for e in self._edges)

        modules = list(self._modules)
        edges = list(self._edges)
        sources = sorted(n for n in names if graph.in_degree(n) == 0)
        sinks = sorted(n for n in names if graph.out_degree(n) == 0)
        if len(sources) != 1 or len(sinks) != 1 or sources == sinks:
            modules.append(Module(entry_name, fixed_time=staging_time))
            modules.append(Module(exit_name, fixed_time=staging_time))
            edges.extend(DataDependency(entry_name, s) for s in sources)
            edges.extend(DataDependency(s, exit_name) for s in sinks)
        return Workflow(modules, edges, name=self.name)
