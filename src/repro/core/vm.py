"""VM types and VM-type catalogs (the paper's :math:`VT` set, Eq. 3).

Each VM type :math:`VT_j = \\{VP_j, CV_j\\}` bundles an overall *processing
power* :math:`VP_j` and an overall per-unit-time *charging rate*
:math:`CV_j` covering initialization, execution and intra-cloud transfer
(Section III-B).  A :class:`VMTypeCatalog` is the ordered set of types the
scheduler may choose from.

The helper :func:`linear_priced_catalog` reproduces the simulation setup of
Section VI-A: "the price is a linear function of the number of processing
units in the VM type" — a base unit of processing power with a base price,
every type priced by its number of base units.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import CatalogError

__all__ = ["VMType", "VMTypeCatalog", "linear_priced_catalog"]


@dataclass(frozen=True, slots=True)
class VMType:
    """One virtual-machine type :math:`VT_j = \\{VP_j, CV_j\\}`.

    Parameters
    ----------
    name:
        Unique type name within its catalog (e.g. ``"VT2"``).
    power:
        Processing power :math:`VP_j` (work units per time unit).
    rate:
        Charging rate :math:`CV_j` (currency per billed time unit).
    startup_time:
        VM provisioning/boot latency :math:`T(I_j)` (Eq. 2).  The
        analytical MED-CC model assumes VMs are launched in advance
        ("we can always launch the VMs in advance", Section VI-C2), so the
        scheduling layer ignores this; the DES simulator can honour it.
    startup_cost:
        One-off initialization cost :math:`C(I_j)` (Eq. 1).  Zero in the
        paper's single-cloud evaluation.
    """

    name: str
    power: float
    rate: float
    startup_time: float = 0.0
    startup_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("VM type name must be non-empty")
        if not math.isfinite(self.power) or self.power <= 0:
            raise CatalogError(
                f"VM type {self.name!r}: processing power must be positive, "
                f"got {self.power!r}"
            )
        if not math.isfinite(self.rate) or self.rate < 0:
            raise CatalogError(
                f"VM type {self.name!r}: charging rate must be >= 0, got {self.rate!r}"
            )
        if self.startup_time < 0 or self.startup_cost < 0:
            raise CatalogError(
                f"VM type {self.name!r}: startup time/cost must be >= 0"
            )


class VMTypeCatalog:
    """An ordered, validated collection of :class:`VMType` objects.

    Types are addressed by integer index (the :math:`j` of the paper) or by
    name.  Iteration order is the declaration order.
    """

    __slots__ = ("_types", "_by_name")

    def __init__(self, types: Iterable[VMType]) -> None:
        self._types: tuple[VMType, ...] = tuple(types)
        if not self._types:
            raise CatalogError("a VM-type catalog must contain at least one type")
        self._by_name: dict[str, int] = {}
        for idx, vt in enumerate(self._types):
            if vt.name in self._by_name:
                raise CatalogError(f"duplicate VM type name {vt.name!r}")
            self._by_name[vt.name] = idx

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[VMType]:
        return iter(self._types)

    def __getitem__(self, key: int | str) -> VMType:
        if isinstance(key, str):
            return self._types[self.index_of(key)]
        return self._types[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VMTypeCatalog({[t.name for t in self._types]})"

    def __eq__(self, other: object) -> bool:
        """Value equality: same types in the same declaration order.

        Order matters — schedules address types by index — so a permuted
        catalog is a *different* catalog here even though the service
        content hash (:mod:`repro.service.keys`) treats it as the same
        instance.
        """
        if not isinstance(other, VMTypeCatalog):
            return NotImplemented
        return self._types == other._types

    def __hash__(self) -> int:
        return hash(self._types)

    def index_of(self, name: str) -> int:
        """Index of the type with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"unknown VM type {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """All type names in declaration order."""
        return tuple(t.name for t in self._types)

    @property
    def powers(self) -> tuple[float, ...]:
        """Processing powers :math:`VP_j` in declaration order."""
        return tuple(t.power for t in self._types)

    @property
    def rates(self) -> tuple[float, ...]:
        """Charging rates :math:`CV_j` in declaration order."""
        return tuple(t.rate for t in self._types)

    def fastest(self) -> int:
        """Index of the highest-power type (ties: lowest rate, then first)."""
        return max(
            range(len(self._types)),
            key=lambda j: (self._types[j].power, -self._types[j].rate, -j),
        )

    def cheapest(self) -> int:
        """Index of the lowest-rate type (ties: highest power, then first)."""
        return min(
            range(len(self._types)),
            key=lambda j: (self._types[j].rate, -self._types[j].power, j),
        )

    def subset(self, names: Sequence[str]) -> "VMTypeCatalog":
        """A new catalog restricted to the given type names (in that order)."""
        return VMTypeCatalog([self[name] for name in names])


def linear_priced_catalog(
    units: Sequence[int],
    *,
    base_power: float = 1.0,
    base_price: float = 1.0,
    name_prefix: str = "VT",
    startup_time: float = 0.0,
) -> VMTypeCatalog:
    """Build a catalog priced linearly in processing units (paper §VI-A).

    Parameters
    ----------
    units:
        Number of base processing units per type, e.g. ``[1, 2, 4, 8]``.
    base_power:
        Processing power of one base unit.
    base_price:
        Price per time unit of one base unit.
    name_prefix:
        Types are named ``f"{name_prefix}{k}"`` with ``k`` starting at 1.
    startup_time:
        Boot latency applied to every generated type.

    Returns
    -------
    VMTypeCatalog
        Catalog with ``power = units[k] * base_power`` and
        ``rate = units[k] * base_price``.
    """
    if not units:
        raise CatalogError("need at least one VM size (processing-unit count)")
    types = []
    for k, n_units in enumerate(units, start=1):
        if n_units <= 0:
            raise CatalogError(f"processing-unit count must be positive, got {n_units}")
        types.append(
            VMType(
                name=f"{name_prefix}{k}",
                power=n_units * base_power,
                rate=n_units * base_price,
                startup_time=startup_time,
            )
        )
    return VMTypeCatalog(types)
