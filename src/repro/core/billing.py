"""Billing policies — how raw execution time turns into billed units.

The paper adopts the EC2-style *instance-hour* model: "any partial hours
are often rounded up" (Section I, footnote), formalized in Eq. 7 as
:math:`C(E_{i,j}) = T'(E_{i,j}) \\cdot CV_j` where :math:`T'` is the
rounded-up execution time.  :class:`HourlyBilling` implements exactly that
and is the default everywhere.

Alternative policies are provided for the ablation study
(``benchmarks/bench_ablation_billing.py``):

* :class:`ExactBilling` — per-second style billing with no round-up
  (modern EC2/GCE behaviour);
* :class:`BlockBilling` — round up to multiples of an arbitrary block
  (e.g. 10-minute blocks).

All policies are pure, stateless, hashable value objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CatalogError

__all__ = [
    "BillingPolicy",
    "HourlyBilling",
    "ExactBilling",
    "BlockBilling",
    "DEFAULT_BILLING",
]

def _ceil_with_tolerance(value: float) -> int:
    """``ceil`` that forgives float noise just above an integer.

    Values within a few ULPs above an integer boundary (e.g.
    ``6.000000000000001`` arising from ``WL / VP`` arithmetic) are billed
    as that integer rather than pushed to the next unit.  The tolerance is
    ULP-scaled, so it never forgives more than genuine rounding noise —
    a fixed relative epsilon would silently under-bill large durations.
    """
    if value <= 0.0:
        return 0
    # Explicit half-up nearest integer.  ``round()`` uses banker's rounding
    # (round-half-even), whose data-dependent tie-break is the wrong anchor
    # for a "just above an integer boundary" tolerance test: the nearest
    # integer must be determined the same way for every value.
    floor_value = math.floor(value)
    nearest = floor_value + 1 if value - floor_value >= 0.5 else floor_value
    if abs(value - nearest) <= 4.0 * math.ulp(value):
        return int(nearest)
    return int(math.ceil(value))


def _ceil_with_tolerance_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_ceil_with_tolerance` (elementwise identical).

    ``np.spacing(|x|)`` is ``math.ulp(x)`` for finite ``x >= 0``, so the
    ULP-scaled tolerance band matches the scalar path bit-for-bit; the
    half-up nearest integer is computed explicitly for the same reason
    the scalar path avoids ``round()`` (banker's rounding is the wrong
    anchor for a boundary-noise test).
    """
    values = np.asarray(values, dtype=float)
    floor_values = np.floor(values)
    nearest = np.where(values - floor_values >= 0.5, floor_values + 1.0, floor_values)
    forgiven = np.abs(values - nearest) <= 4.0 * np.spacing(np.abs(values))
    billed = np.where(forgiven, nearest, np.ceil(values))
    result: np.ndarray = np.where(values <= 0.0, 0.0, billed)
    return result


@dataclass(frozen=True, slots=True)
class BillingPolicy:
    """Base billing policy; subclasses define :meth:`billed_units`.

    A billing policy converts a raw duration (in time units — "hours" in
    the paper) into the *billed* duration used for cost calculation.
    """

    def billed_units(self, duration: float) -> float:
        """Billed time units for a raw duration.  Must be >= duration."""
        raise NotImplementedError

    def billed_units_array(self, durations: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`billed_units` over an array of durations.

        The base implementation loops over the scalar method so custom
        policies stay correct by construction; the built-in policies
        override it with fully vectorized versions that the TE/CE
        matrix build (:func:`repro.core.matrices.compute_matrices`) uses
        on the whole ``m x n`` grid at once.

        All rounding semantics stay inside this module (lint rule RA902):
        every round-up — scalar or array — flows through a BillingPolicy.
        """
        flat = np.asarray(durations, dtype=float).ravel()
        billed = np.array([self.billed_units(value) for value in flat], dtype=float)
        return billed.reshape(np.shape(durations))

    def charge(self, duration: float, rate: float) -> float:
        """Financial cost of running for ``duration`` at ``rate`` per unit."""
        if duration < 0:
            raise CatalogError(f"cannot bill a negative duration: {duration!r}")
        if rate < 0:
            raise CatalogError(f"charging rate must be >= 0, got {rate!r}")
        return self.billed_units(duration) * rate


@dataclass(frozen=True, slots=True)
class HourlyBilling(BillingPolicy):
    """EC2-classic instance-hour billing: partial units round up (Eq. 7)."""

    def billed_units(self, duration: float) -> float:
        if duration < 0:
            raise CatalogError(f"cannot bill a negative duration: {duration!r}")
        return float(_ceil_with_tolerance(duration))

    def billed_units_array(self, durations: np.ndarray) -> np.ndarray:
        values = np.asarray(durations, dtype=float)
        if np.any(values < 0):
            raise CatalogError("cannot bill a negative duration")
        return _ceil_with_tolerance_array(values)


@dataclass(frozen=True, slots=True)
class ExactBilling(BillingPolicy):
    """Continuous billing with no round-up: billed units equal the duration."""

    def billed_units(self, duration: float) -> float:
        if duration < 0:
            raise CatalogError(f"cannot bill a negative duration: {duration!r}")
        return float(duration)

    def billed_units_array(self, durations: np.ndarray) -> np.ndarray:
        values = np.asarray(durations, dtype=float)
        if np.any(values < 0):
            raise CatalogError("cannot bill a negative duration")
        return values


@dataclass(frozen=True, slots=True)
class BlockBilling(BillingPolicy):
    """Round the duration up to a multiple of ``block`` time units.

    ``BlockBilling(1.0)`` is equivalent to :class:`HourlyBilling`;
    ``BlockBilling(1/60)`` models per-minute billing.
    """

    block: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.block) or self.block <= 0:
            raise CatalogError(f"billing block must be positive, got {self.block!r}")

    def billed_units(self, duration: float) -> float:
        if duration < 0:
            raise CatalogError(f"cannot bill a negative duration: {duration!r}")
        blocks = _ceil_with_tolerance(duration / self.block)
        return blocks * self.block

    def billed_units_array(self, durations: np.ndarray) -> np.ndarray:
        values = np.asarray(durations, dtype=float)
        if np.any(values < 0):
            raise CatalogError("cannot bill a negative duration")
        result: np.ndarray = _ceil_with_tolerance_array(values / self.block) * self.block
        return result


#: The paper's default: whole-unit (hourly) round-up billing.
DEFAULT_BILLING = HourlyBilling()
