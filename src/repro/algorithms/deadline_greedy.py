"""Deadline-Greedy — the dual problem (extension, paper's related work).

The paper's related-work section surveys the *dual* formulation: minimize
financial cost subject to a user-defined deadline (Yu et al. 2005,
Abrishami et al. 2012).  This extension solves that dual with the mirror
image of Critical-Greedy:

* start from the **fastest** schedule (minimum MED; if even that misses
  the deadline, the instance is infeasible);
* while the makespan is within the deadline, repeatedly apply the
  **downgrade** that saves the most cost among those keeping the makespan
  within the deadline (ties: smallest makespan increase);
* stop when no deadline-preserving saving remains.

Besides being useful on its own, the dual lets the test suite check a weak
duality property: running Deadline-Greedy with the deadline set to the MED
that Critical-Greedy achieved under budget ``B`` must yield a schedule of
cost ≤ ``Cmax`` meeting that deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import ReschedulingStep, SchedulerResult
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleBudgetError

__all__ = ["DeadlineGreedyScheduler"]

_EPS = 1e-9


@dataclass
class DeadlineGreedyScheduler:
    """Minimize cost under a deadline (the MED-CC dual), greedily.

    Not part of the scheduler registry because its ``solve`` signature
    takes a deadline, not a budget.
    """

    name = "deadline-greedy"

    def solve_deadline(
        self, problem: MedCCProblem, deadline: float
    ) -> SchedulerResult:
        """Return a low-cost schedule whose makespan is ≤ ``deadline``.

        Raises
        ------
        InfeasibleBudgetError
            If even the fastest schedule misses the deadline.  (Reuses the
            budget-infeasibility type with the roles of cost/time swapped;
            the message fields carry the deadline and the minimum MED.)
        """
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.fastest_schedule()
        evaluation = problem.evaluate(current)
        if evaluation.makespan > deadline + _EPS:
            raise InfeasibleBudgetError(deadline, evaluation.makespan)
        cost = problem.cost_of(current)
        steps: list[ReschedulingStep] = []

        while True:
            # The best deadline-preserving downgrade: maximum cost saving,
            # ties by smallest makespan after the move.
            best: tuple[float, float, str, int, Schedule] | None = None
            for module in problem.workflow.schedulable_names:
                i = row[module]
                j_cur = current[module]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    saving = c_old - ce[i, j]
                    if saving <= _EPS:
                        continue
                    trial = current.with_assignment(module, j)
                    makespan = problem.makespan_of(trial)
                    if makespan > deadline + _EPS:
                        continue
                    if (
                        best is None
                        or saving > best[0] + _EPS
                        or (abs(saving - best[0]) <= _EPS and makespan < best[1] - _EPS)
                    ):
                        best = (saving, makespan, module, j, trial)

            if best is None:
                break
            saving, makespan, module, j, trial = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=evaluation.makespan - makespan,
                    cost_increase=-saving,
                    makespan_after=makespan,
                    cost_after=cost - saving,
                )
            )
            current = trial
            cost -= saving
            evaluation = problem.evaluate(current)

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=float("inf"),
            steps=tuple(steps),
            extras={"deadline": deadline, "iterations": len(steps)},
        )
