"""Partial Critical Paths (PCP) — deadline-constrained cost minimization.

The paper's related work (§II) describes Abrishami & Naghibzadeh's
QoS-based scheduler: "they schedule modules on the critical path first to
minimize the cost without exceeding their deadline.  PCP are then formed
ending at those scheduled modules, and each PCP takes the start time of
the scheduled critical module as its deadline.  This scheduling process
continues recursively until all modules are scheduled."

This module implements that strategy for the one-to-one VM-type model:

1. compute the critical path of the *fastest* mapping and assign the
   whole path the user deadline;
2. choose the **cheapest** type combination for the path that still meets
   its (sub-)deadline — exact, via a Pareto (cost, time) DP over the
   path's modules;
3. every scheduled module's resulting start time becomes the sub-deadline
   of the partial critical path that ends at it; recurse until every
   module is assigned.

Because each PCP is solved exactly for its sub-deadline, the final
schedule always meets the global deadline whenever the fastest schedule
does (checked up front).  Like the original, it is a heuristic overall:
the decomposition into paths, not the per-path solve, is the
approximation.  The test suite cross-checks it against
:class:`~repro.algorithms.deadline_greedy.DeadlineGreedyScheduler` — the
two attack the same dual problem from different directions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SchedulerResult
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleBudgetError, ScheduleError

__all__ = ["PCPScheduler"]

_EPS = 1e-9


def _cheapest_chain_within(
    te_rows: list[list[float]],
    ce_rows: list[list[float]],
    time_budget: float,
) -> list[int] | None:
    """Min-cost type choice for a chain whose total time must fit a budget.

    Pareto DP over (time, cost) prefixes; ``None`` when even the fastest
    combination exceeds the budget.
    """
    frontier: list[tuple[float, float, tuple[int, ...]]] = [(0.0, 0.0, ())]
    min_time_suffix = [0.0] * (len(te_rows) + 1)
    for i in range(len(te_rows) - 1, -1, -1):
        min_time_suffix[i] = min_time_suffix[i + 1] + min(te_rows[i])

    for i, (times, costs) in enumerate(zip(te_rows, ce_rows)):
        bound = time_budget - min_time_suffix[i + 1] + _EPS
        expanded = [
            (t + times[j], c + costs[j], sel + (j,))
            for t, c, sel in frontier
            for j in range(len(times))
            if t + times[j] <= bound
        ]
        if not expanded:
            return None
        expanded.sort(key=lambda s: (s[0], s[1]))
        pruned: list[tuple[float, float, tuple[int, ...]]] = []
        best_cost = float("inf")
        for state in expanded:
            if state[1] < best_cost - _EPS:
                pruned.append(state)
                best_cost = state[1]
        frontier = pruned

    best = min(frontier, key=lambda s: (s[1], s[0]))
    return list(best[2])


@dataclass
class PCPScheduler:
    """Partial-Critical-Paths deadline scheduler (related-work substrate).

    Not in the budget-scheduler registry: like
    :class:`DeadlineGreedyScheduler`, its ``solve_deadline`` takes a
    deadline, not a budget.
    """

    name = "pcp"

    def solve_deadline(
        self, problem: MedCCProblem, deadline: float
    ) -> SchedulerResult:
        """Minimize cost subject to ``makespan <= deadline``.

        Raises
        ------
        InfeasibleBudgetError
            If even the fastest schedule misses the deadline.
        """
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index
        workflow = problem.workflow

        fastest = problem.fastest_schedule()
        fastest_eval = problem.evaluate(fastest)
        if fastest_eval.makespan > deadline + _EPS:
            raise InfeasibleBudgetError(deadline, fastest_eval.makespan)

        assigned: dict[str, int] = {}
        # Sub-deadline for the path ending at each "anchor": initially the
        # workflow exit with the user deadline.
        current = fastest

        def latest_finish_bound(name: str, evaluation) -> float:
            """lft under the current mapping, anchored at the deadline."""
            slack = deadline - evaluation.makespan
            return evaluation.analysis.lft[name] + slack

        guard = 0
        while len(assigned) < matrices.num_modules:
            guard += 1
            if guard > matrices.num_modules + 2:
                raise ScheduleError(
                    "PCP failed to converge; decomposition bug"
                )
            evaluation = problem.evaluate(current)
            # The longest path among modules not yet assigned.
            path = [
                name
                for name in evaluation.analysis.critical_path
                if workflow.module(name).is_schedulable and name not in assigned
            ]
            if not path:
                # All critical modules are pinned; pick the unassigned
                # module with the least slack and its own longest chain.
                remaining = [
                    n
                    for n in workflow.topological_order()
                    if workflow.module(n).is_schedulable and n not in assigned
                ]
                path = [
                    min(
                        remaining,
                        key=lambda n: evaluation.analysis.buffer_time(n),
                    )
                ]

            # The path's time allowance: from the earliest its first
            # module can start to the latest its last module may finish.
            start_floor = evaluation.analysis.est[path[0]]
            finish_ceiling = latest_finish_bound(path[-1], evaluation)
            allowance = finish_ceiling - start_floor
            te_rows = [list(te[row[name]]) for name in path]
            ce_rows = [list(ce[row[name]]) for name in path]
            choice = _cheapest_chain_within(te_rows, ce_rows, allowance)
            if choice is None:
                # Fall back to the fastest types for this path (always
                # meets the allowance since the fastest mapping met the
                # global deadline).
                choice = [int(te_rows_i.index(min(te_rows_i))) for te_rows_i in te_rows]
            for name, j in zip(path, choice):
                assigned[name] = int(j)
                current = current.with_assignment(name, int(j))

        schedule = Schedule(
            {name: assigned[name] for name in matrices.module_names}
        )
        evaluation = problem.evaluate(schedule)
        if evaluation.makespan > deadline + 1e-6:
            # The decomposition over-committed (possible when sub-path
            # allowances interact); repair by tightening the worst path
            # back to fastest types.
            schedule = problem.fastest_schedule()
            evaluation = problem.evaluate(schedule)
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=evaluation,
            budget=float("inf"),
            extras={"deadline": deadline},
        )
