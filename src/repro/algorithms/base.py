"""Scheduler interface, result container and algorithm registry.

Every scheduling algorithm in this library is a callable object exposing
``solve(problem, budget) -> SchedulerResult``.  Algorithms register
themselves under a short name (``"critical-greedy"``, ``"gain3"``, …) so
the experiment harness and the CLI can look them up uniformly.
"""

from __future__ import annotations

import dataclasses
import functools
import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule, ScheduleEvaluation
from repro.exceptions import ConfigurationError, ExperimentError

__all__ = [
    "ReschedulingStep",
    "SchedulerResult",
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "declared_params",
    "set_result_validation",
    "result_validation_enabled",
]


@dataclass(frozen=True)
class ReschedulingStep:
    """One iteration of an iterative rescheduling algorithm.

    Captures the trace the paper walks through in its numerical example
    ("we first reschedule module w4 to a VM of type VT3, which decreases
    the execution time of w4 by 6 …").
    """

    module: str
    from_type: int
    to_type: int
    time_decrease: float
    cost_increase: float
    makespan_after: float
    cost_after: float

    def describe(self, type_names: tuple[str, ...]) -> str:
        """Human-readable rendering of the step."""
        return (
            f"reschedule {self.module}: {type_names[self.from_type]} -> "
            f"{type_names[self.to_type]} (dT={self.time_decrease:.4g}, "
            f"dC={self.cost_increase:.4g}) => makespan {self.makespan_after:.4g}, "
            f"cost {self.cost_after:.4g}"
        )


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of one scheduler run on one (problem, budget) pair.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced this result.
    schedule:
        The final schedule.
    evaluation:
        Its evaluation (cost, makespan/MED, critical path).
    budget:
        The budget the run was given.
    steps:
        Rescheduling trace (empty for one-shot algorithms).
    extras:
        Algorithm-specific diagnostics (e.g. nodes explored by the
        exhaustive search).
    """

    algorithm: str
    schedule: Schedule
    evaluation: ScheduleEvaluation
    budget: float
    steps: tuple[ReschedulingStep, ...] = ()
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def med(self) -> float:
        """The minimum end-to-end delay achieved (the paper's MED)."""
        return self.evaluation.makespan

    @property
    def total_cost(self) -> float:
        """The total financial cost :math:`C_{Total}` of the schedule."""
        return self.evaluation.total_cost

    def assert_feasible(self, *, tol: float = 1e-9) -> None:
        """Raise if the result exceeds its budget (sanity check in tests)."""
        if self.total_cost > self.budget + tol:
            raise ExperimentError(
                f"{self.algorithm} produced an infeasible schedule: "
                f"cost {self.total_cost:g} > budget {self.budget:g}"
            )


@runtime_checkable
class Scheduler(Protocol):
    """Protocol every scheduling algorithm implements."""

    #: Registry name (stable identifier used in experiments and the CLI).
    name: str

    #: Whether the algorithm guarantees ``total_cost <= budget``.  Classes
    #: may override with ``False`` (delay-optimal baselines like
    #: ``fastest``/``heft``); the lint validation hook then skips the
    #: budget-feasibility rule for their results.
    respects_budget: bool = True

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return the best schedule found within ``budget``.

        Implementations must raise
        :class:`~repro.exceptions.InfeasibleBudgetError` when
        ``budget < problem.cmin``.
        """
        ...  # pragma: no cover


_REGISTRY: dict[str, Callable[[], Scheduler]] = {}

#: When enabled, every registered scheduler's solve() output is checked by
#: the repro.lint schedule rules (budget, coverage, cost consistency) and a
#: LintError is raised on violation.  Off by default (production hot path);
#: the test suite switches it on so every algorithm is continuously audited.
_VALIDATE_RESULTS = os.environ.get("REPRO_VALIDATE_RESULTS", "").lower() in (
    "1",
    "true",
    "yes",
    "on",
)


def set_result_validation(enabled: bool) -> bool:
    """Enable/disable lint validation of scheduler results; returns previous.

    This is the debug hook described in ``docs/static_analysis.md``: with
    validation on, every ``solve()`` of a *registered* scheduler runs the
    fast RS4xx rules (schedule coverage, type-index range, budget
    feasibility, reported-vs-recomputed cost) on its result and raises
    :class:`~repro.exceptions.LintError` on any error-severity finding.
    """
    global _VALIDATE_RESULTS
    previous = _VALIDATE_RESULTS
    _VALIDATE_RESULTS = bool(enabled)
    return previous


def result_validation_enabled() -> bool:
    """Whether scheduler results are currently lint-validated."""
    return _VALIDATE_RESULTS


def register_scheduler(name: str) -> Callable[[type], type]:
    """Class decorator registering a zero-argument-constructible scheduler.

    Registration also wraps the class's ``solve`` with the lint validation
    hook (see :func:`set_result_validation`); the wrapper is a no-op while
    validation is disabled.
    """

    def decorator(cls: type) -> type:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"scheduler {name!r} registered twice; pick a unique registry "
                "name instead of silently overwriting the existing algorithm"
            )
        original_solve = cls.solve

        @functools.wraps(original_solve)
        def validating_solve(
            self: Scheduler, problem: MedCCProblem, budget: float
        ) -> SchedulerResult:
            result = original_solve(self, problem, budget)
            if _VALIDATE_RESULTS:
                from repro.lint import check_scheduler_result

                check_scheduler_result(
                    problem,
                    result,
                    respects_budget=getattr(self, "respects_budget", True),
                )
            return result

        cls.solve = validating_solve
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorator


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown scheduler {name!r}; available: {known}"
        ) from None
    return factory()


def available_schedulers() -> list[str]:
    """Names of all registered schedulers, as a sorted list.

    Returning a list (not a one-shot iterator) lets callers iterate more
    than once and index/len() the result; order is deterministic.
    """
    return sorted(_REGISTRY)


def declared_params(scheduler: Scheduler) -> dict[str, object]:
    """A scheduler's declared knobs as a JSON-compatible mapping.

    Every scheduler in this library is a dataclass, so its configuration
    surface is exactly its init fields (``candidate_scope``, ``engine``,
    cooling rates, …).  The service layer hashes this mapping into the
    cache key (:func:`repro.service.keys.params_hash`) so two runs of the
    same algorithm with different knobs never collide.  Non-JSON-native
    values fall back to ``repr`` for a stable, hashable rendering.
    """
    if not dataclasses.is_dataclass(scheduler):
        return {}
    params: dict[str, object] = {}
    for spec in dataclasses.fields(scheduler):
        if not spec.init:
            continue
        value = getattr(scheduler, spec.name)
        if value is None or isinstance(value, (bool, int, float, str)):
            params[spec.name] = value
        else:
            params[spec.name] = repr(value)
    return params
