"""Scheduler interface, result container and algorithm registry.

Every scheduling algorithm in this library is a callable object exposing
``solve(problem, budget) -> SchedulerResult``.  Algorithms register
themselves under a short name (``"critical-greedy"``, ``"gain3"``, …) so
the experiment harness and the CLI can look them up uniformly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule, ScheduleEvaluation
from repro.exceptions import ExperimentError

__all__ = [
    "ReschedulingStep",
    "SchedulerResult",
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
]


@dataclass(frozen=True)
class ReschedulingStep:
    """One iteration of an iterative rescheduling algorithm.

    Captures the trace the paper walks through in its numerical example
    ("we first reschedule module w4 to a VM of type VT3, which decreases
    the execution time of w4 by 6 …").
    """

    module: str
    from_type: int
    to_type: int
    time_decrease: float
    cost_increase: float
    makespan_after: float
    cost_after: float

    def describe(self, type_names: tuple[str, ...]) -> str:
        """Human-readable rendering of the step."""
        return (
            f"reschedule {self.module}: {type_names[self.from_type]} -> "
            f"{type_names[self.to_type]} (dT={self.time_decrease:.4g}, "
            f"dC={self.cost_increase:.4g}) => makespan {self.makespan_after:.4g}, "
            f"cost {self.cost_after:.4g}"
        )


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of one scheduler run on one (problem, budget) pair.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced this result.
    schedule:
        The final schedule.
    evaluation:
        Its evaluation (cost, makespan/MED, critical path).
    budget:
        The budget the run was given.
    steps:
        Rescheduling trace (empty for one-shot algorithms).
    extras:
        Algorithm-specific diagnostics (e.g. nodes explored by the
        exhaustive search).
    """

    algorithm: str
    schedule: Schedule
    evaluation: ScheduleEvaluation
    budget: float
    steps: tuple[ReschedulingStep, ...] = ()
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def med(self) -> float:
        """The minimum end-to-end delay achieved (the paper's MED)."""
        return self.evaluation.makespan

    @property
    def total_cost(self) -> float:
        """The total financial cost :math:`C_{Total}` of the schedule."""
        return self.evaluation.total_cost

    def assert_feasible(self, *, tol: float = 1e-9) -> None:
        """Raise if the result exceeds its budget (sanity check in tests)."""
        if self.total_cost > self.budget + tol:
            raise ExperimentError(
                f"{self.algorithm} produced an infeasible schedule: "
                f"cost {self.total_cost:g} > budget {self.budget:g}"
            )


@runtime_checkable
class Scheduler(Protocol):
    """Protocol every scheduling algorithm implements."""

    #: Registry name (stable identifier used in experiments and the CLI).
    name: str

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return the best schedule found within ``budget``.

        Implementations must raise
        :class:`~repro.exceptions.InfeasibleBudgetError` when
        ``budget < problem.cmin``.
        """
        ...  # pragma: no cover


_REGISTRY: dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(name: str) -> Callable[[type], type]:
    """Class decorator registering a zero-argument-constructible scheduler."""

    def decorator(cls: type) -> type:
        if name in _REGISTRY:
            raise ExperimentError(f"scheduler {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorator


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown scheduler {name!r}; available: {known}"
        ) from None
    return factory()


def available_schedulers() -> Iterator[str]:
    """Names of all registered schedulers, sorted."""
    return iter(sorted(_REGISTRY))
