"""HEFT-style ranking and the fastest schedule.

HEFT (Heterogeneous Earliest Finish Time, Topcuoglu et al. 2002) is the
classic makespan-minimizing list scheduler the LOSS family starts from.
Under the paper's one-to-one module→VM mapping there is no resource
contention — each module gets its own VM — so the earliest-finish-time
choice for every module is simply its fastest VM type, and HEFT coincides
with the fastest schedule :math:`S_{fastest}`.  We keep the full
upward-rank machinery because it is useful on its own (module priorities
for the simulator and the LOSS orderings) and to make the equivalence
explicit and testable.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.core.problem import MedCCProblem
from repro.core.workflow import Workflow

__all__ = ["upward_ranks", "FastestScheduler", "HeftScheduler"]


def upward_ranks(
    problem: MedCCProblem,
    *,
    use_mean_times: bool = True,
) -> dict[str, float]:
    """HEFT upward ranks for every module of the workflow.

    ``rank_u(w) = avg_exec_time(w) + max over successors s of
    (transfer_time(w, s) + rank_u(s))`` — computed over the type-averaged
    execution times (the HEFT convention) or, with
    ``use_mean_times=False``, over the fastest execution times.

    Fixed-duration modules contribute their fixed time.
    """
    matrices = problem.matrices
    workflow: Workflow = problem.workflow
    transfers = problem.transfer_times

    avg: dict[str, float] = {}
    for name in workflow.topological_order():
        mod = workflow.module(name)
        if not mod.is_schedulable:
            avg[name] = float(mod.fixed_time or 0.0)
        else:
            times = matrices.te[matrices.row_index[name]]
            avg[name] = float(np.mean(times) if use_mean_times else np.min(times))

    ranks: dict[str, float] = {}
    for name in reversed(workflow.topological_order()):
        succs = workflow.successors(name)
        tail = max(
            (transfers.get((name, s), 0.0) + ranks[s] for s in succs),
            default=0.0,
        )
        ranks[name] = avg[name] + tail
    return ranks


@register_scheduler("fastest")
class FastestScheduler:
    """Assign every module to its fastest type (ties: cheapest).

    This is :math:`S_{fastest}` of Section V-B, the delay-optimal schedule;
    it is only feasible when ``budget >= Cmax``.
    """

    name = "fastest"
    respects_budget = False

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return the fastest schedule regardless of budget feasibility.

        The result may exceed the budget; callers that need feasibility
        should use :meth:`SchedulerResult.assert_feasible` or the LOSS
        schedulers which repair an over-budget fastest schedule.
        """
        problem.check_feasible(budget)
        schedule = problem.fastest_schedule()
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
        )


@register_scheduler("heft")
class HeftScheduler:
    """HEFT specialized to the one-to-one mapping model.

    Modules are visited in decreasing upward rank; each takes the VM type
    minimizing its earliest finish time.  Without contention that is the
    fastest type, so the schedule equals :math:`S_{fastest}` — asserted by
    the test suite — but the traversal order is reported in ``extras`` for
    use by priority-based consumers.
    """

    name = "heft"
    respects_budget = False

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        ranks = upward_ranks(problem)
        order = sorted(
            problem.workflow.schedulable_names,
            key=lambda n: (-ranks[n], n),
        )
        matrices = problem.matrices
        fastest = matrices.fastest_choice()
        assignment = {
            name: int(fastest[matrices.row_index[name]]) for name in order
        }
        from repro.core.schedule import Schedule

        schedule = Schedule(assignment)
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
            extras={"priority_order": tuple(order), "upward_ranks": ranks},
        )
