"""Scheduling algorithms: Critical-Greedy, baselines and exact solvers.

Importing this package registers every scheduler with the registry in
:mod:`repro.algorithms.base`; look them up by name with
:func:`get_scheduler` or instantiate the classes directly.

========================  =====================================================
Registry name             Algorithm
========================  =====================================================
``critical-greedy``       The paper's heuristic (Algorithm 1)
``gain1``/``gain2``/      The GAIN family (Sakellariou et al.); ``gain3`` is
``gain3``                 the paper's comparison baseline
``loss1``/``loss2``/      The LOSS family (extension baseline)
``loss3``
``heft``/``fastest``      Makespan-optimal schedules (budget-oblivious)
``least-cost``            Cost-optimal schedule
``exhaustive``            Exact branch-and-bound (small instances)
``pipeline-dp``           Exact Pareto DP for linear pipelines (≡ MCKP)
``random``                Best-of-N random feasible schedules
``annealing``             Simulated annealing from the CG incumbent
``critical-greedy-``      CG with per-candidate makespan lookahead
``lookahead``
========================  =====================================================
"""

from repro.algorithms.base import (
    ReschedulingStep,
    Scheduler,
    SchedulerResult,
    available_schedulers,
    declared_params,
    get_scheduler,
    register_scheduler,
)
from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.ensemble import (
    EnsembleMember,
    EnsembleResult,
    EnsembleScheduler,
)
from repro.algorithms.deadline_greedy import DeadlineGreedyScheduler
from repro.algorithms.exhaustive import ExhaustiveScheduler
from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.algorithms.gain import (
    Gain1Scheduler,
    Gain2Scheduler,
    Gain3Scheduler,
    GainAbsoluteScheduler,
    GainScheduler,
)
from repro.algorithms.heft import FastestScheduler, HeftScheduler, upward_ranks
from repro.algorithms.least_cost import LeastCostScheduler
from repro.algorithms.loss import (
    Loss1Scheduler,
    Loss2Scheduler,
    Loss3Scheduler,
    LossScheduler,
)
from repro.algorithms.pcp import PCPScheduler
from repro.algorithms.pipeline_dp import PipelineDPScheduler, is_pipeline
from repro.algorithms.random_schedule import RandomScheduler
from repro.algorithms.reinvest import ReinvestScheduler

__all__ = [
    "ReschedulingStep",
    "Scheduler",
    "SchedulerResult",
    "available_schedulers",
    "declared_params",
    "get_scheduler",
    "register_scheduler",
    "AnnealingScheduler",
    "CriticalGreedyScheduler",
    "EnsembleMember",
    "EnsembleResult",
    "EnsembleScheduler",
    "DeadlineGreedyScheduler",
    "ExhaustiveScheduler",
    "LookaheadCriticalGreedyScheduler",
    "GainScheduler",
    "Gain1Scheduler",
    "Gain2Scheduler",
    "Gain3Scheduler",
    "GainAbsoluteScheduler",
    "FastestScheduler",
    "HeftScheduler",
    "upward_ranks",
    "LeastCostScheduler",
    "LossScheduler",
    "Loss1Scheduler",
    "Loss2Scheduler",
    "Loss3Scheduler",
    "PCPScheduler",
    "PipelineDPScheduler",
    "is_pipeline",
    "RandomScheduler",
    "ReinvestScheduler",
]
