"""Random feasible schedules — the sanity-check baseline.

Samples uniform random assignments, discards infeasible ones, and keeps
the best MED seen.  Any serious heuristic should dominate this; the test
suite uses it to establish that Critical-Greedy's advantage is not an
artifact of the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule

__all__ = ["RandomScheduler"]


@register_scheduler("random")
@dataclass
class RandomScheduler:
    """Best-of-``samples`` uniformly random feasible schedules.

    Parameters
    ----------
    samples:
        Number of random assignments to draw.
    seed:
        Seed for the internal generator (results are reproducible).

    Falls back to the least-cost schedule when no sampled assignment is
    feasible (always possible since ``budget >= Cmin`` is checked).
    """

    samples: int = 200
    seed: int = 0
    name = "random"

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        rng = np.random.default_rng(self.seed)
        matrices = problem.matrices
        modules = matrices.module_names
        m, n = matrices.num_modules, matrices.num_types

        best_schedule = problem.least_cost_schedule()
        best_eval = problem.evaluate(best_schedule)
        tried = 0
        for _ in range(self.samples):
            draw = rng.integers(0, n, size=m)
            schedule = Schedule(dict(zip(modules, map(int, draw))))
            if problem.cost_of(schedule) > budget + 1e-9:
                continue
            tried += 1
            evaluation = problem.evaluate(schedule)
            if evaluation.makespan < best_eval.makespan - 1e-12:
                best_schedule, best_eval = schedule, evaluation

        return SchedulerResult(
            algorithm=self.name,
            schedule=best_schedule,
            evaluation=best_eval,
            budget=budget,
            extras={"feasible_samples": tried, "samples": self.samples},
        )
