"""Exact MED-CC solver by exhaustive search with branch-and-bound pruning.

The paper compares Critical-Greedy against "the optimal ones computed by an
exhaustive search approach" on small instances (Section VI-B1).  This
implementation enumerates the :math:`n^m` assignments depth-first in the
workflow's topological order, with two admissible prunes that keep it exact:

* **cost bound** — a partial assignment is abandoned when its cost plus the
  minimum possible cost of the unassigned modules already exceeds the
  budget;
* **makespan bound** — a partial assignment is abandoned when the makespan
  obtained by giving every unassigned module its *fastest* time is already
  no better than the incumbent.

Both bounds are lower bounds of any completion, so the search remains
optimal.  Intended for the paper's small sizes (≤ ~10 modules, 3–4 types);
``max_nodes`` guards against accidental use on large instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.core.critical_path import analyze_critical_path
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError

__all__ = ["ExhaustiveScheduler"]

_EPS = 1e-9


@register_scheduler("exhaustive")
@dataclass
class ExhaustiveScheduler:
    """Optimal exhaustive search (branch-and-bound), exact but exponential.

    Parameters
    ----------
    max_nodes:
        Abort (with :class:`~repro.exceptions.ExperimentError`) after
        exploring this many search nodes, as a guard against accidentally
        launching an exponential search on a large instance.
    """

    max_nodes: int = 20_000_000
    name = "exhaustive"

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return a provably MED-optimal schedule within the budget."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        modules = list(matrices.module_names)
        m, n = matrices.num_modules, matrices.num_types
        # The schedule-independent transfer charges shrink the VM budget.
        vm_budget = budget - problem.transfer_cost_total

        # Suffix minima of per-module cost: min extra cost to finish the
        # assignment from module k onwards.
        min_cost = ce.min(axis=1)
        suffix_min_cost = np.concatenate([np.cumsum(min_cost[::-1])[::-1], [0.0]])
        min_time = te.min(axis=1)

        workflow = problem.workflow
        fixed_durations = {
            name: float(workflow.module(name).fixed_time or 0.0)
            for name in workflow.module_names
            if not workflow.module(name).is_schedulable
        }
        transfer_times = problem.transfer_times

        def makespan_of(times: dict[str, float]) -> float:
            durations = dict(fixed_durations)
            durations.update(times)
            return analyze_critical_path(
                workflow, durations, transfer_times or None
            ).makespan

        # Incumbent: the least-cost schedule is always feasible.
        best_assign = [
            int(j) for j in matrices.least_cost_choice()
        ]
        best_times = {modules[i]: float(te[i, best_assign[i]]) for i in range(m)}
        best_med = makespan_of(best_times)
        best_cost = float(sum(ce[i, best_assign[i]] for i in range(m)))

        nodes = 0
        assign = [0] * m
        times: dict[str, float] = {}

        def lower_bound_med(k: int) -> float:
            """Optimistic makespan: unassigned modules at fastest times."""
            optimistic = dict(times)
            for i in range(k, m):
                optimistic[modules[i]] = float(min_time[i])
            return makespan_of(optimistic)

        def dfs(k: int, cost: float) -> None:
            nonlocal nodes, best_med, best_cost, best_assign
            nodes += 1
            if nodes > self.max_nodes:
                raise ExperimentError(
                    f"exhaustive search exceeded max_nodes={self.max_nodes}; "
                    "this instance is too large for exact search"
                )
            if k == m:
                med = makespan_of(times)
                if med < best_med - _EPS or (
                    abs(med - best_med) <= _EPS and cost < best_cost - _EPS
                ):
                    best_med = med
                    best_cost = cost
                    best_assign = list(assign)
                return
            if lower_bound_med(k) >= best_med - _EPS:
                return
            name = modules[k]
            # Try types fastest-first so good incumbents appear early.
            for j in sorted(range(n), key=lambda jj: te[k, jj]):
                new_cost = cost + ce[k, j]
                if new_cost + suffix_min_cost[k + 1] > vm_budget + _EPS:
                    continue
                assign[k] = j
                times[name] = float(te[k, j])
                dfs(k + 1, new_cost)
                del times[name]

        dfs(0, 0.0)

        schedule = Schedule(dict(zip(modules, best_assign)))
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
            extras={"nodes_explored": nodes},
        )
