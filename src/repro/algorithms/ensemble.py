"""Ensemble scheduling: many workflows, one budget (extension).

Scientific campaigns rarely run a single workflow: they submit an
*ensemble* (parameter sweeps, per-region forecasts) under one grant-sized
budget.  This extension answers the natural follow-on question to MED-CC
— which ensemble members to admit, and how to split the budget among
them — with a two-phase greedy that reuses the single-workflow machinery:

1. **Admission** — members are considered in priority order; a member is
   admitted if its minimum cost :math:`C_{min}` still fits the remaining
   budget.  (Admitting by least cost instead is available via
   ``admission="cheapest"``, the knapsack-ish alternative.)
2. **Budget distribution** — every admitted member is first funded at its
   :math:`C_{min}`; the leftover budget is then distributed by a global
   greedy over *all* admitted members' Critical-Greedy upgrade steps,
   always buying the upgrade with the best makespan-decrease per unit
   cost across the whole ensemble (so money flows to whichever member
   can use it best).

Returns per-member schedules plus ensemble-level metrics.  Properties
tested: total spend within budget; admitted set maximal under the
priority rule; each member's schedule feasible for its allocated share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError

__all__ = ["EnsembleMember", "EnsembleResult", "EnsembleScheduler"]

_EPS = 1e-9


@dataclass(frozen=True)
class EnsembleMember:
    """One ensemble entry: a problem instance with a name and a priority."""

    name: str
    problem: MedCCProblem
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("ensemble members need non-empty names")


@dataclass(frozen=True)
class EnsembleResult:
    """Outcome of ensemble scheduling."""

    admitted: tuple[str, ...]
    rejected: tuple[str, ...]
    schedules: dict[str, Schedule]
    meds: dict[str, float]
    costs: dict[str, float]
    total_cost: float
    budget: float

    @property
    def total_med(self) -> float:
        """Sum of member MEDs (the ensemble runs members independently).

        Folded in ``admitted`` order — the order the schedules were
        produced in — so the float total is pinned by the result's own
        contract rather than by dict insertion order.
        """
        return sum(self.meds[name] for name in self.admitted)


@dataclass
class EnsembleScheduler:
    """Admit-then-distribute ensemble scheduling (see module docstring).

    Parameters
    ----------
    admission:
        ``"priority"`` (default) admits in descending priority (ties by
        name); ``"cheapest"`` admits cheapest-first, maximizing the count
        of admitted members.
    """

    admission: str = "priority"
    name = "ensemble"

    def __post_init__(self) -> None:
        if self.admission not in ("priority", "cheapest"):
            raise ExperimentError(
                f"admission must be 'priority' or 'cheapest', "
                f"got {self.admission!r}"
            )

    def solve(
        self, members: list[EnsembleMember], budget: float
    ) -> EnsembleResult:
        """Schedule an ensemble within one shared budget."""
        if not members:
            raise ExperimentError("an ensemble needs at least one member")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ExperimentError("ensemble member names must be unique")

        if self.admission == "priority":
            order = sorted(members, key=lambda m: (-m.priority, m.name))
        else:
            order = sorted(members, key=lambda m: (m.problem.cmin, m.name))

        admitted: list[EnsembleMember] = []
        remaining = budget
        for member in order:
            if member.problem.cmin <= remaining + _EPS:
                admitted.append(member)
                remaining -= member.problem.cmin
        rejected = tuple(
            m.name for m in members if m not in admitted
        )
        if not admitted:
            raise ExperimentError(
                f"budget {budget:g} admits no ensemble member "
                f"(cheapest needs {min(m.problem.cmin for m in members):g})"
            )

        # Distribute the leftover globally: each round, offer every member
        # the leftover on top of its current spend and take the single
        # next upgrade with the best ensemble-wide efficiency.
        solver = LookaheadCriticalGreedyScheduler()
        spend: dict[str, float] = {m.name: m.problem.cmin for m in admitted}
        schedules: dict[str, Schedule] = {
            m.name: m.problem.least_cost_schedule() for m in admitted
        }
        meds: dict[str, float] = {
            m.name: m.problem.makespan_of(schedules[m.name]) for m in admitted
        }

        improved = True
        while improved and remaining > _EPS:
            improved = False
            best: tuple[float, float, EnsembleMember, Schedule, float] | None
            best = None
            for member in admitted:
                result = solver.solve(
                    member.problem, spend[member.name] + remaining
                )
                extra_cost = result.total_cost - spend[member.name]
                drop = meds[member.name] - result.med
                if drop <= _EPS or extra_cost > remaining + _EPS:
                    continue
                efficiency = (
                    float("inf") if extra_cost <= _EPS else drop / extra_cost
                )
                if best is None or efficiency > best[0] + _EPS:
                    best = (efficiency, drop, member, result.schedule, extra_cost)
            if best is not None:
                _, drop, member, schedule, extra_cost = best
                schedules[member.name] = schedule
                spend[member.name] += extra_cost
                meds[member.name] -= drop
                remaining -= extra_cost
                improved = True

        costs = {
            m.name: m.problem.cost_of(schedules[m.name]) for m in admitted
        }
        return EnsembleResult(
            admitted=tuple(m.name for m in admitted),
            rejected=rejected,
            schedules=schedules,
            meds={
                m.name: m.problem.makespan_of(schedules[m.name])
                for m in admitted
            },
            costs=costs,
            total_cost=sum(costs[m.name] for m in admitted),
            budget=budget,
        )
