"""Reuse-and-reinvest scheduling (extension built on the paper's §V-B).

The paper treats VM reuse as a *post-processing* step: "once S_CG is
produced, we can explore the possibility of VM reuse", which merges
instance-hour round-ups and lowers the realized bill below
:math:`C_{Total}`.  That saving is money the scheduler never got to
spend.  This extension closes the loop:

1. run Critical-Greedy at a *virtual* budget (initially the real one);
2. pack the schedule (cost-aware adjacent reuse) and compute the
   realized, lease-billed cost;
3. if the realized cost leaves headroom under the real budget, raise the
   virtual budget by the saving and re-run — faster schedules become
   affordable because their bill is paid per shared lease, not per
   module;
4. keep the best schedule whose *packed* bill fits the real budget.

The loop monotonically increases the virtual budget and is capped by
``max_rounds``; the result is always feasible in the lease-billed sense
(``extras["packed_cost"] <= budget``), and its unpacked
:math:`C_{Total}` may legitimately exceed the budget — that is the point.
The ``vm-reuse`` benchmark quantifies the MED gained per budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import ExperimentError
from repro.sim.packing import VMPlan, pack_schedule

__all__ = ["ReinvestScheduler"]

_EPS = 1e-9


@register_scheduler("reuse-reinvest")
@dataclass
class ReinvestScheduler:
    """Critical-Greedy + VM-reuse packing + savings reinvestment.

    Parameters
    ----------
    max_rounds:
        Upper bound on reinvestment rounds (each round runs one CG solve
        and one packing).
    packing_mode:
        Passed to :func:`repro.sim.packing.pack_schedule`; the paper's
        ``"adjacent"`` criterion by default.
    """

    max_rounds: int = 8
    packing_mode: str = "adjacent"
    name = "reuse-reinvest"
    # Feasibility is guaranteed for the *packed* bill (extras["packed_cost"]
    # <= budget), not the unpacked per-module C_Total the lint budget rule
    # recomputes.
    respects_budget = False

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ExperimentError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Best packed-feasible schedule found by the reinvestment loop.

        The returned ``extras`` carry ``packed_cost``, the final
        :class:`~repro.sim.packing.VMPlan` (key ``"vm_plan"``), and the
        number of reinvestment rounds executed.
        """
        problem.check_feasible(budget)
        cg = CriticalGreedyScheduler()

        best: SchedulerResult | None = None
        best_plan: VMPlan | None = None
        best_packed = float("inf")
        virtual = budget
        rounds = 0

        for _ in range(self.max_rounds):
            rounds += 1
            result = cg.solve(problem, virtual)
            plan = pack_schedule(
                problem, result.schedule, mode=self.packing_mode
            )
            packed_cost = (
                plan.billed_cost(problem, problem.billing)
                + problem.transfer_cost_total
            )
            feasible = packed_cost <= budget + _EPS
            if feasible and (
                best is None
                or result.med < best.med - _EPS
                or (abs(result.med - best.med) <= _EPS and packed_cost < best_packed)
            ):
                best = result
                best_plan = plan
                best_packed = packed_cost

            saving = budget - packed_cost
            next_virtual = budget + max(saving, 0.0)
            if next_virtual <= virtual + _EPS:
                break  # no fresh headroom to reinvest
            virtual = next_virtual

        if best is None or best_plan is None:
            # The first round is always packed-feasible: packing a budget-
            # feasible schedule never raises its bill (cost-aware mode).
            raise ExperimentError(
                "reinvestment loop found no packed-feasible schedule; "
                "this indicates a packing cost regression"
            )

        return SchedulerResult(
            algorithm=self.name,
            schedule=best.schedule,
            evaluation=best.evaluation,
            budget=budget,
            steps=best.steps,
            extras={
                "packed_cost": best_packed,
                "vm_plan": best_plan,
                "rounds": rounds,
                "unpacked_cost": best.total_cost,
            },
        )
