"""The GAIN family of budget-constrained schedulers (comparison baseline).

GAIN comes from Sakellariou et al., *Scheduling Workflows with Budget
Constraints* (Integrated Research in GRID Computing, 2007).  All variants
start from the **least-cost** schedule and repeatedly apply the
reassignment with the largest *GainWeight* until no affordable improving
move remains.  The ICPP paper selects **GAIN3** as its baseline:

    "The GAIN3 algorithm is initialized with the least-cost schedule, and
    then reassigns the task with the largest GainWeight, which is the ratio
    of the time decrease over the cost increase."  (Section VI-A)

    "… the modules with large GainWeight, which is only a **local
    difference ratio**, may not have a critical impact on the entire
    execution time."  (Section VI-B3)

**Which ratio, exactly?**  The prose admits two readings: the *absolute*
time decrease ``ΔT/ΔC`` and the *relative* (task-normalized) decrease
``(ΔT / T_old) / ΔC``.  We reverse-engineered the answer from the paper's
published WRF schedules (Table VII): at budget 147.5 the published GAIN3
schedule is ``(3,2,2,1,1,2)`` — it upgrades the *small* modules w1–w3 and
w6 while leaving the dominant module w5 (752.6 s on VT1, the single best
absolute ΔT/ΔC move in the instance, affordable at that budget) untouched.
Only the relative weight reproduces that choice (and the published rows at
150.0 and 155.0); the absolute weight immediately upgrades w5.  The
relative weight is also the reading consistent with the paper's critique
quoted above.  Hence:

* **GAIN1** — absolute ``ΔT/ΔC`` weights computed once against the initial
  least-cost schedule and never refreshed; each applied move invalidates
  the remaining candidates of the same task.
* **GAIN2** — the time decrease in the weight is the *makespan* decrease
  (a global quantity), refreshed every iteration.
* **GAIN3** — the paper's baseline: relative task-local time decrease
  ``(ΔT / T_old) / ΔC``, refreshed every iteration.
* **GAIN-ABSOLUTE** (``gain-absolute``) — absolute ``ΔT/ΔC``, refreshed.
  This is the stronger variant a modern reader might write first; it is
  *not* the paper's baseline (see above) but is kept for the baseline
  ablation in ``benchmarks/bench_ablation_gain.py``.  On heterogeneous
  workflows it is markedly stronger than GAIN3 and competitive with
  Critical-Greedy — an observation recorded in EXPERIMENTS.md.

Reassignments with a time decrease and a *non-positive* cost increase are
taken eagerly (infinite weight) in all variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = [
    "GainScheduler",
    "Gain1Scheduler",
    "Gain2Scheduler",
    "Gain3Scheduler",
    "GainAbsoluteScheduler",
]

_EPS = 1e-9
_INF = float("inf")

#: Valid weighting modes (see module docstring).
_VARIANTS = ("frozen", "makespan", "relative", "absolute")


@dataclass
class GainScheduler:
    """Shared engine for the GAIN variants (see module docstring).

    Parameters
    ----------
    variant:
        One of ``"frozen"`` (GAIN1), ``"makespan"`` (GAIN2),
        ``"relative"`` (GAIN3 — the paper's baseline) or ``"absolute"``.
    """

    variant: str = "relative"
    name = "gain"

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ConfigurationError(
                f"GAIN variant must be one of {_VARIANTS}, got {self.variant!r}"
            )

    # ------------------------------------------------------------------ #

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Run the selected GAIN variant within ``budget``."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        ce = matrices.ce
        row = matrices.row_index

        current = problem.least_cost_schedule()
        # Includes schedule-independent transfer charges (multi-cloud).
        cost = problem.cost_of(current)
        evaluation = problem.evaluate(current)
        steps: list[ReschedulingStep] = []

        # GAIN1 freezes the candidate weights against the initial schedule.
        frozen: list[tuple[float, float, float, str, int]] | None = None
        if self.variant == "frozen":
            frozen = self._candidates(problem, current, evaluation)

        while True:
            extra = budget - cost
            if extra <= _EPS:
                break

            pool = (
                frozen
                if frozen is not None
                else self._candidates(problem, current, evaluation)
            )

            best: tuple[float, float, float, str, int] | None = None
            for cand in pool:
                weight, dt, dc, module, j = cand
                if dc > extra + _EPS:
                    continue
                if frozen is not None and current[module] == j:
                    continue
                if best is None or weight > best[0] + _EPS:
                    best = cand

            if best is None or best[1] <= _EPS:
                break

            _, dt, dc, module, j = best
            from_type = current[module]
            current = current.with_assignment(module, j)
            cost += ce[row[module], j] - ce[row[module], from_type]
            evaluation = problem.evaluate(current)
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=dt,
                    cost_increase=dc,
                    makespan_after=evaluation.makespan,
                    cost_after=cost,
                )
            )
            if frozen is not None:
                # A frozen candidate may only fire once per task: the rest
                # of that task's frozen weights are stale after the move.
                frozen = [c for c in frozen if c[3] != module]

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps), "variant": self.variant},
        )

    # ------------------------------------------------------------------ #

    def _candidates(
        self, problem: MedCCProblem, current: Schedule, evaluation
    ) -> list[tuple[float, float, float, str, int]]:
        """All improving reassignments with their GainWeights.

        Returns tuples ``(weight, dt, dc, module, type_index)`` where ``dt``
        is the task-local time decrease and ``dc`` the cost increase.  Only
        strictly time-decreasing moves qualify.
        """
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index
        out: list[tuple[float, float, float, str, int]] = []
        for module in problem.workflow.schedulable_names:
            i = row[module]
            j_cur = current[module]
            t_old = te[i, j_cur]
            c_old = ce[i, j_cur]
            for j in range(matrices.num_types):
                if j == j_cur:
                    continue
                dt = t_old - te[i, j]
                dc = ce[i, j] - c_old
                if dt <= _EPS:
                    continue
                if self.variant == "makespan":
                    trial = current.with_assignment(module, j)
                    gain = evaluation.makespan - problem.makespan_of(trial)
                    if gain <= _EPS:
                        continue
                elif self.variant == "relative":
                    gain = dt / t_old
                else:  # "frozen" and "absolute" use the absolute decrease
                    gain = dt
                weight = _INF if dc <= _EPS else gain / dc
                out.append((weight, dt, dc, module, j))
        return out


@register_scheduler("gain1")
class Gain1Scheduler(GainScheduler):
    """GAIN1 — absolute weights frozen against the least-cost schedule."""

    name = "gain1"

    def __init__(self) -> None:
        super().__init__(variant="frozen")


@register_scheduler("gain2")
class Gain2Scheduler(GainScheduler):
    """GAIN2 — weights the *makespan* decrease over the cost increase."""

    name = "gain2"

    def __init__(self) -> None:
        super().__init__(variant="makespan")


@register_scheduler("gain3")
class Gain3Scheduler(GainScheduler):
    """GAIN3 — the ICPP baseline: relative ΔT ratio per cost, refreshed.

    Reproduces the paper's published WRF GAIN3 schedules (see the module
    docstring for the identification argument).
    """

    name = "gain3"

    def __init__(self) -> None:
        super().__init__(variant="relative")


@register_scheduler("gain-absolute")
class GainAbsoluteScheduler(GainScheduler):
    """Absolute ``ΔT/ΔC`` GAIN, refreshed — the stronger modern reading."""

    name = "gain-absolute"

    def __init__(self) -> None:
        super().__init__(variant="absolute")
