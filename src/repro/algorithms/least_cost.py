"""The least-cost schedule as a (degenerate) scheduler.

Maps every module to its cheapest VM type (Algorithm 1, step 2, including
the minimum-time tie-break).  This is both the starting point of
Critical-Greedy and the GAIN family, and the natural "spend nothing extra"
baseline: it is feasible for *every* feasible budget.
"""

from __future__ import annotations

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.core.problem import MedCCProblem

__all__ = ["LeastCostScheduler"]


@register_scheduler("least-cost")
class LeastCostScheduler:
    """Always return :math:`S_{least-cost}` (cost-optimal, delay-agnostic)."""

    name = "least-cost"

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return the least-cost schedule; error if even that busts budget."""
        problem.check_feasible(budget)
        schedule = problem.least_cost_schedule()
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
        )
