"""Critical-Greedy — the paper's heuristic for MED-CC (Algorithm 1).

Starting from the least-cost schedule, Critical-Greedy repeatedly:

1. recomputes the critical path of the currently mapped workflow
   (``O(m + |Ew|)`` per iteration);
2. among **critical** modules only, finds the reschedule (module, VM type)
   with the largest execution-time decrease :math:`\\Delta T(E_{i,j})`
   whose cost increase :math:`\\Delta C(E_{i,j})` fits in the remaining
   budget — ties broken by minimum cost increase (Alg. 1, line 13);
3. applies it and charges the remaining budget.

The loop stops when no affordable time-decreasing reschedule of a critical
module exists.  Restricting candidates to the critical path is the key
difference from the GAIN family: "Critical-Greedy collects only the
critical modules in each iteration, and makes a rescheduling decision based
primarily on the time decrease as long as it is affordable" (Section VI-A).

Termination: each applied step strictly decreases the rescheduled module's
execution time, and a module has only ``n`` distinct times, so the loop
runs at most ``m * (n - 1)`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["CriticalGreedyScheduler"]

#: Tolerance for "affordable" and "strictly positive time decrease" tests.
_EPS = 1e-9


@register_scheduler("critical-greedy")
@dataclass
class CriticalGreedyScheduler:
    """The paper's Critical-Greedy (CG) heuristic.

    Parameters
    ----------
    candidate_scope:
        ``"critical"`` (the paper's algorithm) restricts rescheduling
        candidates to zero-buffer modules; ``"all"`` considers every module
        (ablation: isolates the effect of the critical-path restriction
        from the ΔT-first criterion).
    transfer_aware:
        When the problem carries a non-trivial transfer model, the critical
        path already includes transfer times, so CG is transfer-aware by
        construction; this flag is reserved to *disable* that (evaluate the
        CP on execution times only) for ablation.
    """

    candidate_scope: str = "critical"
    transfer_aware: bool = True
    name = "critical-greedy"

    def __post_init__(self) -> None:
        if self.candidate_scope not in ("critical", "all"):
            raise ConfigurationError(
                f"candidate_scope must be 'critical' or 'all', "
                f"got {self.candidate_scope!r}"
            )

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Run Algorithm 1 and return the schedule, MED and full trace."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.least_cost_schedule()
        # Total cost includes the schedule-independent transfer charges
        # (zero in the paper's single-cloud setting, non-zero in the
        # multi-cloud extension) so the budget comparison stays honest.
        cost = problem.cost_of(current)
        steps: list[ReschedulingStep] = []
        evaluation = self._evaluate(problem, current)

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                candidates = evaluation.analysis.critical_schedulable()
            else:
                candidates = problem.workflow.schedulable_names

            # Alg. 1, lines 11-13: the largest affordable time decrease,
            # ties broken by the smallest cost increase (then module/type
            # order for full determinism).
            best: tuple[float, float, str, int] | None = None
            for module in candidates:
                i = row[module]
                j_cur = current[module]
                t_old = te[i, j_cur]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    dt = t_old - te[i, j]
                    dc = ce[i, j] - c_old
                    if dt <= _EPS or dc > extra + _EPS:
                        continue
                    if best is None or dt > best[0] + _EPS or (
                        abs(dt - best[0]) <= _EPS and dc < best[1] - _EPS
                    ):
                        best = (dt, dc, module, j)

            if best is None:
                break

            dt, dc, module, j = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=dt,
                    cost_increase=dc,
                    makespan_after=0.0,  # patched below after evaluation
                    cost_after=cost + dc,
                )
            )
            current = current.with_assignment(module, j)
            cost += dc
            evaluation = self._evaluate(problem, current)
            steps[-1] = ReschedulingStep(
                module=module,
                from_type=steps[-1].from_type,
                to_type=j,
                time_decrease=dt,
                cost_increase=dc,
                makespan_after=evaluation.makespan,
                cost_after=cost,
            )

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    def _evaluate(self, problem: MedCCProblem, schedule: Schedule):
        if self.transfer_aware:
            return problem.evaluate(schedule)
        return schedule.evaluate(problem.workflow, problem.matrices, None)
