"""Critical-Greedy — the paper's heuristic for MED-CC (Algorithm 1).

Starting from the least-cost schedule, Critical-Greedy repeatedly:

1. recomputes the critical path of the currently mapped workflow
   (``O(m + |Ew|)`` per iteration);
2. among **critical** modules only, finds the reschedule (module, VM type)
   with the largest execution-time decrease :math:`\\Delta T(E_{i,j})`
   whose cost increase :math:`\\Delta C(E_{i,j})` fits in the remaining
   budget — ties broken by minimum cost increase (Alg. 1, line 13);
3. applies it and charges the remaining budget.

The loop stops when no affordable time-decreasing reschedule of a critical
module exists.  Restricting candidates to the critical path is the key
difference from the GAIN family: "Critical-Greedy collects only the
critical modules in each iteration, and makes a rescheduling decision based
primarily on the time decrease as long as it is affordable" (Section VI-A).

Termination: each applied step strictly decreases the rescheduled module's
execution time, and a module has only ``n`` distinct times, so the loop
runs at most ``m * (n - 1)`` iterations.

Three engines implement the identical algorithm:

* ``"incremental"`` (default) — the delta engine: one
  :class:`~repro.core.fastpath.IncrementalSweep` repropagates only the
  topological span a single-module upgrade can affect (instead of a full
  CP sweep per iteration), and the candidate search is a fully
  vectorized eps-aware lexicographic argmax (:func:`_pick_step`) that
  provably selects the same (module, type) entry as the scalar scan —
  falling back to the exact scalar scan in the rare near-tie cases where
  the eps-chained comparisons are order-dependent.  The scheduler keeps
  a single-slot per-problem workspace so repeated solves on the same
  problem (budget sweeps, instance comparisons) reuse the sweep buffers
  and the CSR index;
* ``"fast"`` — the PR-2 array engine: one cached full CSR sweep
  (:mod:`repro.core.fastpath`) per iteration, the shared
  :func:`~repro.core.fastpath.critical_row_mask` candidate routine, and
  the original scalar ``_EPS`` tie-break scan over the surviving
  entries;
* ``"reference"`` — the original dict-and-networkx inner loop, kept as
  the ground truth for the equivalence tests and the perf benchmark.

All three produce byte-identical schedules, step traces, MEDs and costs
(asserted by the test suite and ``benchmarks/bench_incremental.py
--check`` in CI).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.core import fastpath
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["CriticalGreedyScheduler"]

#: Tolerance for "affordable" and "strictly positive time decrease" tests.
_EPS = 1e-9


def _pick_step_scan(
    dt_all: np.ndarray,
    dc_all: np.ndarray,
    valid: np.ndarray,
    num_types: int,
) -> tuple[int, int, float, float] | None:
    """The original scalar selection scan (Alg. 1, lines 11-13).

    Walks the valid entries in row-major (module order, type order)
    sequence with the original eps-chained comparisons.  This is the
    ground-truth selection; :func:`_pick_step` must match it bit for bit.
    """
    flat_valid = np.nonzero(valid.ravel())[0]
    if flat_valid.size == 0:
        return None
    dt_flat = dt_all.ravel()[flat_valid].tolist()
    dc_flat = dc_all.ravel()[flat_valid].tolist()
    best_dt = best_dc = 0.0
    best_flat = -1
    for position, flat in enumerate(flat_valid.tolist()):
        dt_val = dt_flat[position]
        dc_val = dc_flat[position]
        if (
            best_flat < 0
            or dt_val > best_dt + _EPS
            or (abs(dt_val - best_dt) <= _EPS and dc_val < best_dc - _EPS)
        ):
            best_dt, best_dc, best_flat = dt_val, dc_val, flat
    return best_flat // num_types, best_flat % num_types, best_dt, best_dc


def _pick_step(
    dt_all: np.ndarray,
    dc_all: np.ndarray,
    valid: np.ndarray,
    num_types: int,
) -> tuple[int, int, float, float] | None:
    """Vectorized eps-aware lexicographic argmax over valid entries.

    Returns the same ``(row, type, dt, dc)`` the scalar scan
    (:func:`_pick_step_scan`) selects, or ``None`` when no entry is
    valid.  The scan's chained ``_EPS`` comparisons are order-dependent
    only in two narrow situations, both detected vectorized:

    * **C1** — some valid ``dt`` lies strictly within ``_EPS`` below the
      maximum ``M``.  Otherwise every update of the scan's running
      ``best_dt`` either jumps straight to ``M`` (any previous best is
      ``< M - _EPS``, so the strict-improvement branch fires on the
      first ``M`` entry) or already equals ``M``, hence the final
      ``best_dt`` is exactly ``M`` and only exact-``M`` entries pass the
      later ``abs(dt - best_dt) <= _EPS`` tie test.
    * **C2** — some ``dc`` of the exact-``M`` class lies in
      ``(m2, m2 + _EPS]`` for the class minimum ``m2``.  Otherwise any
      running ``best_dc > m2`` is ``> m2 + _EPS``, so scanning the first
      ``m2`` entry always fires the tie-break update and later ``m2``
      duplicates never do — the winner is the first exact-``M`` entry
      with ``dc == m2``.

    When either guard trips (ties within ``(0, _EPS]`` of each other —
    absent from every catalog in the test corpus, but possible), the
    exact scalar scan runs instead, so selection is *provably* identical
    in all cases.
    """
    if dt_all.size == 0:
        return None
    dt_masked = np.where(valid, dt_all, -np.inf)
    best_dt = float(dt_masked.max())
    if best_dt == -np.inf:
        return None
    if bool(np.any((dt_masked >= best_dt - _EPS) & (dt_masked < best_dt))):
        return _pick_step_scan(dt_all, dc_all, valid, num_types)
    tie = valid & (dt_all == best_dt)
    dc_masked = np.where(tie, dc_all, np.inf)
    best_dc = float(dc_masked.min())
    if bool(np.any((dc_masked > best_dc) & (dc_masked <= best_dc + _EPS))):
        return _pick_step_scan(dt_all, dc_all, valid, num_types)
    flat = int(np.argmax((tie & (dc_all == best_dc)).ravel()))
    return flat // num_types, flat % num_types, best_dt, best_dc


class _Workspace:
    """Reusable per-problem state of the incremental engine.

    Holds the CSR index and one :class:`~repro.core.fastpath.IncrementalSweep`
    (the preallocated est/eft/lst/lft buffers) for a specific
    ``(problem, transfer_aware)`` pair, so budget sweeps and instance
    comparisons that solve the same problem repeatedly stop
    re-materializing kernel state.  The problem is held via a weakref:
    a cached workspace never keeps a dead problem alive.
    """

    __slots__ = ("problem_ref", "index", "sweep")

    def __init__(self, problem: MedCCProblem, transfer_aware: bool) -> None:
        self.problem_ref = weakref.ref(problem)
        self.index = fastpath.graph_index(problem.workflow)
        transfer_times = problem.transfer_times if transfer_aware else None
        self.sweep = fastpath.IncrementalSweep(
            problem.workflow, transfer_times=transfer_times
        )


@register_scheduler("critical-greedy")
@dataclass
class CriticalGreedyScheduler:
    """The paper's Critical-Greedy (CG) heuristic.

    Parameters
    ----------
    candidate_scope:
        ``"critical"`` (the paper's algorithm) restricts rescheduling
        candidates to zero-buffer modules; ``"all"`` considers every module
        (ablation: isolates the effect of the critical-path restriction
        from the ΔT-first criterion).
    transfer_aware:
        When the problem carries a non-trivial transfer model, the critical
        path already includes transfer times, so CG is transfer-aware by
        construction; this flag is reserved to *disable* that (evaluate the
        CP on execution times only) for ablation.
    engine:
        ``"incremental"`` (default) runs delta CP sweeps with the
        vectorized candidate argmax; ``"fast"`` runs one full CSR sweep
        per iteration with the scalar tie-break scan; ``"reference"``
        runs the original implementation.  All three produce identical
        schedules, step traces, MEDs and costs.
    """

    candidate_scope: str = "critical"
    transfer_aware: bool = True
    engine: str = "incremental"
    name = "critical-greedy"

    def __post_init__(self) -> None:
        if self.candidate_scope not in ("critical", "all"):
            raise ConfigurationError(
                f"candidate_scope must be 'critical' or 'all', "
                f"got {self.candidate_scope!r}"
            )
        if self.engine not in ("incremental", "fast", "reference"):
            raise ConfigurationError(
                f"engine must be 'incremental', 'fast' or 'reference', "
                f"got {self.engine!r}"
            )
        # Single-slot workspace cache of the incremental engine.  Not a
        # dataclass field: it is derived state, invisible to __eq__,
        # declared_params() and the service cache key.
        self._workspace: _Workspace | None = None

    def __getstate__(self) -> dict[str, object]:
        # The workspace holds a weakref (unpicklable) and is pure cache;
        # drop it so scheduler instances can cross process boundaries
        # (ProcessPoolExecutor in the analysis sweeps).
        state = dict(self.__dict__)
        state["_workspace"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Run Algorithm 1 and return the schedule, MED and full trace."""
        if self.engine == "incremental":
            return self._solve_incremental(problem, budget)
        if self.engine == "fast":
            return self._solve_fast(problem, budget)
        return self._solve_reference(problem, budget)

    # ------------------------------------------------------------------ #
    # Incremental engine: delta CP sweeps + vectorized candidate argmax
    # ------------------------------------------------------------------ #

    def _acquire_workspace(self, problem: MedCCProblem) -> _Workspace:
        # Pop the slot while solving: two threads sharing one scheduler
        # instance never share sweep buffers (the second builds a fresh
        # workspace and the last one back wins the slot).
        workspace = self._workspace
        self._workspace = None
        if workspace is None or workspace.problem_ref() is not problem:
            workspace = _Workspace(problem, self.transfer_aware)
        return workspace

    def _solve_incremental(
        self, problem: MedCCProblem, budget: float
    ) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_modules, num_types = matrices.num_modules, matrices.num_types
        module_names = matrices.module_names

        workspace = self._acquire_workspace(problem)
        try:
            index = workspace.index
            sweep = workspace.sweep

            # Least-cost start (Alg. 1, step 2) and its (transfer-inclusive)
            # total cost, exactly as the reference engine computes them.
            columns = [int(j) for j in matrices.least_cost_choice()]
            cost = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns))))

            rows_arange = np.arange(num_modules)
            current_te = te[rows_arange, columns]
            current_ce = ce[rows_arange, columns]
            durations = list(index.base_durations)
            for row, node in enumerate(index.sched_nodes):
                durations[node] = float(current_te[row])
            makespan = sweep.reset_vector(durations)

            # Whole dt/dc matrices, maintained incrementally: only the
            # upgraded module's row changes between iterations, and the
            # refresh repeats the exact subtraction the full rebuild
            # would perform, so every entry stays bit-identical to the
            # per-iteration rebuild of the "fast" engine.
            dt_all = current_te[:, None] - te
            dc_all = ce - current_ce[:, None]

            steps: list[ReschedulingStep] = []
            scope_all = self.candidate_scope == "all"
            while budget - cost > _EPS:
                extra = budget - cost
                affordable = (dt_all > _EPS) & (dc_all <= extra + _EPS)
                if scope_all:
                    valid = affordable
                else:
                    critical = sweep.critical_rows()
                    if not critical.any():
                        break
                    valid = affordable & critical[:, None]
                picked = _pick_step(dt_all, dc_all, valid, num_types)
                if picked is None:
                    break
                row, j, best_dt, best_dc = picked

                module = module_names[row]
                from_type = columns[row]
                columns[row] = j
                new_time = float(te[row, j])
                current_te[row] = new_time
                current_ce[row] = ce[row, j]
                dt_all[row, :] = current_te[row] - te[row, :]
                dc_all[row, :] = ce[row, :] - current_ce[row]
                cost += best_dc
                makespan = sweep.set_row_duration(row, new_time)
                steps.append(
                    ReschedulingStep(
                        module=module,
                        from_type=from_type,
                        to_type=j,
                        time_decrease=best_dt,
                        cost_increase=best_dc,
                        makespan_after=makespan,
                        cost_after=cost,
                    )
                )
        finally:
            self._workspace = workspace

        current = Schedule._adopt(dict(zip(module_names, columns)))
        evaluation = self._evaluate(problem, current)
        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    # ------------------------------------------------------------------ #
    # Fast engine: full CSR sweep per iteration + scalar tie-break scan
    # ------------------------------------------------------------------ #

    def _solve_fast(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_modules, num_types = matrices.num_modules, matrices.num_types
        module_names = matrices.module_names

        index = fastpath.graph_index(problem.workflow)
        transfers = (
            fastpath.transfer_vector(index, problem.transfer_times)
            if self.transfer_aware
            else None
        )

        # Least-cost start (Alg. 1, step 2) and its (transfer-inclusive)
        # total cost, exactly as the reference engine computes them.
        columns = [int(j) for j in matrices.least_cost_choice()]
        cost = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns))))

        # Mutable state of the inner loop: per-node durations for the CP
        # sweep, plus the current row-wise time/cost of each module.
        durations = list(index.base_durations)
        sched_nodes = index.sched_nodes
        rows_arange = np.arange(num_modules)
        current_te = te[rows_arange, columns]
        current_ce = ce[rows_arange, columns]
        for row, node in enumerate(sched_nodes):
            durations[node] = float(current_te[row])

        est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
            index, durations, transfers
        )
        steps: list[ReschedulingStep] = []

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                cand = np.flatnonzero(
                    fastpath.critical_row_mask(index, est_vec, lst_vec)
                )
                if cand.size == 0:
                    break
            else:
                cand = rows_arange

            # Alg. 1, lines 11-13 — vectorized over whole te/ce rows.  The
            # validity mask reproduces the original per-entry skip tests
            # (dt <= eps, dc > extra + eps, j == j_cur has dt == 0 exactly);
            # the surviving entries are scanned in the original row-major
            # (module order, type order) sequence with the original _EPS
            # comparisons, so the selected step is identical bit-for-bit.
            dt = current_te[cand, None] - te[cand, :]
            dc = ce[cand, :] - current_ce[cand, None]
            valid = (dt > _EPS) & (dc <= extra + _EPS)
            picked = _pick_step_scan(dt, dc, valid, num_types)
            if picked is None:
                break
            cand_row, j, best_dt, best_dc = picked

            row = int(cand[cand_row])
            module = module_names[row]
            from_type = columns[row]

            columns[row] = j
            new_time = float(te[row, j])
            current_te[row] = new_time
            current_ce[row] = ce[row, j]
            durations[sched_nodes[row]] = new_time
            cost += best_dc
            est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
                index, durations, transfers
            )
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=best_dt,
                    cost_increase=best_dc,
                    makespan_after=makespan,
                    cost_after=cost,
                )
            )

        current = Schedule._adopt(dict(zip(module_names, columns)))
        evaluation = self._evaluate(problem, current)
        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    # ------------------------------------------------------------------ #
    # Reference engine: the original dict-and-networkx implementation
    # ------------------------------------------------------------------ #

    def _solve_reference(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.least_cost_schedule()
        # Total cost includes the schedule-independent transfer charges
        # (zero in the paper's single-cloud setting, non-zero in the
        # multi-cloud extension) so the budget comparison stays honest.
        cost = problem.cost_of(current)
        steps: list[ReschedulingStep] = []
        evaluation = self._evaluate(problem, current)

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                candidates = evaluation.analysis.critical_schedulable()
            else:
                candidates = problem.workflow.schedulable_names

            # Alg. 1, lines 11-13: the largest affordable time decrease,
            # ties broken by the smallest cost increase (then module/type
            # order for full determinism).
            best: tuple[float, float, str, int] | None = None
            for module in candidates:
                i = row[module]
                j_cur = current[module]
                t_old = te[i, j_cur]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    dt = t_old - te[i, j]
                    dc = ce[i, j] - c_old
                    if dt <= _EPS or dc > extra + _EPS:
                        continue
                    if best is None or dt > best[0] + _EPS or (
                        abs(dt - best[0]) <= _EPS and dc < best[1] - _EPS
                    ):
                        best = (dt, dc, module, j)

            if best is None:
                break

            dt, dc, module, j = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=dt,
                    cost_increase=dc,
                    makespan_after=0.0,  # patched below after evaluation
                    cost_after=cost + dc,
                )
            )
            current = current.with_assignment(module, j)
            cost += dc
            evaluation = self._evaluate(problem, current)
            steps[-1] = ReschedulingStep(
                module=module,
                from_type=steps[-1].from_type,
                to_type=j,
                time_decrease=dt,
                cost_increase=dc,
                makespan_after=evaluation.makespan,
                cost_after=cost,
            )

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    def _evaluate(self, problem: MedCCProblem, schedule: Schedule):
        if self.transfer_aware:
            return problem.evaluate(schedule)
        return schedule.evaluate(problem.workflow, problem.matrices, None)
