"""Critical-Greedy — the paper's heuristic for MED-CC (Algorithm 1).

Starting from the least-cost schedule, Critical-Greedy repeatedly:

1. recomputes the critical path of the currently mapped workflow
   (``O(m + |Ew|)`` per iteration);
2. among **critical** modules only, finds the reschedule (module, VM type)
   with the largest execution-time decrease :math:`\\Delta T(E_{i,j})`
   whose cost increase :math:`\\Delta C(E_{i,j})` fits in the remaining
   budget — ties broken by minimum cost increase (Alg. 1, line 13);
3. applies it and charges the remaining budget.

The loop stops when no affordable time-decreasing reschedule of a critical
module exists.  Restricting candidates to the critical path is the key
difference from the GAIN family: "Critical-Greedy collects only the
critical modules in each iteration, and makes a rescheduling decision based
primarily on the time decrease as long as it is affordable" (Section VI-A).

Termination: each applied step strictly decreases the rescheduled module's
execution time, and a module has only ``n`` distinct times, so the loop
runs at most ``m * (n - 1)`` iterations.

Three engines implement the identical algorithm:

* ``"incremental"`` (default) — the delta engine: one
  :class:`~repro.core.fastpath.IncrementalSweep` repropagates only the
  topological span a single-module upgrade can affect (instead of a full
  CP sweep per iteration), and the candidate search is a fully
  vectorized eps-aware lexicographic argmax (:func:`_pick_step`) that
  provably selects the same (module, type) entry as the scalar scan —
  falling back to the exact scalar scan in the rare near-tie cases where
  the eps-chained comparisons are order-dependent.  The scheduler keeps
  a single-slot per-problem workspace so repeated solves on the same
  problem (budget sweeps, instance comparisons) reuse the sweep buffers
  and the CSR index;
* ``"fast"`` — the PR-2 array engine: one cached full CSR sweep
  (:mod:`repro.core.fastpath`) per iteration, the shared
  :func:`~repro.core.fastpath.critical_row_mask` candidate routine, and
  the original scalar ``_EPS`` tie-break scan over the surviving
  entries;
* ``"reference"`` — the original dict-and-networkx inner loop, kept as
  the ground truth for the equivalence tests and the perf benchmark.

All three produce byte-identical schedules, step traces, MEDs and costs
(asserted by the test suite and ``benchmarks/bench_incremental.py
--check`` in CI).

On top of the incremental engine, :meth:`CriticalGreedyScheduler.solve_batch`
solves one problem at **B budgets simultaneously** over a single
:class:`~repro.core.fastpath.BatchedSweep`.  The key structural fact it
exploits: Critical-Greedy's step sequence at budget ``b`` is (almost
always) a prefix of the sequence at any larger budget — the pick depends
on the remaining budget only through the *affordability cutoff*, so two
budget rows whose cutoffs both admit the winning entry take the same
step.  Rows therefore advance in shared **groups** (identical columns,
cost and sweep state); each Critical-Greedy step costs one span-scan
repropagation and one vectorized argmax *per group* instead of per row,
and a measured 10-level sweep shares ~5.4x of its step work.  A row
splits off into its own group (one state copy) exactly when it can no
longer afford the group's chosen step, and retires into the result
vector when its remaining budget is exhausted.  Every row's schedule
and step trace is byte-identical to a serial ``solve`` at its budget —
the near-tie guards of :func:`_pick_step` are inherited unchanged (a
group whose pick is eps-ambiguous falls back to exact per-row scalar
scans), and ``tests/algorithms/test_critical_greedy_batch.py`` plus
``benchmarks/bench_batched.py --check`` assert the identity.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
    result_validation_enabled,
)
from repro.core import fastpath
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["CriticalGreedyScheduler"]

#: Tolerance for "affordable" and "strictly positive time decrease" tests.
_EPS = 1e-9


def _pick_step_scan(
    dt_all: np.ndarray,
    dc_all: np.ndarray,
    valid: np.ndarray,
    num_types: int,
) -> tuple[int, int, float, float] | None:
    """The original scalar selection scan (Alg. 1, lines 11-13).

    Walks the valid entries in row-major (module order, type order)
    sequence with the original eps-chained comparisons.  This is the
    ground-truth selection; :func:`_pick_step` must match it bit for bit.
    """
    flat_valid = np.nonzero(valid.ravel())[0]
    if flat_valid.size == 0:
        return None
    dt_flat = dt_all.ravel()[flat_valid].tolist()
    dc_flat = dc_all.ravel()[flat_valid].tolist()
    best_dt = best_dc = 0.0
    best_flat = -1
    for position, flat in enumerate(flat_valid.tolist()):
        dt_val = dt_flat[position]
        dc_val = dc_flat[position]
        if (
            best_flat < 0
            or dt_val > best_dt + _EPS
            or (abs(dt_val - best_dt) <= _EPS and dc_val < best_dc - _EPS)
        ):
            best_dt, best_dc, best_flat = dt_val, dc_val, flat
    return best_flat // num_types, best_flat % num_types, best_dt, best_dc


def _pick_step(
    dt_all: np.ndarray,
    dc_all: np.ndarray,
    valid: np.ndarray,
    num_types: int,
) -> tuple[int, int, float, float] | None:
    """Vectorized eps-aware lexicographic argmax over valid entries.

    Returns the same ``(row, type, dt, dc)`` the scalar scan
    (:func:`_pick_step_scan`) selects, or ``None`` when no entry is
    valid.  The scan's chained ``_EPS`` comparisons are order-dependent
    only in two narrow situations, both detected vectorized:

    * **C1** — some valid ``dt`` lies strictly within ``_EPS`` below the
      maximum ``M``.  Otherwise every update of the scan's running
      ``best_dt`` either jumps straight to ``M`` (any previous best is
      ``< M - _EPS``, so the strict-improvement branch fires on the
      first ``M`` entry) or already equals ``M``, hence the final
      ``best_dt`` is exactly ``M`` and only exact-``M`` entries pass the
      later ``abs(dt - best_dt) <= _EPS`` tie test.
    * **C2** — some ``dc`` of the exact-``M`` class lies in
      ``(m2, m2 + _EPS]`` for the class minimum ``m2``.  Otherwise any
      running ``best_dc > m2`` is ``> m2 + _EPS``, so scanning the first
      ``m2`` entry always fires the tie-break update and later ``m2``
      duplicates never do — the winner is the first exact-``M`` entry
      with ``dc == m2``.

    When either guard trips (ties within ``(0, _EPS]`` of each other —
    absent from every catalog in the test corpus, but possible), the
    exact scalar scan runs instead, so selection is *provably* identical
    in all cases.
    """
    if dt_all.size == 0:
        return None
    dt_masked = np.where(valid, dt_all, -np.inf)
    best_dt = float(dt_masked.max())
    if best_dt == -np.inf:
        return None
    if bool(np.any((dt_masked >= best_dt - _EPS) & (dt_masked < best_dt))):
        return _pick_step_scan(dt_all, dc_all, valid, num_types)
    tie = valid & (dt_all == best_dt)
    dc_masked = np.where(tie, dc_all, np.inf)
    best_dc = float(dc_masked.min())
    if bool(np.any((dc_masked > best_dc) & (dc_masked <= best_dc + _EPS))):
        return _pick_step_scan(dt_all, dc_all, valid, num_types)
    flat = int(np.argmax((tie & (dc_all == best_dc)).ravel()))
    return flat // num_types, flat % num_types, best_dt, best_dc


#: Sentinel returned by :func:`_pick_steps_batched` for a group whose
#: near-tie guards tripped: the caller must run the exact per-row scan.
_NEAR_TIE = object()


def _pick_steps_batched(
    dt3: np.ndarray,
    dc3: np.ndarray,
    valid3: np.ndarray,
    num_types: int,
) -> list[tuple[int, int, float, float] | None | object]:
    """:func:`_pick_step` for G stacked grids in one numpy pass.

    ``dt3``/``dc3``/``valid3`` are ``(G, m, n)`` stacks — one
    ΔT/ΔC/validity grid per group.  Element ``g`` of the result is what
    ``_pick_step(dt3[g], dc3[g], valid3[g], num_types)`` would return on
    its vectorized path (``None`` when nothing is valid), or the
    :data:`_NEAR_TIE` sentinel when that group's eps guards (C1/C2 in
    :func:`_pick_step`) would trip — the caller then runs the exact
    scalar scan for that group alone.  All reductions are ``max`` /
    ``min`` / ``any`` over the grid axes (exact, order-independent), and
    the per-group thresholds ``best_dt - _EPS`` / ``best_dc + _EPS`` are
    the same IEEE double operations as the 2-D version, so the
    selections agree bit for bit.
    """
    groups = dt3.shape[0]
    dt_masked = np.where(valid3, dt3, -np.inf)
    best_dt = dt_masked.reshape(groups, -1).max(axis=1)
    none_mask = best_dt == -np.inf
    c1 = np.any(
        (dt_masked >= (best_dt - _EPS)[:, None, None])
        & (dt_masked < best_dt[:, None, None]),
        axis=(1, 2),
    )
    tie = valid3 & (dt3 == best_dt[:, None, None])
    dc_masked = np.where(tie, dc3, np.inf)
    best_dc = dc_masked.reshape(groups, -1).min(axis=1)
    c2 = np.any(
        (dc_masked > best_dc[:, None, None])
        & (dc_masked <= (best_dc + _EPS)[:, None, None]),
        axis=(1, 2),
    )
    winner_flat = np.argmax(
        (tie & (dc3 == best_dc[:, None, None])).reshape(groups, -1), axis=1
    )
    fallback = (c1 | c2) & ~none_mask
    picks: list[tuple[int, int, float, float] | None | object] = []
    for g in range(groups):
        if none_mask[g]:
            picks.append(None)
        elif fallback[g]:
            picks.append(_NEAR_TIE)
        else:
            flat = int(winner_flat[g])
            picks.append(
                (
                    flat // num_types,
                    flat % num_types,
                    float(best_dt[g]),
                    float(best_dc[g]),
                )
            )
    return picks


class _BatchGroup:
    """One group of budget rows advancing in lock-step through Alg. 1.

    All member rows share *identical* solver state — columns, cost,
    current te/ce, ΔT/ΔC grids, step trace, and one
    :class:`~repro.core.fastpath.BatchedSweep` slot — because they have
    applied exactly the same step sequence so far.  Splitting a group
    copies this state once for the rows that diverge.
    """

    __slots__ = (
        "slot",
        "members",
        "columns",
        "cost",
        "current_te",
        "current_ce",
        "dt_all",
        "dc_all",
        "steps",
    )

    def __init__(
        self,
        slot: int,
        members: list[int],
        columns: list[int],
        cost: float,
        current_te: np.ndarray,
        current_ce: np.ndarray,
        dt_all: np.ndarray,
        dc_all: np.ndarray,
        steps: list[ReschedulingStep],
    ) -> None:
        self.slot = slot
        self.members = members
        self.columns = columns
        self.cost = cost
        self.current_te = current_te
        self.current_ce = current_ce
        self.dt_all = dt_all
        self.dc_all = dc_all
        self.steps = steps

    def fork(self, slot: int, members: list[int]) -> "_BatchGroup":
        """A deep-enough copy for ``members`` to diverge independently."""
        return _BatchGroup(
            slot=slot,
            members=members,
            columns=list(self.columns),
            cost=self.cost,
            current_te=self.current_te.copy(),
            current_ce=self.current_ce.copy(),
            dt_all=self.dt_all.copy(),
            dc_all=self.dc_all.copy(),
            steps=list(self.steps),
        )


class _Workspace:
    """Reusable per-problem state of the incremental engine.

    Holds the CSR index and one :class:`~repro.core.fastpath.IncrementalSweep`
    (the preallocated est/eft/lst/lft buffers) for a specific
    ``(problem, transfer_aware)`` pair, so budget sweeps and instance
    comparisons that solve the same problem repeatedly stop
    re-materializing kernel state.  The problem is held via a weakref:
    a cached workspace never keeps a dead problem alive.
    """

    __slots__ = ("problem_ref", "index", "sweep")

    def __init__(self, problem: MedCCProblem, transfer_aware: bool) -> None:
        self.problem_ref = weakref.ref(problem)
        self.index = fastpath.graph_index(problem.workflow)
        transfer_times = problem.transfer_times if transfer_aware else None
        self.sweep = fastpath.IncrementalSweep(
            problem.workflow, transfer_times=transfer_times
        )


@register_scheduler("critical-greedy")
@dataclass
class CriticalGreedyScheduler:
    """The paper's Critical-Greedy (CG) heuristic.

    Parameters
    ----------
    candidate_scope:
        ``"critical"`` (the paper's algorithm) restricts rescheduling
        candidates to zero-buffer modules; ``"all"`` considers every module
        (ablation: isolates the effect of the critical-path restriction
        from the ΔT-first criterion).
    transfer_aware:
        When the problem carries a non-trivial transfer model, the critical
        path already includes transfer times, so CG is transfer-aware by
        construction; this flag is reserved to *disable* that (evaluate the
        CP on execution times only) for ablation.
    engine:
        ``"incremental"`` (default) runs delta CP sweeps with the
        vectorized candidate argmax; ``"fast"`` runs one full CSR sweep
        per iteration with the scalar tie-break scan; ``"reference"``
        runs the original implementation.  All three produce identical
        schedules, step traces, MEDs and costs.
    """

    candidate_scope: str = "critical"
    transfer_aware: bool = True
    engine: str = "incremental"
    name = "critical-greedy"

    def __post_init__(self) -> None:
        if self.candidate_scope not in ("critical", "all"):
            raise ConfigurationError(
                f"candidate_scope must be 'critical' or 'all', "
                f"got {self.candidate_scope!r}"
            )
        if self.engine not in ("incremental", "fast", "reference"):
            raise ConfigurationError(
                f"engine must be 'incremental', 'fast' or 'reference', "
                f"got {self.engine!r}"
            )
        # Single-slot workspace cache of the incremental engine.  Not a
        # dataclass field: it is derived state, invisible to __eq__,
        # declared_params() and the service cache key.
        self._workspace: _Workspace | None = None

    def __getstate__(self) -> dict[str, object]:
        # The workspace holds a weakref (unpicklable) and is pure cache;
        # drop it so scheduler instances can cross process boundaries
        # (ProcessPoolExecutor in the analysis sweeps).
        state = dict(self.__dict__)
        state["_workspace"] = None
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Run Algorithm 1 and return the schedule, MED and full trace."""
        if self.engine == "incremental":
            return self._solve_incremental(problem, budget)
        if self.engine == "fast":
            return self._solve_fast(problem, budget)
        return self._solve_reference(problem, budget)

    def solve_batch(
        self, problem: MedCCProblem, budgets: Sequence[float]
    ) -> list[SchedulerResult]:
        """Solve one problem at many budgets in one batched run.

        Result ``i`` is byte-identical to ``solve(problem, budgets[i])``
        — same schedule, step trace, MED and cost — but the rows advance
        through Algorithm 1 in shared groups over one
        :class:`~repro.core.fastpath.BatchedSweep`, so the total step
        work scales with the number of *distinct* step-sequence
        suffixes instead of the sum of trace lengths (see the module
        docstring).  Only the incremental engine has a batched path; the
        other engines (and the trivial single-budget case) fall back to
        serial solves, so callers can use this unconditionally.

        Raises :class:`~repro.exceptions.InfeasibleBudgetError` on the
        first infeasible budget, before any row is solved — exactly
        where a serial loop over ``budgets`` would raise.
        """
        budget_list = [float(b) for b in budgets]
        if not budget_list:
            return []
        if self.engine != "incremental" or len(budget_list) == 1:
            return [self.solve(problem, budget) for budget in budget_list]
        for budget in budget_list:
            problem.check_feasible(budget)
        results = self._solve_batch_incremental(problem, budget_list)
        # Registered schedulers get their solve() wrapped by the lint
        # validation hook; the batched path applies the same audit per
        # row so REPRO_VALIDATE_RESULTS covers both entry points.
        if result_validation_enabled():
            from repro.lint import check_scheduler_result

            for result in results:
                check_scheduler_result(problem, result, respects_budget=True)
        return results

    # ------------------------------------------------------------------ #
    # Batched incremental engine: B budgets over one BatchedSweep
    # ------------------------------------------------------------------ #

    def _solve_batch_incremental(
        self, problem: MedCCProblem, budgets: list[float]
    ) -> list[SchedulerResult]:
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_types = matrices.num_types
        module_names = matrices.module_names
        batch = len(budgets)

        index = fastpath.graph_index(problem.workflow)
        transfer_times = problem.transfer_times if self.transfer_aware else None
        sweep = fastpath.BatchedSweep(
            problem.workflow, batch, transfer_times=transfer_times
        )

        # Least-cost start (Alg. 1, step 2), computed once — every budget
        # row starts from the same schedule, cost and sweep state.
        columns0 = [int(j) for j in matrices.least_cost_choice()]
        cost0 = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns0))))
        rows_arange = np.arange(matrices.num_modules)
        current_te = te[rows_arange, columns0]
        current_ce = ce[rows_arange, columns0]
        durations = list(index.base_durations)
        for row, node in enumerate(index.sched_nodes):
            durations[node] = float(current_te[row])
        slot0 = sweep.acquire_slot()
        sweep.reset_slot(slot0, durations)

        root = _BatchGroup(
            slot=slot0,
            members=list(range(batch)),
            columns=columns0,
            cost=cost0,
            current_te=current_te,
            current_ce=current_ce,
            dt_all=current_te[:, None] - te,
            dc_all=ce - current_ce[:, None],
            steps=[],
        )
        finished: list[tuple[list[int], tuple[ReschedulingStep, ...]] | None]
        finished = [None] * batch
        scope_all = self.candidate_scope == "all"

        def retire(group: _BatchGroup, members: list[int]) -> None:
            # Snapshot the rows' final state; their serial loop ends here.
            for b in members:
                finished[b] = (list(group.columns), tuple(group.steps))

        def apply_step(
            group: _BatchGroup, row: int, j: int, best_dt: float, best_dc: float
        ) -> None:
            # The exact per-step state refresh of _solve_incremental.
            module = module_names[row]
            from_type = group.columns[row]
            group.columns[row] = j
            new_time = float(te[row, j])
            group.current_te[row] = new_time
            group.current_ce[row] = ce[row, j]
            group.dt_all[row, :] = group.current_te[row] - te[row, :]
            group.dc_all[row, :] = ce[row, :] - group.current_ce[row]
            group.cost += best_dc
            makespan = sweep.set_row_duration(group.slot, row, new_time)
            group.steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=best_dt,
                    cost_increase=best_dc,
                    makespan_after=makespan,
                    cost_after=group.cost,
                )
            )

        def split_near_tie(
            group: _BatchGroup, crit_mask: np.ndarray | None
        ) -> list[_BatchGroup]:
            # A near-tie guard tripped at the group's loosest cutoff: the
            # shared pick is no longer provably right for every member, so
            # run the exact serial selection per row and regroup rows that
            # picked the same entry.  _pick_step at a row's own cutoff is
            # the serial engine's selection, guards and all.
            picked_by_key: dict[tuple[int, int], tuple] = {}
            members_by_key: dict[tuple[int, int] | None, list[int]] = {}
            order: list[tuple[int, int] | None] = []
            for b in group.members:
                extra_b = budgets[b] - group.cost
                affordable_b = (group.dt_all > _EPS) & (
                    group.dc_all <= extra_b + _EPS
                )
                valid_b = (
                    affordable_b
                    if crit_mask is None
                    else affordable_b & crit_mask[:, None]
                )
                picked_b = _pick_step(group.dt_all, group.dc_all, valid_b, num_types)
                key = None if picked_b is None else (picked_b[0], picked_b[1])
                if key not in members_by_key:
                    members_by_key[key] = []
                    order.append(key)
                    if picked_b is not None:
                        picked_by_key[key] = picked_b
                members_by_key[key].append(b)
            # Fork every diverging subgroup from the *pre-step* state
            # before any step is applied; the first live key keeps the
            # original slot.
            subgroups: list[tuple[_BatchGroup, tuple]] = []
            reused_original = False
            for key in order:
                if key is None:
                    retire(group, members_by_key[key])
                    continue
                if not reused_original:
                    group.members = members_by_key[key]
                    subgroups.append((group, picked_by_key[key]))
                    reused_original = True
                else:
                    new_slot = sweep.acquire_slot()
                    sweep.copy_slot(group.slot, new_slot)
                    subgroups.append(
                        (group.fork(new_slot, members_by_key[key]), picked_by_key[key])
                    )
            if not reused_original:
                sweep.release_slot(group.slot)
            out = []
            for sub, picked in subgroups:
                row, j, best_dt, best_dc = picked
                apply_step(sub, row, j, best_dt, best_dc)
                out.append(sub)
            return out

        groups = [root]
        while groups:
            # Retire rows whose remaining budget is exhausted — the
            # serial loop guard ``budget - cost > _EPS`` evaluated with
            # the identical subtraction per row.
            survivors: list[_BatchGroup] = []
            for group in groups:
                keep = [b for b in group.members if budgets[b] - group.cost > _EPS]
                if len(keep) != len(group.members):
                    done = [
                        b for b in group.members if budgets[b] - group.cost <= _EPS
                    ]
                    retire(group, done)
                    group.members = keep
                if keep:
                    survivors.append(group)
                else:
                    sweep.release_slot(group.slot)
            groups = survivors
            if not groups:
                break

            # Critical masks of every live group in one 2-D comparison.
            crit2d = (
                None
                if scope_all
                else sweep.critical_rows_batch([g.slot for g in groups])
            )

            # Build each group's validity grid at its *loosest* member
            # cutoff (max remaining budget) — the union of the members'
            # serial masks, so the group pick is the serial pick of the
            # loosest member and provably of every member that can
            # afford it (see _pick_steps_batched / module docstring).
            live: list[_BatchGroup] = []
            live_crit: list[np.ndarray | None] = []
            grids: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            for gi, group in enumerate(groups):
                if crit2d is not None and not crit2d[gi].any():
                    retire(group, group.members)
                    sweep.release_slot(group.slot)
                    continue
                extra = max(budgets[b] for b in group.members) - group.cost
                affordable = (group.dt_all > _EPS) & (group.dc_all <= extra + _EPS)
                valid = (
                    affordable
                    if crit2d is None
                    else affordable & crit2d[gi][:, None]
                )
                live.append(group)
                live_crit.append(None if crit2d is None else crit2d[gi])
                grids.append((group.dt_all, group.dc_all, valid))
            if not live:
                break

            # One eps-aware lexicographic argmax for all live groups.
            if len(live) == 1:
                dt3 = grids[0][0][None]
                dc3 = grids[0][1][None]
                valid3 = grids[0][2][None]
            else:
                dt3 = np.stack([g[0] for g in grids])
                dc3 = np.stack([g[1] for g in grids])
                valid3 = np.stack([g[2] for g in grids])
            picks = _pick_steps_batched(dt3, dc3, valid3, num_types)

            next_groups: list[_BatchGroup] = []
            for group, crit_mask, picked in zip(live, live_crit, picks):
                if picked is None:
                    # Nothing affordable even at the loosest cutoff, so
                    # every member's serial loop breaks here too.
                    retire(group, group.members)
                    sweep.release_slot(group.slot)
                    continue
                if picked is _NEAR_TIE:
                    next_groups.extend(split_near_tie(group, crit_mask))
                    continue
                row, j, best_dt, best_dc = picked
                # Rows that cannot afford the group's step diverge: they
                # fork with the pre-step state and re-pick at their own
                # cutoff next round.  The loosest member always affords
                # its own pick, so ``stay`` is never empty.
                stay = [
                    b
                    for b in group.members
                    if best_dc <= (budgets[b] - group.cost) + _EPS
                ]
                if len(stay) != len(group.members):
                    leave = [
                        b
                        for b in group.members
                        if best_dc > (budgets[b] - group.cost) + _EPS
                    ]
                    new_slot = sweep.acquire_slot()
                    sweep.copy_slot(group.slot, new_slot)
                    next_groups.append(group.fork(new_slot, leave))
                    group.members = stay
                apply_step(group, row, j, best_dt, best_dc)
                next_groups.append(group)
            groups = next_groups

        results: list[SchedulerResult] = []
        for b, budget in enumerate(budgets):
            snapshot = finished[b]
            assert snapshot is not None  # every row retires exactly once
            columns, steps = snapshot
            schedule = Schedule._adopt(dict(zip(module_names, columns)))
            evaluation = self._evaluate(problem, schedule)
            results.append(
                SchedulerResult(
                    algorithm=self.name,
                    schedule=schedule,
                    evaluation=evaluation,
                    budget=budget,
                    steps=steps,
                    extras={"iterations": len(steps)},
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # Incremental engine: delta CP sweeps + vectorized candidate argmax
    # ------------------------------------------------------------------ #

    def _acquire_workspace(self, problem: MedCCProblem) -> _Workspace:
        # Pop the slot while solving: two threads sharing one scheduler
        # instance never share sweep buffers (the second builds a fresh
        # workspace and the last one back wins the slot).
        workspace = self._workspace
        self._workspace = None
        if workspace is None or workspace.problem_ref() is not problem:
            workspace = _Workspace(problem, self.transfer_aware)
        return workspace

    def _solve_incremental(
        self, problem: MedCCProblem, budget: float
    ) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_modules, num_types = matrices.num_modules, matrices.num_types
        module_names = matrices.module_names

        workspace = self._acquire_workspace(problem)
        try:
            index = workspace.index
            sweep = workspace.sweep

            # Least-cost start (Alg. 1, step 2) and its (transfer-inclusive)
            # total cost, exactly as the reference engine computes them.
            columns = [int(j) for j in matrices.least_cost_choice()]
            cost = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns))))

            rows_arange = np.arange(num_modules)
            current_te = te[rows_arange, columns]
            current_ce = ce[rows_arange, columns]
            durations = list(index.base_durations)
            for row, node in enumerate(index.sched_nodes):
                durations[node] = float(current_te[row])
            makespan = sweep.reset_vector(durations)

            # Whole dt/dc matrices, maintained incrementally: only the
            # upgraded module's row changes between iterations, and the
            # refresh repeats the exact subtraction the full rebuild
            # would perform, so every entry stays bit-identical to the
            # per-iteration rebuild of the "fast" engine.
            dt_all = current_te[:, None] - te
            dc_all = ce - current_ce[:, None]

            steps: list[ReschedulingStep] = []
            scope_all = self.candidate_scope == "all"
            while budget - cost > _EPS:
                extra = budget - cost
                affordable = (dt_all > _EPS) & (dc_all <= extra + _EPS)
                if scope_all:
                    valid = affordable
                else:
                    critical = sweep.critical_rows()
                    if not critical.any():
                        break
                    valid = affordable & critical[:, None]
                picked = _pick_step(dt_all, dc_all, valid, num_types)
                if picked is None:
                    break
                row, j, best_dt, best_dc = picked

                module = module_names[row]
                from_type = columns[row]
                columns[row] = j
                new_time = float(te[row, j])
                current_te[row] = new_time
                current_ce[row] = ce[row, j]
                dt_all[row, :] = current_te[row] - te[row, :]
                dc_all[row, :] = ce[row, :] - current_ce[row]
                cost += best_dc
                makespan = sweep.set_row_duration(row, new_time)
                steps.append(
                    ReschedulingStep(
                        module=module,
                        from_type=from_type,
                        to_type=j,
                        time_decrease=best_dt,
                        cost_increase=best_dc,
                        makespan_after=makespan,
                        cost_after=cost,
                    )
                )
        finally:
            self._workspace = workspace

        current = Schedule._adopt(dict(zip(module_names, columns)))
        evaluation = self._evaluate(problem, current)
        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    # ------------------------------------------------------------------ #
    # Fast engine: full CSR sweep per iteration + scalar tie-break scan
    # ------------------------------------------------------------------ #

    def _solve_fast(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_modules, num_types = matrices.num_modules, matrices.num_types
        module_names = matrices.module_names

        index = fastpath.graph_index(problem.workflow)
        transfers = (
            fastpath.transfer_vector(index, problem.transfer_times)
            if self.transfer_aware
            else None
        )

        # Least-cost start (Alg. 1, step 2) and its (transfer-inclusive)
        # total cost, exactly as the reference engine computes them.
        columns = [int(j) for j in matrices.least_cost_choice()]
        cost = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns))))

        # Mutable state of the inner loop: per-node durations for the CP
        # sweep, plus the current row-wise time/cost of each module.
        durations = list(index.base_durations)
        sched_nodes = index.sched_nodes
        rows_arange = np.arange(num_modules)
        current_te = te[rows_arange, columns]
        current_ce = ce[rows_arange, columns]
        for row, node in enumerate(sched_nodes):
            durations[node] = float(current_te[row])

        est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
            index, durations, transfers
        )
        steps: list[ReschedulingStep] = []

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                cand = np.flatnonzero(
                    fastpath.critical_row_mask(index, est_vec, lst_vec)
                )
                if cand.size == 0:
                    break
            else:
                cand = rows_arange

            # Alg. 1, lines 11-13 — vectorized over whole te/ce rows.  The
            # validity mask reproduces the original per-entry skip tests
            # (dt <= eps, dc > extra + eps, j == j_cur has dt == 0 exactly);
            # the surviving entries are scanned in the original row-major
            # (module order, type order) sequence with the original _EPS
            # comparisons, so the selected step is identical bit-for-bit.
            dt = current_te[cand, None] - te[cand, :]
            dc = ce[cand, :] - current_ce[cand, None]
            valid = (dt > _EPS) & (dc <= extra + _EPS)
            picked = _pick_step_scan(dt, dc, valid, num_types)
            if picked is None:
                break
            cand_row, j, best_dt, best_dc = picked

            row = int(cand[cand_row])
            module = module_names[row]
            from_type = columns[row]

            columns[row] = j
            new_time = float(te[row, j])
            current_te[row] = new_time
            current_ce[row] = ce[row, j]
            durations[sched_nodes[row]] = new_time
            cost += best_dc
            est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
                index, durations, transfers
            )
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=best_dt,
                    cost_increase=best_dc,
                    makespan_after=makespan,
                    cost_after=cost,
                )
            )

        current = Schedule._adopt(dict(zip(module_names, columns)))
        evaluation = self._evaluate(problem, current)
        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    # ------------------------------------------------------------------ #
    # Reference engine: the original dict-and-networkx implementation
    # ------------------------------------------------------------------ #

    def _solve_reference(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.least_cost_schedule()
        # Total cost includes the schedule-independent transfer charges
        # (zero in the paper's single-cloud setting, non-zero in the
        # multi-cloud extension) so the budget comparison stays honest.
        cost = problem.cost_of(current)
        steps: list[ReschedulingStep] = []
        evaluation = self._evaluate(problem, current)

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                candidates = evaluation.analysis.critical_schedulable()
            else:
                candidates = problem.workflow.schedulable_names

            # Alg. 1, lines 11-13: the largest affordable time decrease,
            # ties broken by the smallest cost increase (then module/type
            # order for full determinism).
            best: tuple[float, float, str, int] | None = None
            for module in candidates:
                i = row[module]
                j_cur = current[module]
                t_old = te[i, j_cur]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    dt = t_old - te[i, j]
                    dc = ce[i, j] - c_old
                    if dt <= _EPS or dc > extra + _EPS:
                        continue
                    if best is None or dt > best[0] + _EPS or (
                        abs(dt - best[0]) <= _EPS and dc < best[1] - _EPS
                    ):
                        best = (dt, dc, module, j)

            if best is None:
                break

            dt, dc, module, j = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=dt,
                    cost_increase=dc,
                    makespan_after=0.0,  # patched below after evaluation
                    cost_after=cost + dc,
                )
            )
            current = current.with_assignment(module, j)
            cost += dc
            evaluation = self._evaluate(problem, current)
            steps[-1] = ReschedulingStep(
                module=module,
                from_type=steps[-1].from_type,
                to_type=j,
                time_decrease=dt,
                cost_increase=dc,
                makespan_after=evaluation.makespan,
                cost_after=cost,
            )

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    def _evaluate(self, problem: MedCCProblem, schedule: Schedule):
        if self.transfer_aware:
            return problem.evaluate(schedule)
        return schedule.evaluate(problem.workflow, problem.matrices, None)
