"""Critical-Greedy — the paper's heuristic for MED-CC (Algorithm 1).

Starting from the least-cost schedule, Critical-Greedy repeatedly:

1. recomputes the critical path of the currently mapped workflow
   (``O(m + |Ew|)`` per iteration);
2. among **critical** modules only, finds the reschedule (module, VM type)
   with the largest execution-time decrease :math:`\\Delta T(E_{i,j})`
   whose cost increase :math:`\\Delta C(E_{i,j})` fits in the remaining
   budget — ties broken by minimum cost increase (Alg. 1, line 13);
3. applies it and charges the remaining budget.

The loop stops when no affordable time-decreasing reschedule of a critical
module exists.  Restricting candidates to the critical path is the key
difference from the GAIN family: "Critical-Greedy collects only the
critical modules in each iteration, and makes a rescheduling decision based
primarily on the time decrease as long as it is affordable" (Section VI-A).

Termination: each applied step strictly decreases the rescheduled module's
execution time, and a module has only ``n`` distinct times, so the loop
runs at most ``m * (n - 1)`` iterations.

Two engines implement the identical algorithm:

* ``"fast"`` (default) — the array engine: one cached CSR sweep
  (:mod:`repro.core.fastpath`) per iteration and a vectorized candidate
  search (whole ``dt``/``dc`` rows with masks; the surviving entries are
  then scanned in the original (module, type) order with the original
  ``_EPS`` comparisons, so step traces are byte-identical);
* ``"reference"`` — the original dict-and-networkx inner loop, kept as
  the ground truth for the equivalence tests and the perf benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.core import fastpath
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["CriticalGreedyScheduler"]

#: Tolerance for "affordable" and "strictly positive time decrease" tests.
_EPS = 1e-9


@register_scheduler("critical-greedy")
@dataclass
class CriticalGreedyScheduler:
    """The paper's Critical-Greedy (CG) heuristic.

    Parameters
    ----------
    candidate_scope:
        ``"critical"`` (the paper's algorithm) restricts rescheduling
        candidates to zero-buffer modules; ``"all"`` considers every module
        (ablation: isolates the effect of the critical-path restriction
        from the ΔT-first criterion).
    transfer_aware:
        When the problem carries a non-trivial transfer model, the critical
        path already includes transfer times, so CG is transfer-aware by
        construction; this flag is reserved to *disable* that (evaluate the
        CP on execution times only) for ablation.
    engine:
        ``"fast"`` (default) runs the CSR-kernel/vectorized engine;
        ``"reference"`` runs the original implementation.  Both produce
        identical schedules, step traces, MEDs and costs.
    """

    candidate_scope: str = "critical"
    transfer_aware: bool = True
    engine: str = "fast"
    name = "critical-greedy"

    def __post_init__(self) -> None:
        if self.candidate_scope not in ("critical", "all"):
            raise ConfigurationError(
                f"candidate_scope must be 'critical' or 'all', "
                f"got {self.candidate_scope!r}"
            )
        if self.engine not in ("fast", "reference"):
            raise ConfigurationError(
                f"engine must be 'fast' or 'reference', got {self.engine!r}"
            )

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Run Algorithm 1 and return the schedule, MED and full trace."""
        if self.engine == "fast":
            return self._solve_fast(problem, budget)
        return self._solve_reference(problem, budget)

    # ------------------------------------------------------------------ #
    # Fast engine: CSR kernel + vectorized candidate search
    # ------------------------------------------------------------------ #

    def _solve_fast(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        num_modules, num_types = matrices.num_modules, matrices.num_types
        module_names = matrices.module_names

        index = fastpath.graph_index(problem.workflow)
        transfers = (
            fastpath.transfer_vector(index, problem.transfer_times)
            if self.transfer_aware
            else None
        )

        # Least-cost start (Alg. 1, step 2) and its (transfer-inclusive)
        # total cost, exactly as the reference engine computes them.
        columns = [int(j) for j in matrices.least_cost_choice()]
        cost = problem.cost_of(Schedule._adopt(dict(zip(module_names, columns))))

        # Mutable state of the inner loop: per-node durations for the CP
        # sweep, plus the current row-wise time/cost of each module.
        durations = list(index.base_durations)
        sched_nodes = index.sched_nodes
        rows_arange = np.arange(num_modules)
        current_te = te[rows_arange, columns]
        current_ce = ce[rows_arange, columns]
        for row, node in enumerate(sched_nodes):
            durations[node] = float(current_te[row])

        est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
            index, durations, transfers
        )
        steps: list[ReschedulingStep] = []
        all_rows = list(range(num_modules))
        row_of = index.row_of_node
        num_nodes = index.num_nodes
        slack_tol = fastpath.SLACK_TOL

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                candidates = [
                    row_of[v]
                    for v in range(num_nodes)
                    if row_of[v] >= 0 and lst_vec[v] - est_vec[v] <= slack_tol
                ]
            else:
                candidates = all_rows
            if not candidates:
                break

            # Alg. 1, lines 11-13 — vectorized over whole te/ce rows.  The
            # validity mask reproduces the original per-entry skip tests
            # (dt <= eps, dc > extra + eps, j == j_cur has dt == 0 exactly);
            # the surviving entries are scanned in the original row-major
            # (module order, type order) sequence with the original _EPS
            # comparisons, so the selected step is identical bit-for-bit.
            cand = np.asarray(candidates, dtype=np.intp)
            dt = current_te[cand, None] - te[cand, :]
            dc = ce[cand, :] - current_ce[cand, None]
            valid = (dt > _EPS) & (dc <= extra + _EPS)
            flat_valid = np.nonzero(valid.ravel())[0]
            if flat_valid.size == 0:
                break

            dt_flat = dt.ravel()[flat_valid].tolist()
            dc_flat = dc.ravel()[flat_valid].tolist()
            best_dt = best_dc = 0.0
            best_flat = -1
            for position, flat in enumerate(flat_valid.tolist()):
                dt_val = dt_flat[position]
                dc_val = dc_flat[position]
                if (
                    best_flat < 0
                    or dt_val > best_dt + _EPS
                    or (abs(dt_val - best_dt) <= _EPS and dc_val < best_dc - _EPS)
                ):
                    best_dt, best_dc, best_flat = dt_val, dc_val, flat

            row = candidates[best_flat // num_types]
            j = best_flat % num_types
            module = module_names[row]
            from_type = columns[row]

            columns[row] = j
            new_time = float(te[row, j])
            current_te[row] = new_time
            current_ce[row] = ce[row, j]
            durations[sched_nodes[row]] = new_time
            cost += best_dc
            est_vec, _, lst_vec, _, _, makespan = fastpath.sweep_arrays(
                index, durations, transfers
            )
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=best_dt,
                    cost_increase=best_dc,
                    makespan_after=makespan,
                    cost_after=cost,
                )
            )

        current = Schedule._adopt(dict(zip(module_names, columns)))
        evaluation = self._evaluate(problem, current)
        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    # ------------------------------------------------------------------ #
    # Reference engine: the original dict-and-networkx implementation
    # ------------------------------------------------------------------ #

    def _solve_reference(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.least_cost_schedule()
        # Total cost includes the schedule-independent transfer charges
        # (zero in the paper's single-cloud setting, non-zero in the
        # multi-cloud extension) so the budget comparison stays honest.
        cost = problem.cost_of(current)
        steps: list[ReschedulingStep] = []
        evaluation = self._evaluate(problem, current)

        while budget - cost > _EPS:
            extra = budget - cost
            if self.candidate_scope == "critical":
                candidates = evaluation.analysis.critical_schedulable()
            else:
                candidates = problem.workflow.schedulable_names

            # Alg. 1, lines 11-13: the largest affordable time decrease,
            # ties broken by the smallest cost increase (then module/type
            # order for full determinism).
            best: tuple[float, float, str, int] | None = None
            for module in candidates:
                i = row[module]
                j_cur = current[module]
                t_old = te[i, j_cur]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    dt = t_old - te[i, j]
                    dc = ce[i, j] - c_old
                    if dt <= _EPS or dc > extra + _EPS:
                        continue
                    if best is None or dt > best[0] + _EPS or (
                        abs(dt - best[0]) <= _EPS and dc < best[1] - _EPS
                    ):
                        best = (dt, dc, module, j)

            if best is None:
                break

            dt, dc, module, j = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=dt,
                    cost_increase=dc,
                    makespan_after=0.0,  # patched below after evaluation
                    cost_after=cost + dc,
                )
            )
            current = current.with_assignment(module, j)
            cost += dc
            evaluation = self._evaluate(problem, current)
            steps[-1] = ReschedulingStep(
                module=module,
                from_type=steps[-1].from_type,
                to_type=j,
                time_decrease=dt,
                cost_increase=dc,
                makespan_after=evaluation.makespan,
                cost_after=cost,
            )

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps)},
        )

    def _evaluate(self, problem: MedCCProblem, schedule: Schedule):
        if self.transfer_aware:
            return problem.evaluate(schedule)
        return schedule.evaluate(problem.workflow, problem.matrices, None)
