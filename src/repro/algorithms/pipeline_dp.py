"""Exact solver for MED-CC-Pipeline via Pareto-frontier dynamic programming.

Section IV shows that MED-CC restricted to linear pipelines with free data
transfers ("MED-CC-Pipeline") *is* the Multiple-Choice Knapsack Problem:
the makespan is simply the sum of module execution times, so choosing one
VM type per module to minimize total time under a cost budget is MCKP with
weights :math:`C(E_{i,j})` and profits :math:`K - T(E_{i,j})`.

This module solves that special case exactly with the classic
dominance-pruned DP over (cost, time) states — the same engine as
:func:`repro.mckp.dp.solve_pareto` but phrased on a problem instance.  It
is used to cross-check Critical-Greedy on pipelines and to verify the
Theorem 1 reduction computationally.

The DP state count is bounded by the number of non-dominated
(cost, time) pairs per prefix, which stays small for the paper's instance
sizes; ``max_states`` guards pathological blow-ups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError, ScheduleError

__all__ = ["is_pipeline", "PipelineDPScheduler"]

_EPS = 1e-9


def is_pipeline(problem: MedCCProblem) -> bool:
    """Whether the workflow is a linear chain (every degree ≤ 1)."""
    graph = problem.workflow.graph
    return all(
        graph.in_degree(n) <= 1 and graph.out_degree(n) <= 1
        for n in graph.nodes
    )


@register_scheduler("pipeline-dp")
@dataclass
class PipelineDPScheduler:
    """Exact DP for linear pipelines (MED-CC-Pipeline ≡ MCKP).

    Raises
    ------
    ScheduleError
        If the workflow is not a linear pipeline.
    ExperimentError
        If the Pareto frontier exceeds ``max_states`` (instance too rich
        for exact DP; fall back to :class:`ExhaustiveScheduler`).
    """

    max_states: int = 2_000_000
    name = "pipeline-dp"

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Return the MED-optimal pipeline schedule within ``budget``."""
        if not is_pipeline(problem):
            raise ScheduleError(
                "pipeline-dp requires a linear pipeline workflow; use the "
                "exhaustive scheduler for general DAGs"
            )
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        modules = matrices.module_names
        m, n = matrices.num_modules, matrices.num_types
        # The schedule-independent transfer charges shrink the VM budget.
        vm_budget = budget - problem.transfer_cost_total

        min_cost = ce.min(axis=1)
        suffix_min_cost = np.concatenate([np.cumsum(min_cost[::-1])[::-1], [0.0]])

        # Frontier states: (cost, time, assignment-tuple), kept Pareto
        # non-dominated and cost-feasible w.r.t. the completion bound.
        frontier: list[tuple[float, float, tuple[int, ...]]] = [(0.0, 0.0, ())]
        for i in range(m):
            expanded: list[tuple[float, float, tuple[int, ...]]] = []
            bound = vm_budget - suffix_min_cost[i + 1] + _EPS
            for cost, time, assign in frontier:
                for j in range(n):
                    new_cost = cost + ce[i, j]
                    if new_cost > bound:
                        continue
                    expanded.append((new_cost, time + te[i, j], assign + (j,)))
            if not expanded:
                raise ExperimentError(
                    "pipeline DP frontier emptied despite a feasible budget; "
                    "this indicates an internal bound error"
                )
            expanded.sort(key=lambda s: (s[0], s[1]))
            pruned: list[tuple[float, float, tuple[int, ...]]] = []
            best_time = float("inf")
            for state in expanded:
                if state[1] < best_time - _EPS:
                    pruned.append(state)
                    best_time = state[1]
            frontier = pruned
            if len(frontier) > self.max_states:
                raise ExperimentError(
                    f"pipeline DP frontier exceeded max_states={self.max_states}"
                )

        best = min(frontier, key=lambda s: (s[1], s[0]))
        schedule = Schedule(dict(zip(modules, best[2])))
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
            extras={"frontier_size": len(frontier)},
        )
