"""Critical-Greedy with makespan lookahead (extension variant).

The paper's Algorithm 1 selects, among critical modules, the reschedule
with the largest *local* execution-time decrease ΔT.  A natural refinement
— in the spirit of the paper's future work on "a higher level of accuracy"
— evaluates each affordable candidate's *actual* makespan after the move
(one O(m + |Ew|) critical-path sweep per candidate) and picks the move
with the largest **makespan decrease per unit of cost** (free moves are
taken eagerly; among equal-efficiency moves the larger absolute decrease
wins).  The efficiency normalization counters the two failure modes plain
CG exhibits on heterogeneous instances: overpaying for a jump that buys no
more makespan than a cheaper intermediate type, and stranding budget that
could have funded several cheaper critical upgrades.

A single-step lookahead cannot be uniformly dominant on an NP-hard
problem (on a small fraction of instances the plain ΔT rule happens to
land better), so the scheduler is a two-arm **portfolio**: it runs both
the efficiency-lookahead pass and plain Critical-Greedy and returns the
better schedule.  That makes it never worse than plain CG by
construction — asserted by the test suite — while fixing plain CG's WRF
overspend at budget 174.9 and gaining ~1–2% on random heterogeneous
instances.

Cost: one CP evaluation per (critical module × type) candidate per
iteration, i.e. ~n× the work of plain CG per iteration — still polynomial
and fast at the paper's scales.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule

__all__ = ["LookaheadCriticalGreedyScheduler"]

_EPS = 1e-9


@register_scheduler("critical-greedy-lookahead")
@dataclass
class LookaheadCriticalGreedyScheduler:
    """Portfolio of efficiency-lookahead CG and plain CG (best of both)."""

    name = "critical-greedy-lookahead"

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Best of the lookahead pass and plain CG (see module docstring)."""
        lookahead = self._solve_lookahead(problem, budget)
        plain = CriticalGreedyScheduler().solve(problem, budget)
        if plain.med < lookahead.med - _EPS:
            return SchedulerResult(
                algorithm=self.name,
                schedule=plain.schedule,
                evaluation=plain.evaluation,
                budget=budget,
                steps=plain.steps,
                extras={**dict(plain.extras), "winning_arm": "plain"},
            )
        return lookahead

    def _solve_lookahead(
        self, problem: MedCCProblem, budget: float
    ) -> SchedulerResult:
        """Greedy makespan-lookahead rescheduling from the least-cost start."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current: Schedule = problem.least_cost_schedule()
        cost = problem.cost_of(current)
        evaluation = problem.evaluate(current)
        steps: list[ReschedulingStep] = []

        while budget - cost > _EPS:
            extra = budget - cost
            candidates = evaluation.analysis.critical_schedulable()

            # (efficiency, drop, makespan_after, dc, module, type, trial)
            best: tuple[float, float, float, float, str, int, Schedule] | None
            best = None
            for module in candidates:
                i = row[module]
                j_cur = current[module]
                t_old = te[i, j_cur]
                c_old = ce[i, j_cur]
                for j in range(matrices.num_types):
                    if j == j_cur:
                        continue
                    if t_old - te[i, j] <= _EPS:
                        continue
                    dc = ce[i, j] - c_old
                    if dc > extra + _EPS:
                        continue
                    trial = current.with_assignment(module, j)
                    makespan = problem.makespan_of(trial)
                    drop = evaluation.makespan - makespan
                    if drop <= _EPS:
                        continue  # lookahead: only makespan-improving moves
                    efficiency = float("inf") if dc <= _EPS else drop / dc
                    if (
                        best is None
                        or efficiency > best[0] + _EPS
                        or (
                            abs(efficiency - best[0]) <= _EPS
                            and drop > best[1] + _EPS
                        )
                    ):
                        best = (efficiency, drop, makespan, dc, module, j, trial)

            if best is None:
                break
            _, _, makespan, dc, module, j, trial = best
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=current[module],
                    to_type=j,
                    time_decrease=float(
                        te[row[module], current[module]] - te[row[module], j]
                    ),
                    cost_increase=dc,
                    makespan_after=makespan,
                    cost_after=cost + dc,
                )
            )
            current = trial
            cost += dc
            evaluation = problem.evaluate(current)

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps), "winning_arm": "lookahead"},
        )
