"""The LOSS family — repair an over-budget fastest/HEFT schedule.

LOSS (Sakellariou et al. 2007) is the mirror image of GAIN: it starts from
a makespan-optimized schedule (HEFT — equal to :math:`S_{fastest}` in the
one-to-one model, see :mod:`repro.algorithms.heft`) and, while the total
cost exceeds the budget, applies the reassignment with the **smallest
LossWeight**

    ``LossWeight = (T_new - T_old) / (C_old - C_new)``

i.e. the smallest execution-time penalty per unit of cost saved.  Variants
mirror the GAIN ones (see :mod:`repro.algorithms.gain` for the labelling
caveat):

* **LOSS1** — weights frozen against the initial schedule;
* **LOSS2** — the time penalty is the *makespan* increase;
* **LOSS3** — task-local time penalty, weights refreshed every iteration.

Zero-time-penalty downgrades (``T_new <= T_old`` with a cost saving) have
LossWeight 0 and are applied first in all variants.

LOSS is included as an extension baseline: the ICPP paper compares against
GAIN3 because both CG and GAIN start from the least-cost schedule, but
LOSS-style repair is the other canonical approach from the same source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import (
    ReschedulingStep,
    SchedulerResult,
    register_scheduler,
)
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["LossScheduler", "Loss1Scheduler", "Loss2Scheduler", "Loss3Scheduler"]

_EPS = 1e-9


@dataclass
class LossScheduler:
    """Shared engine for the LOSS variants (see module docstring)."""

    variant: int = 3
    name = "loss"

    def __post_init__(self) -> None:
        if self.variant not in (1, 2, 3):
            raise ConfigurationError(f"LOSS variant must be 1, 2 or 3, got {self.variant!r}")

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Downgrade from the fastest schedule until the budget is met."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index

        current = problem.fastest_schedule()
        # Includes schedule-independent transfer charges (multi-cloud).
        cost = problem.cost_of(current)
        evaluation = problem.evaluate(current)
        steps: list[ReschedulingStep] = []

        frozen: list[tuple[float, float, float, str, int]] | None = None
        if self.variant == 1:
            frozen = self._candidates(problem, current, evaluation)

        while cost > budget + _EPS:
            pool = frozen if frozen is not None else self._candidates(
                problem, current, evaluation
            )

            best: tuple[float, float, float, str, int] | None = None
            for cand in pool:
                weight, dt, saving, module, j = cand
                if saving <= _EPS:
                    continue
                if frozen is not None and current[module] == j:
                    continue
                if best is None or weight < best[0] - _EPS:
                    best = cand

            if best is None:
                # No cost-saving move left; the least-cost schedule is the
                # floor, and feasibility was checked, so this cannot happen
                # unless the variant-1 frozen pool ran dry — fall back to
                # refreshed candidates.
                if frozen is not None:
                    frozen = None
                    continue
                break

            _, dt, saving, module, j = best
            from_type = current[module]
            current = current.with_assignment(module, j)
            cost += ce[row[module], j] - ce[row[module], from_type]
            evaluation = problem.evaluate(current)
            steps.append(
                ReschedulingStep(
                    module=module,
                    from_type=from_type,
                    to_type=j,
                    time_decrease=-dt,
                    cost_increase=-saving,
                    makespan_after=evaluation.makespan,
                    cost_after=cost,
                )
            )
            if frozen is not None:
                frozen = [c for c in frozen if c[3] != module]

        return SchedulerResult(
            algorithm=self.name,
            schedule=current,
            evaluation=evaluation,
            budget=budget,
            steps=tuple(steps),
            extras={"iterations": len(steps), "variant": self.variant},
        )

    # ------------------------------------------------------------------ #

    def _candidates(
        self, problem: MedCCProblem, current: Schedule, evaluation
    ) -> list[tuple[float, float, float, str, int]]:
        """All cost-saving downgrades with their LossWeights.

        Returns ``(weight, time_penalty, cost_saving, module, type_index)``
        tuples; only moves that strictly reduce cost qualify.
        """
        matrices = problem.matrices
        te, ce = matrices.te, matrices.ce
        row = matrices.row_index
        out: list[tuple[float, float, float, str, int]] = []
        for module in problem.workflow.schedulable_names:
            i = row[module]
            j_cur = current[module]
            t_old = te[i, j_cur]
            c_old = ce[i, j_cur]
            for j in range(matrices.num_types):
                if j == j_cur:
                    continue
                saving = c_old - ce[i, j]
                if saving <= _EPS:
                    continue
                dt_local = te[i, j] - t_old
                if self.variant == 2:
                    trial = current.with_assignment(module, j)
                    dt = problem.makespan_of(trial) - evaluation.makespan
                else:
                    dt = dt_local
                weight = max(dt, 0.0) / saving
                out.append((weight, dt, saving, module, j))
        return out


@register_scheduler("loss1")
class Loss1Scheduler(LossScheduler):
    """LOSS with weights frozen against the initial fastest schedule."""

    name = "loss1"

    def __init__(self) -> None:
        super().__init__(variant=1)


@register_scheduler("loss2")
class Loss2Scheduler(LossScheduler):
    """LOSS weighting the *makespan* increase per unit cost saved."""

    name = "loss2"

    def __init__(self) -> None:
        super().__init__(variant=2)


@register_scheduler("loss3")
class Loss3Scheduler(LossScheduler):
    """LOSS3 — task-local time penalty, weights refreshed every iteration."""

    name = "loss3"

    def __init__(self) -> None:
        super().__init__(variant=3)
