"""Simulated-annealing metaheuristic for MED-CC (extension baseline).

Budget-constrained DAG scheduling papers frequently compare greedy
heuristics against metaheuristics (the paper's survey cites a genetic
algorithm for the utility-grid variant, Yu 2006 [13]).  This module adds a
classic simulated-annealing search over type assignments so users can
trade runtime for quality beyond the greedy family:

* **state** — a feasible assignment (one type index per module);
* **move** — change one uniformly random module to a uniformly random
  different type; infeasible moves (over budget) are rejected outright;
* **energy** — the makespan (MED);
* **schedule** — geometric cooling from an initial temperature calibrated
  to the instance's makespan scale.

Deterministic under its seed.  Starts from Critical-Greedy's solution, so
it can only match or improve it (the incumbent is kept).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import SchedulerResult, register_scheduler
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

__all__ = ["AnnealingScheduler"]


@register_scheduler("annealing")
@dataclass
class AnnealingScheduler:
    """Simulated annealing over VM-type assignments.

    Parameters
    ----------
    iterations:
        Number of proposed moves.
    initial_temperature_factor:
        Initial temperature as a fraction of the starting makespan (a
        scale-free calibration so acceptance behaves consistently across
        instances).
    cooling:
        Geometric cooling factor per iteration (0 < cooling < 1).
    seed:
        RNG seed; runs are reproducible.
    restarts:
        Independent annealing chains; the best incumbent wins.
    """

    iterations: int = 2000
    initial_temperature_factor: float = 0.2
    cooling: float = 0.998
    seed: int = 0
    restarts: int = 1
    name = "annealing"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {self.iterations}")
        if not 0.0 < self.cooling < 1.0:
            raise ConfigurationError(f"cooling must be in (0, 1), got {self.cooling}")
        if self.initial_temperature_factor <= 0:
            raise ConfigurationError("initial temperature factor must be positive")
        if self.restarts < 1:
            raise ConfigurationError(f"restarts must be >= 1, got {self.restarts}")

    def solve(self, problem: MedCCProblem, budget: float) -> SchedulerResult:
        """Anneal from the Critical-Greedy incumbent within ``budget``."""
        problem.check_feasible(budget)
        matrices = problem.matrices
        modules = matrices.module_names
        m, n = matrices.num_modules, matrices.num_types
        ce = matrices.ce
        vm_budget = budget - problem.transfer_cost_total

        seed_result = CriticalGreedyScheduler().solve(problem, budget)
        best_assign = [seed_result.schedule[name] for name in modules]
        best_med = seed_result.med

        if m == 0 or n <= 1:
            return SchedulerResult(
                algorithm=self.name,
                schedule=seed_result.schedule,
                evaluation=seed_result.evaluation,
                budget=budget,
                extras={"accepted_moves": 0, "seed_med": seed_result.med},
            )

        rng = np.random.default_rng(self.seed)
        rows = np.arange(m)
        accepted_total = 0

        def med_of(assign: list[int]) -> float:
            schedule = Schedule(dict(zip(modules, assign)))
            return problem.makespan_of(schedule)

        for _ in range(self.restarts):
            assign = list(best_assign)
            cost = float(ce[rows, assign].sum())
            med = med_of(assign)
            temperature = max(med, 1e-9) * self.initial_temperature_factor

            for _ in range(self.iterations):
                i = int(rng.integers(0, m))
                j_new = int(rng.integers(0, n - 1))
                if j_new >= assign[i]:
                    j_new += 1  # uniform over the other n-1 types
                delta_cost = float(ce[i, j_new] - ce[i, assign[i]])
                if cost + delta_cost > vm_budget + 1e-9:
                    temperature *= self.cooling
                    continue
                old_j = assign[i]
                assign[i] = j_new
                new_med = med_of(assign)
                delta = new_med - med
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    med = new_med
                    cost += delta_cost
                    accepted_total += 1
                    if med < best_med - 1e-12:
                        best_med = med
                        best_assign = list(assign)
                else:
                    assign[i] = old_j
                temperature *= self.cooling

        schedule = Schedule(dict(zip(modules, best_assign)))
        return SchedulerResult(
            algorithm=self.name,
            schedule=schedule,
            evaluation=problem.evaluate(schedule),
            budget=budget,
            extras={
                "accepted_moves": accepted_total,
                "seed_med": seed_result.med,
                "iterations": self.iterations * self.restarts,
            },
        )
