"""Module aggregation: contract groups of tasks into aggregate modules.

The paper's task-graph layer assumes "scientific workflows that have been
preprocessed by an appropriate clustering technique … such that a group of
modules in the original workflow are bundled together as one aggregate
module" (§III-B), and its WRF experiment performs exactly such a grouping
by hand (Fig. 13 → Fig. 14).  :func:`merge_modules` is that operation:

* the aggregate module's workload is the **sum** of its members'
  workloads (the members run sequentially on the aggregate's VM);
* edges between two groups are unioned, with data sizes **summed**
  (everything the members exchanged still crosses the boundary);
* edges internal to a group disappear (that is the point of clustering —
  intra-group transfers become local);
* the contraction must leave a DAG: merging groups that an outside path
  re-enters would create a cycle and is rejected.

Fixed-duration (entry/exit) modules cannot be merged with computing
modules; a group of only fixed modules merges into a fixed module whose
duration is the members' sum.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.module import DataDependency, Module
from repro.core.workflow import Workflow
from repro.exceptions import WorkflowValidationError

__all__ = ["merge_modules"]


def merge_modules(
    workflow: Workflow,
    groups: Mapping[str, Sequence[str]],
    *,
    name: str | None = None,
) -> Workflow:
    """Contract each named group of modules into one aggregate module.

    Parameters
    ----------
    workflow:
        The original task graph.
    groups:
        Mapping of aggregate-module name → member module names.  Members
        must exist, groups must be disjoint, and aggregate names must not
        collide with surviving module names.  Modules in no group survive
        unchanged.
    name:
        Name of the resulting workflow (default: ``"<original>-clustered"``).

    Raises
    ------
    WorkflowValidationError
        On unknown members, overlapping groups, name collisions, mixed
        fixed/computing groups, or contractions that would create a cycle.
    """
    member_of: dict[str, str] = {}
    for agg_name, members in groups.items():
        if not members:
            raise WorkflowValidationError(f"group {agg_name!r} is empty")
        for member in members:
            if member not in workflow:
                raise WorkflowValidationError(
                    f"group {agg_name!r} references unknown module {member!r}"
                )
            if member in member_of:
                raise WorkflowValidationError(
                    f"module {member!r} appears in groups "
                    f"{member_of[member]!r} and {agg_name!r}"
                )
            member_of[member] = agg_name

    survivors = [n for n in workflow.module_names if n not in member_of]
    for agg_name in groups:
        if agg_name in survivors:
            raise WorkflowValidationError(
                f"aggregate name {agg_name!r} collides with a surviving module"
            )

    def target(node: str) -> str:
        return member_of.get(node, node)

    modules: list[Module] = []
    for node in survivors:
        modules.append(workflow.module(node))
    for agg_name, members in groups.items():
        member_modules = [workflow.module(m) for m in members]
        fixed = [m for m in member_modules if m.is_fixed]
        computing = [m for m in member_modules if not m.is_fixed]
        if fixed and computing:
            raise WorkflowValidationError(
                f"group {agg_name!r} mixes fixed and computing modules"
            )
        if fixed:
            modules.append(
                Module(
                    agg_name,
                    fixed_time=sum(m.fixed_time or 0.0 for m in fixed),
                )
            )
        else:
            modules.append(
                Module(
                    agg_name,
                    workload=sum(m.workload for m in computing),
                    metadata=(("members", tuple(members)),),
                )
            )

    edge_sizes: dict[tuple[str, str], float] = {}
    for edge in workflow.edges():
        src, dst = target(edge.src), target(edge.dst)
        if src == dst:
            continue  # internal to a group: transfer becomes local
        edge_sizes[(src, dst)] = edge_sizes.get((src, dst), 0.0) + edge.data_size

    edges = [
        DataDependency(src, dst, data_size=size)
        for (src, dst), size in sorted(edge_sizes.items())
    ]
    try:
        return Workflow(
            modules, edges, name=name or f"{workflow.name}-clustered"
        )
    except WorkflowValidationError as exc:
        raise WorkflowValidationError(
            f"contraction is invalid (likely a cycle through a group): {exc}"
        ) from exc
