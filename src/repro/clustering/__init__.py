"""Workflow clustering: the preprocessing the paper's task graphs assume.

Section III-B: "we consider scientific workflows that have been
preprocessed by an appropriate clustering technique … such that a group of
modules in the original workflow are bundled together as one aggregate
module in the resulted task graph."  This subpackage provides that
preprocessing: explicit group contraction (:func:`merge_modules`) and the
two classic automatic strategies (linear and horizontal clustering),
including the Fig. 13 → Fig. 14 WRF grouping as a tested instance.
"""

from repro.clustering.merge import merge_modules
from repro.clustering.strategies import (
    apply_horizontal_clustering,
    apply_linear_clustering,
    horizontal_clusters,
    linear_clusters,
)

__all__ = [
    "merge_modules",
    "linear_clusters",
    "apply_linear_clustering",
    "horizontal_clusters",
    "apply_horizontal_clustering",
]
