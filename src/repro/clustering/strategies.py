"""Automatic clustering strategies: linear (vertical) and horizontal.

The paper cites Pegasus-style task clustering ([21]–[24]) as the
preprocessing that produces its aggregate task graphs.  Two classic
strategies are implemented on top of :func:`repro.clustering.merge.merge_modules`:

* **linear clustering** (:func:`linear_clusters`) — repeatedly bundle a
  module with its sole successor when that successor has no other
  predecessor.  This is the chain-collapsing that eliminates sequential
  data transfers (the dominant effect the paper relies on when it argues
  inter-module transfer time is negligible after clustering);
* **horizontal clustering** (:func:`horizontal_clusters`) — bundle
  same-level (ASAP-layer) modules into at most ``k`` groups per level,
  the Pegasus "horizontal clustering" used to tame very wide workflows.

Both return a group mapping consumable by :func:`merge_modules` (and a
convenience ``apply``-style wrapper each).
"""

from __future__ import annotations

from repro.clustering.merge import merge_modules
from repro.core.workflow import Workflow
from repro.exceptions import WorkflowValidationError

__all__ = [
    "linear_clusters",
    "apply_linear_clustering",
    "horizontal_clusters",
    "apply_horizontal_clustering",
]


def linear_clusters(workflow: Workflow) -> dict[str, list[str]]:
    """Maximal single-entry/single-exit chains of computing modules.

    A chain grows along edges ``u -> v`` where ``u`` has exactly one
    successor and ``v`` exactly one predecessor (both computing modules),
    so merging never changes what can run in parallel.  Returns only the
    non-trivial chains (length ≥ 2), named ``chain0``, ``chain1``, … in
    topological order of their heads.
    """
    graph = workflow.graph
    schedulable = set(workflow.schedulable_names)

    def chainable(u: str, v: str) -> bool:
        return (
            u in schedulable
            and v in schedulable
            and graph.out_degree(u) == 1
            and graph.in_degree(v) == 1
        )

    in_chain: set[str] = set()
    chains: list[list[str]] = []
    for node in workflow.topological_order():
        if node not in schedulable or node in in_chain:
            continue
        # Only start a chain at a head (no chainable predecessor).
        preds = list(graph.predecessors(node))
        if len(preds) == 1 and chainable(preds[0], node):
            continue
        chain = [node]
        cursor = node
        while True:
            succs = list(graph.successors(cursor))
            if len(succs) == 1 and chainable(cursor, succs[0]):
                cursor = succs[0]
                chain.append(cursor)
            else:
                break
        if len(chain) >= 2:
            chains.append(chain)
            in_chain.update(chain)
    return {f"chain{i}": chain for i, chain in enumerate(chains)}


def apply_linear_clustering(workflow: Workflow) -> Workflow:
    """Collapse all maximal chains; identity when none exist."""
    groups = linear_clusters(workflow)
    if not groups:
        return workflow
    return merge_modules(workflow, groups, name=f"{workflow.name}-linear")


def horizontal_clusters(
    workflow: Workflow, *, max_groups_per_level: int
) -> dict[str, list[str]]:
    """Bundle same-ASAP-level computing modules into ≤ k groups per level.

    Modules are dealt round-robin by workload (largest first) so group
    workloads balance — merged same-level modules execute sequentially on
    one VM, and an unbalanced split would stretch the critical path more
    than necessary.
    """
    if max_groups_per_level < 1:
        raise WorkflowValidationError("need at least one group per level")
    schedulable = set(workflow.schedulable_names)
    groups: dict[str, list[str]] = {}
    for level, layer in enumerate(workflow.layers()):
        members = [n for n in layer if n in schedulable]
        if len(members) <= 1:
            continue
        k = min(max_groups_per_level, len(members))
        buckets: list[list[str]] = [[] for _ in range(k)]
        loads = [0.0] * k
        for node in sorted(
            members, key=lambda n: -workflow.module(n).workload
        ):
            target = loads.index(min(loads))
            buckets[target].append(node)
            loads[target] += workflow.module(node).workload
        for b, bucket in enumerate(buckets):
            if len(bucket) >= 2:
                groups[f"L{level}g{b}"] = bucket
    return groups


def apply_horizontal_clustering(
    workflow: Workflow, *, max_groups_per_level: int
) -> Workflow:
    """Apply horizontal clustering; identity when nothing merges.

    Raises
    ------
    WorkflowValidationError
        If a merge would create a cycle (same-level merging cannot, since
        no path connects same-ASAP-level modules, so this only signals a
        caller-supplied graph inconsistency).
    """
    groups = horizontal_clusters(
        workflow, max_groups_per_level=max_groups_per_level
    )
    if not groups:
        return workflow
    return merge_modules(workflow, groups, name=f"{workflow.name}-horizontal")
