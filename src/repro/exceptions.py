"""Exception hierarchy for the MED-CC reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of ``repro`` with a single ``except`` clause
while still being able to discriminate the failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "WorkflowValidationError",
    "CatalogError",
    "ConfigurationError",
    "ScheduleError",
    "InfeasibleBudgetError",
    "SimulationError",
    "ExperimentError",
    "LintError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "TransientServiceError",
    "CircuitOpenError",
    "LiveWorkflowError",
    "LiveLogCorruptionError",
    "StaleEpochError",
    "UnknownWorkflowError",
    "EventConflictError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class WorkflowValidationError(ReproError):
    """A workflow graph violates a structural invariant.

    Raised when a task graph is not a DAG, has no entry/exit module,
    references unknown modules, carries negative workloads or data sizes,
    or is otherwise unusable by the scheduling and simulation layers.
    """


class CatalogError(ReproError):
    """A VM-type catalog is empty, duplicated, or has invalid attributes."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid parameters.

    Raised by algorithm constructors (``__post_init__`` validation of
    variants, iteration counts, cooling rates, …) and other configurable
    components.  Also subclasses :class:`ValueError` so callers that caught
    the built-in exception these sites historically raised keep working.
    """


class ScheduleError(ReproError):
    """A schedule is structurally invalid for its problem instance.

    Examples: a module mapped to an unknown VM type, a schedule that does
    not cover every schedulable module, or evaluation of a schedule against
    a workflow it was not built for.
    """


class InfeasibleBudgetError(ReproError):
    """The user budget is below the least-cost schedule's total cost.

    Mirrors the error return of Algorithm 1 in the paper (line 5): when
    ``B < Cmin`` there exists no feasible schedule at all.

    Attributes
    ----------
    budget:
        The requested budget.
    cmin:
        The minimum achievable total cost (cost of the least-cost schedule).
    """

    def __init__(self, budget: float, cmin: float) -> None:
        super().__init__(
            f"budget {budget:g} is below the least-cost schedule cost {cmin:g}; "
            "no feasible schedule exists"
        )
        self.budget = float(budget)
        self.cmin = float(cmin)


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment harness was misconfigured or failed to run."""


class LintError(ReproError):
    """Static analysis found error-severity diagnostics.

    Raised by the :mod:`repro.lint` validation hook (see
    :func:`repro.lint.check_scheduler_result`) when a scheduler result
    violates a machine-checked invariant — e.g. an over-budget schedule or
    an assignment referencing an unknown VM type.

    Attributes
    ----------
    diagnostics:
        The offending :class:`repro.lint.Diagnostic` records (error
        severity only).
    """

    def __init__(self, message: str, diagnostics: tuple[object, ...] = ()) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer.

    Covers request decoding failures, malformed payload versions, and the
    executor/HTTP failure modes below.
    """


class ServiceOverloadedError(ServiceError):
    """The job executor rejected the request (queue full, or draining).

    This is the service's backpressure signal: the HTTP front-end maps it
    to ``503 Service Unavailable`` so clients can retry with backoff
    instead of piling work onto a saturated worker pool.  A node that has
    begun a graceful drain rejects new submissions with the same error
    (``reason`` carries the drain message) so routers fail over to a
    healthy replica.

    Attributes
    ----------
    queue_size:
        Capacity of the bounded submission queue that rejected the job.
    """

    def __init__(self, queue_size: int, *, reason: str | None = None) -> None:
        super().__init__(
            reason
            or f"scheduling service is overloaded: submission queue "
            f"(capacity {queue_size}) is full"
        )
        self.queue_size = int(queue_size)


class ServiceTimeoutError(ServiceError):
    """A submitted job exceeded its per-job timeout.

    The job's future resolves with this error; in the thread-pool executor
    the underlying solve is not preempted (its result is discarded), which
    the HTTP front-end reports as ``504 Gateway Timeout``.

    Attributes
    ----------
    timeout:
        The per-job timeout, in seconds.
    """

    def __init__(self, timeout: float) -> None:
        super().__init__(f"job did not finish within its {timeout:g}s timeout")
        self.timeout = float(timeout)


class TransientServiceError(ServiceError):
    """A retryable service-layer failure.

    Raised for failures that a healthy retry (possibly against a different
    node) can be expected to mask: transport faults (connection refused,
    reset, truncated response), upstream 5xx replies, a node that is
    draining, or an open circuit breaker.  The
    :class:`repro.service.resilience.RetryPolicy` retries exactly this
    exception type; everything else propagates immediately.

    Attributes
    ----------
    retry_after:
        Server-provided hint (the ``Retry-After`` header, in seconds) for
        the minimum delay before the next attempt, or ``None``.
    status:
        The HTTP status that produced the failure, when one was received.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        status: int | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = None if retry_after is None else float(retry_after)
        self.status = None if status is None else int(status)


class LiveWorkflowError(ServiceError):
    """A live-workflow request is malformed or semantically invalid.

    The base class for the stateful ``/v1/workflows`` endpoints' client
    errors; the HTTP front-end maps it (like any :class:`ServiceError`)
    to ``400 Bad Request`` with a structured body, never a 500.
    """


class LiveLogCorruptionError(ServiceError):
    """A live-workflow durability log is unreadable or inconsistent.

    Raised when ``<live_dir>/<id>.jsonl`` has a corrupt middle record, a
    missing/unparseable registration record, or replay of its events
    contradicts itself.  Deliberately *not* a :class:`LiveWorkflowError`:
    the fault is server-side state, never the client's payload, so the
    HTTP front-end maps it to ``500`` with error kind ``internal`` — a
    node-fault signal the shard router fails over on instead of passing
    through as a 400.

    Attributes
    ----------
    workflow_id:
        The workflow whose log is corrupt.
    """

    def __init__(self, message: str, *, workflow_id: str) -> None:
        super().__init__(message)
        self.workflow_id = str(workflow_id)


class StaleEpochError(ServiceError):
    """A live-log append was attempted under a superseded writer epoch.

    Raised internally by the :class:`repro.live.store.LiveWorkflowManager`
    write path when the durable log records a fence with a higher epoch
    than the appending node's lease — i.e. the shard moved to a peer that
    claimed the workflow.  The manager handles it by catching up from the
    log and re-claiming a fresh epoch before answering, so it normally
    never crosses the HTTP boundary; it is public so fencing tests (and
    embedders driving the store directly) can assert on the rejection.

    Attributes
    ----------
    workflow_id:
        The fenced workflow.
    epoch:
        The appender's (stale) epoch.
    observed:
        The higher epoch found in the log.
    """

    def __init__(self, workflow_id: str, *, epoch: int, observed: int) -> None:
        super().__init__(
            f"writer epoch {epoch} for workflow {workflow_id!r} is stale: "
            f"the log records epoch {observed}"
        )
        self.workflow_id = str(workflow_id)
        self.epoch = int(epoch)
        self.observed = int(observed)


class UnknownWorkflowError(LiveWorkflowError):
    """An event or status request referenced an unregistered workflow.

    Mapped to ``404 Not Found`` with error kind ``not_found`` so routers
    can distinguish "wrong node / not yet registered" from a malformed
    payload and fail over instead of giving up.

    Attributes
    ----------
    workflow_id:
        The id the request referenced.
    """

    def __init__(self, workflow_id: str) -> None:
        super().__init__(f"unknown workflow {workflow_id!r}")
        self.workflow_id = str(workflow_id)


class EventConflictError(LiveWorkflowError):
    """An event is out of order or contradicts recorded history.

    Raised for sequence-number gaps, replays whose payload differs from
    the recorded event at the same sequence number, invalid module state
    transitions (e.g. completing a module twice), and re-registration of
    an existing workflow id with a different plan.  Mapped to ``409
    Conflict`` with error kind ``conflict``: the condition is permanent
    — retrying the identical request cannot succeed — so clients must
    not treat it as transient.

    Attributes
    ----------
    workflow_id:
        The workflow the conflicting request addressed.
    seq:
        The event sequence number involved, when applicable.
    """

    def __init__(
        self, message: str, *, workflow_id: str, seq: int | None = None
    ) -> None:
        super().__init__(message)
        self.workflow_id = str(workflow_id)
        self.seq = None if seq is None else int(seq)


class CircuitOpenError(TransientServiceError):
    """Every candidate node's circuit breaker is open; the call was shed.

    The breaker trips after consecutive failures against a node and
    half-opens again after ``reset_timeout``; until then calls fail fast
    here instead of burning a timeout against a node known to be down.

    Attributes
    ----------
    node:
        Name of the (last) node whose breaker rejected the call.
    """

    def __init__(self, node: str, *, retry_after: float | None = None) -> None:
        super().__init__(
            f"circuit breaker for node {node!r} is open; call rejected",
            retry_after=retry_after,
        )
        self.node = str(node)
