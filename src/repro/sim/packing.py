"""VM-reuse packing (the paper's Section V-B discussion).

After a schedule is produced, "we can explore the possibility of VM
reuse": modules mapped to the same VM type whose executions cannot
overlap may share one VM instance, so "the number of actual VMs needed is
generally less than the number of workflow modules".  The paper reuses
VMs between "adjacent modules with execution precedence constraints … if
they are mapped to the same type" (Section VI-C3).

Two packing modes are provided:

* ``"adjacent"`` — the paper's criterion: a module may join a VM whose
  last occupant is one of its (transitive) predecessors.  Safe under any
  later schedule perturbation, because the dependency itself forces
  serialization.
* ``"interval"`` — classic interval partitioning on the schedule's
  est/eft times: a module may join any same-type VM that is idle by the
  module's earliest start.  Packs tighter but relies on the computed
  timeline.

Packing never changes the makespan (a reused VM is only given work it
could not have run concurrently anyway); it changes the *bill*, since a
shared lease rounds up once instead of once per module — quantified by
:meth:`VMPlan.billed_cost` and the ``bench_vm_reuse`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.billing import BillingPolicy
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError

__all__ = ["VMAllocation", "VMPlan", "pack_schedule"]

_EPS = 1e-9


@dataclass(frozen=True)
class VMAllocation:
    """One shared VM: its type and the modules it runs, in start order."""

    vm_type_index: int
    vm_type_name: str
    modules: tuple[str, ...]
    lease_start: float
    lease_end: float

    @property
    def lease_duration(self) -> float:
        """Span the VM must be kept alive (first start to last finish)."""
        return self.lease_end - self.lease_start


@dataclass(frozen=True)
class VMPlan:
    """A complete packing: every module placed on exactly one VM."""

    allocations: tuple[VMAllocation, ...]
    mode: str

    @property
    def num_vms(self) -> int:
        """Number of VM instances the plan provisions."""
        return len(self.allocations)

    def vm_of(self, module: str) -> VMAllocation:
        """The allocation hosting a given module."""
        for alloc in self.allocations:
            if module in alloc.modules:
                return alloc
        raise ScheduleError(f"module {module!r} is not in this VM plan")

    def billed_cost(self, problem: MedCCProblem, billing: BillingPolicy) -> float:
        """Total bill when each allocation is one lease (round-up once)."""
        total = 0.0
        for alloc in self.allocations:
            vt = problem.catalog[alloc.vm_type_index]
            total += billing.billed_units(alloc.lease_duration) * vt.rate
            total += vt.startup_cost
        return total


def pack_schedule(
    problem: MedCCProblem,
    schedule: Schedule,
    *,
    mode: str = "adjacent",
    cost_aware: bool = True,
) -> VMPlan:
    """Pack a schedule's modules onto shared VMs (see module docstring).

    Parameters
    ----------
    mode:
        ``"adjacent"`` (paper's criterion, default) or ``"interval"``.
    cost_aware:
        When true (default), a module only joins an existing VM if doing
        so does not increase the bill: a shared lease pays for idle time
        between chained modules, so chaining across a large gap can cost
        *more* than two separate leases.  With ``cost_aware=False`` the
        packing minimizes VM count regardless of idle-time billing (useful
        when instance count, not cost, is the constrained resource).

    Returns
    -------
    VMPlan
        Deterministic packing; modules appear in earliest-start order on
        each VM.
    """
    if mode not in ("adjacent", "interval"):
        raise ScheduleError(f"unknown packing mode {mode!r}")

    evaluation = problem.evaluate(schedule)
    est, eft = evaluation.analysis.est, evaluation.analysis.eft
    workflow = problem.workflow
    billing = problem.billing

    if mode == "adjacent":
        # Transitive reachability: module b may follow a on the same VM iff
        # a precedes b in the DAG (the dependency enforces serialization).
        closure = nx.transitive_closure_dag(workflow.graph)

    # Chains: list of (type_index, module_list); modules processed in
    # earliest-start order so each chain grows monotonically in time.
    order = sorted(
        problem.matrices.module_names, key=lambda m: (est[m], eft[m], m)
    )
    chains: list[list[str]] = []
    chain_type: list[int] = []

    for module in order:
        j = schedule[module]
        best_chain = -1
        best_idle = float("inf")
        for idx, chain in enumerate(chains):
            if chain_type[idx] != j:
                continue
            last = chain[-1]
            if eft[last] > est[module] + _EPS:
                continue  # would overlap
            if mode == "adjacent" and not closure.has_edge(last, module):
                continue
            if cost_aware:
                # Joining replaces two leases (chain span + module span)
                # with one merged span that also bills the idle gap.
                merged = billing.billed_units(eft[module] - est[chain[0]])
                separate = billing.billed_units(
                    eft[last] - est[chain[0]]
                ) + billing.billed_units(eft[module] - est[module])
                if merged > separate + _EPS:
                    continue
            idle = est[module] - eft[last]
            if idle < best_idle - _EPS:
                best_idle = idle
                best_chain = idx
        if best_chain >= 0:
            chains[best_chain].append(module)
        else:
            chains.append([module])
            chain_type.append(j)

    type_names = problem.catalog.names
    allocations = tuple(
        VMAllocation(
            vm_type_index=chain_type[idx],
            vm_type_name=type_names[chain_type[idx]],
            modules=tuple(chain),
            lease_start=est[chain[0]],
            lease_end=eft[chain[-1]],
        )
        for idx, chain in enumerate(chains)
    )
    return VMPlan(allocations=allocations, mode=mode)
