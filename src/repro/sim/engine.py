"""The discrete-event simulation engine (clock + event loop).

The engine owns the virtual clock and the event queue and exposes the two
operations every entity needs: ``at(delay, action)`` to schedule relative
work and ``run()`` to drive the loop.  Entities (VMs, brokers, links) are
plain Python objects holding a reference to the engine — no inheritance
hierarchy is imposed, keeping the core reusable.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.sim.events import Event, EventPriority, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Virtual clock + event loop.

    Parameters
    ----------
    max_events:
        Hard cap on processed events, guarding against accidental infinite
        event loops in user extensions.
    """

    __slots__ = ("_queue", "_now", "_processed", "max_events", "_running")

    def __init__(self, *, max_events: int = 10_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
        self.max_events = max_events
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = EventPriority.CONTROL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._now!r}"
            )
        return self._queue.push(
            max(time, self._now), action, priority=priority, label=label
        )

    def after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = EventPriority.CONTROL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, action, priority=priority, label=label)

    def run(self, *, until: float | None = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until + 1e-12:
                    self._now = until
                    break
                event = self._queue.pop()
                self._now = event.time
                self._processed += 1
                if self._processed > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely an event loop"
                    )
                event.action()
        finally:
            self._running = False
        return self._now
