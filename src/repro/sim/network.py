"""Virtual-network layer: per-edge data transfers over virtual links.

Implements the paper's virtual resource graph :math:`G'_c` (Section
III-B): every pair of VMs is connected by a virtual link with a bandwidth
and a latency, so a transfer of :math:`DS_{i,j}` units takes
:math:`DS_{i,j}/BW' + d'` (Eq. 5).  Two refinements beyond the analytical
model, both exercised by the ablation benches:

* **co-located transfers are free** — when producer and consumer run on
  the same VM the data never leaves the machine (this is how VM reuse
  removes transfer overhead in the paper's testbed runs);
* optional **link serialization** — a link object can be shared and
  serializes concurrent transfers FIFO, modelling a contended uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import TransferModel
from repro.exceptions import SimulationError

__all__ = ["VirtualLink", "NetworkFabric"]


@dataclass
class VirtualLink:
    """One virtual link with optional FIFO serialization.

    Attributes
    ----------
    model:
        Bandwidth/latency parameters (Eq. 5).
    serialize:
        When true, overlapping transfers queue behind each other instead
        of sharing the link at full speed each.
    """

    model: TransferModel
    serialize: bool = False
    _busy_until: float = 0.0

    def transfer_finish_time(self, now: float, data_size: float) -> float:
        """Completion time of a transfer starting (at the earliest) ``now``."""
        duration = self.model.transfer_time(data_size)
        start = now
        if self.serialize:
            start = max(now, self._busy_until)
        finish = start + duration
        if self.serialize:
            self._busy_until = finish
        return finish


class NetworkFabric:
    """The full mesh of virtual links between provisioned VMs.

    Links are created lazily per (src_vm, dst_vm) pair; co-located
    endpoints short-circuit to an instantaneous transfer.
    """

    def __init__(
        self, model: TransferModel, *, serialize_links: bool = False
    ) -> None:
        self.model = model
        self.serialize_links = serialize_links
        self._links: dict[tuple[str, str], VirtualLink] = {}

    def link(self, src_vm: str, dst_vm: str) -> VirtualLink:
        """The (lazily created) directed link between two VMs."""
        if src_vm == dst_vm:
            raise SimulationError("co-located transfers do not use a link")
        key = (src_vm, dst_vm)
        if key not in self._links:
            self._links[key] = VirtualLink(
                model=self.model, serialize=self.serialize_links
            )
        return self._links[key]

    def transfer_finish_time(
        self, now: float, src_vm: str, dst_vm: str, data_size: float
    ) -> float:
        """When a transfer between two VMs completes (free if co-located)."""
        if src_vm == dst_vm or data_size <= 0:
            return now
        return self.link(src_vm, dst_vm).transfer_finish_time(now, data_size)

    def transfer_cost(self, src_vm: str, dst_vm: str, data_size: float) -> float:
        """Financial cost of a transfer (``CR * DS``, 0 if co-located)."""
        if src_vm == dst_vm:
            return 0.0
        return self.model.transfer_cost(data_size)
