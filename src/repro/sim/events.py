"""Event primitives and the time-ordered event queue of the DES engine.

A minimal, allocation-light discrete-event core in the CloudSim tradition:
events carry a timestamp, a priority (for deterministic same-time
ordering), a monotonically increasing sequence number (ties), and a
callback.  The queue is a binary heap (``heapq``) keyed on
``(time, priority, seq)``.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import IntEnum

from repro.exceptions import SimulationError

__all__ = ["EventPriority", "Event", "EventQueue"]


class EventPriority(IntEnum):
    """Deterministic ordering of same-timestamp events.

    Completions run before starts so resources freed at time ``t`` are
    visible to work starting at time ``t`` — the standard DES convention.
    """

    COMPLETION = 0
    TRANSFER = 1
    START = 2
    CONTROL = 3


@dataclass(order=True)
class Event:
    """One scheduled occurrence in simulated time."""

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = EventPriority.CONTROL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the (cancellable) event."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at time {time!r}")
        event = Event(
            time=time,
            priority=int(priority),
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue is empty (including after skipping cancellations).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("event queue is empty")

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
