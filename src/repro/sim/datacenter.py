"""Physical-layer model: hosts and the datacenter placement policy.

Mirrors the paper's third layer (Fig. 1): "the cloud infrastructure layer
consisting of physical computer nodes connected by network links".  Each
host offers a finite amount of processing capacity; VM placement consumes
capacity for the VM's lifetime.  The paper's Nimbus testbed is one
controller plus four VMM nodes — the default construction replicates that
shape.

The scheduling layer never sees hosts (MED-CC assumes the cloud can always
provision the requested types); the simulator uses them to study
contention and to reproduce the testbed's finite capacity faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.vm import VMType
from repro.exceptions import SimulationError

__all__ = ["Host", "Datacenter"]


@dataclass
class Host:
    """One physical machine with a finite processing capacity."""

    name: str
    capacity: float
    used: float = 0.0
    placements: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError(f"host {self.name!r}: capacity must be positive")

    @property
    def free(self) -> float:
        """Remaining unreserved capacity."""
        return self.capacity - self.used

    def can_fit(self, demand: float) -> bool:
        """Whether a VM demanding ``demand`` capacity fits right now."""
        return demand <= self.free + 1e-9

    def place(self, vm_id: str, demand: float) -> None:
        """Reserve capacity for a VM."""
        if vm_id in self.placements:
            raise SimulationError(f"VM {vm_id!r} already placed on {self.name!r}")
        if not self.can_fit(demand):
            raise SimulationError(
                f"host {self.name!r} cannot fit demand {demand:g} "
                f"(free {self.free:g})"
            )
        self.placements[vm_id] = demand
        self.used += demand

    def release(self, vm_id: str) -> None:
        """Return a VM's capacity to the pool."""
        try:
            demand = self.placements.pop(vm_id)
        except KeyError:
            raise SimulationError(
                f"VM {vm_id!r} is not placed on host {self.name!r}"
            ) from None
        self.used -= demand


class Datacenter:
    """A set of hosts plus a first-fit-decreasing placement policy.

    Parameters
    ----------
    hosts:
        The physical machines.  ``Datacenter.testbed()`` builds the
        paper's 4-VMM-node shape.
    unlimited:
        When true (the scheduling-theory default), placement always
        succeeds — the cloud abstraction of infinite elasticity that the
        MED-CC model assumes.
    """

    def __init__(self, hosts: list[Host] | None = None, *, unlimited: bool = False) -> None:
        self.hosts = hosts or []
        self.unlimited = unlimited
        if not self.unlimited and not self.hosts:
            raise SimulationError("a finite datacenter needs at least one host")
        self._vm_host: dict[str, Host] = {}

    @classmethod
    def testbed(cls, *, vmm_nodes: int = 4, capacity_per_node: float = 8.0) -> "Datacenter":
        """The paper's local Nimbus cloud: ``vmm_nodes`` worker hosts."""
        return cls(
            hosts=[
                Host(name=f"vmm{i + 1}", capacity=capacity_per_node)
                for i in range(vmm_nodes)
            ]
        )

    @classmethod
    def elastic(cls) -> "Datacenter":
        """An infinitely elastic cloud (the analytical model's assumption)."""
        return cls(unlimited=True)

    def try_place(self, vm_id: str, vm_type: VMType) -> bool:
        """Place a VM on the fullest host that fits (best-fit); bool result."""
        if self.unlimited:
            return True
        candidates = [h for h in self.hosts if h.can_fit(vm_type.power)]
        if not candidates:
            return False
        host = min(candidates, key=lambda h: (h.free, h.name))
        host.place(vm_id, vm_type.power)
        self._vm_host[vm_id] = host
        return True

    def release(self, vm_id: str) -> None:
        """Release a VM's host capacity (no-op for the elastic cloud)."""
        if self.unlimited:
            return
        host = self._vm_host.pop(vm_id, None)
        if host is None:
            raise SimulationError(f"VM {vm_id!r} was never placed")
        host.release(vm_id)

    def host_of(self, vm_id: str) -> str | None:
        """Name of the host running a VM (``None`` in the elastic cloud)."""
        host = self._vm_host.get(vm_id)
        return host.name if host else None

    @property
    def total_capacity(self) -> float:
        """Aggregate capacity across hosts (``inf`` for elastic clouds)."""
        if self.unlimited:
            return float("inf")
        return sum(h.capacity for h in self.hosts)
