"""The workflow broker: executes a scheduled workflow on the simulator.

This is the CloudSim-replacement piece (see DESIGN.md): given a MED-CC
instance and a schedule, the broker provisions VMs, honours the paper's
precedence rules ("a computing module cannot start execution until all its
required input data arrive; a dependency edge cannot start data transfer
until its preceding module finishes execution"), moves data over the
virtual network, and produces a fully audited
:class:`~repro.sim.trace.SimulationTrace`.

Faithfulness to the analytical model is a tested invariant: with zero VM
startup time, free transfers and one VM per module (no packing), the
simulated makespan equals the schedule's analytical critical-path makespan
and the simulated bill equals :math:`C_{Total}` exactly.  The simulator
then lets you *break* those assumptions on purpose (startup latency,
finite bandwidth, shared VMs, finite hosts) to measure how robust the
schedule is — the paper's implicit claims quantified.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import SimulationError
from repro.sim.datacenter import Datacenter
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventPriority
from repro.sim.faults import FaultModel, NoFaults
from repro.sim.network import NetworkFabric
from repro.sim.packing import VMPlan, pack_schedule
from repro.sim.trace import (
    FailureRecord,
    SimulationTrace,
    TaskRecord,
    TransferRecord,
)
from repro.sim.vmachine import VirtualMachine, VMState

__all__ = ["SimulationResult", "WorkflowBroker"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan:
        End-to-end delay observed in simulation.
    total_cost:
        Total billed cost (VM leases + transfer charges).
    trace:
        Full audit trail.
    analytical_makespan / analytical_cost:
        The schedule's model-predicted values, for drift measurement.
    """

    makespan: float
    total_cost: float
    trace: SimulationTrace
    analytical_makespan: float
    analytical_cost: float

    @property
    def makespan_drift(self) -> float:
        """Simulated minus analytical makespan (0 under model assumptions)."""
        return self.makespan - self.analytical_makespan

    @property
    def cost_drift(self) -> float:
        """Simulated minus analytical cost."""
        return self.total_cost - self.analytical_cost

    @property
    def makespan_drift_percent(self) -> float:
        """Relative makespan drift in percent.

        A degenerate plan (all-fixed zero-duration modules) has an
        analytical makespan of exactly 0; report 0% instead of dividing
        by zero — there was nothing to drift from.
        """
        if self.analytical_makespan == 0:
            return 0.0
        return 100.0 * self.makespan_drift / self.analytical_makespan

    @property
    def cost_drift_percent(self) -> float:
        """Relative cost drift in percent (0% for a zero-cost plan)."""
        if self.analytical_cost == 0:
            return 0.0
        return 100.0 * self.cost_drift / self.analytical_cost


@dataclass
class WorkflowBroker:
    """Drives one workflow execution on the DES engine.

    Parameters
    ----------
    problem:
        The MED-CC instance (workflow, catalog, billing, transfer model).
    schedule:
        The VM-type assignment to execute.
    vm_plan:
        Optional VM-reuse packing; defaults to one VM per module.
    datacenter:
        Physical capacity model; defaults to the infinitely elastic cloud.
    prelaunch:
        When true, every VM is provisioned at time 0 ("we can always
        launch the VMs in advance", §VI-C2) — removing boot latency from
        the critical path at the price of idle lease time.  When false
        (default), VMs are provisioned lazily when their first module's
        inputs are ready, putting ``startup_time`` on the path.
    serialize_links:
        Serialize concurrent transfers sharing a link (contended uplink).
    faults:
        Fault model (see :mod:`repro.sim.faults`).  A crashed VM's partial
        lease is still billed; the broker provisions a replacement VM for
        the failed module and every unfinished module mapped to the dead
        instance, and retries (bounded by ``max_attempts`` per module).
    max_attempts:
        Per-module retry bound before the run is declared failed.
    actual_durations:
        Optional per-module *realized* execution times overriding the
        schedule's planned ones — modelling execution-time estimation
        error (the paper's own WRF testbed shows visible run-to-run
        noise).  The makespan and the bill reflect what actually ran;
        ``makespan_drift``/``cost_drift`` then measure the planning error.
        Modules absent from the mapping run at their planned duration.
    """

    problem: MedCCProblem
    schedule: Schedule
    vm_plan: VMPlan | None = None
    datacenter: Datacenter = field(default_factory=Datacenter.elastic)
    prelaunch: bool = False
    serialize_links: bool = False
    faults: FaultModel = field(default_factory=NoFaults)
    max_attempts: int = 50
    actual_durations: Mapping[str, float] | None = None

    def run(self) -> SimulationResult:
        """Execute the workflow once and return the audited result."""
        problem = self.problem
        workflow = problem.workflow
        matrices = problem.matrices
        evaluation = problem.evaluate(self.schedule)

        engine = SimulationEngine()
        fabric = NetworkFabric(
            problem.transfers, serialize_links=self.serialize_links
        )
        trace = SimulationTrace()

        # ---------------- VM topology (packing or singleton) ------------ #
        plan = self.vm_plan
        if plan is None:
            plan = pack_schedule(problem, self.schedule, mode="interval")
            # Singleton plan: discard the packing and allocate one VM per
            # module (the paper's base one-to-one mapping).
            from repro.sim.packing import VMAllocation

            plan = VMPlan(
                allocations=tuple(
                    VMAllocation(
                        vm_type_index=self.schedule[m],
                        vm_type_name=problem.catalog.names[self.schedule[m]],
                        modules=(m,),
                        lease_start=0.0,
                        lease_end=0.0,
                    )
                    for m in matrices.module_names
                ),
                mode="singleton",
            )

        vm_of_module: dict[str, str] = {}
        vms: dict[str, VirtualMachine] = {}
        vm_pending: dict[str, int] = {}
        vm_queue: dict[str, list[str]] = {}
        for idx, alloc in enumerate(plan.allocations):
            vm_id = f"vm{idx}"
            for module in alloc.modules:
                vm_of_module[module] = vm_id
            vm_pending[vm_id] = len(alloc.modules)
            vm_queue[vm_id] = []
        # Fixed (staging) modules execute off-cloud on pseudo endpoints.
        for name in workflow.module_names:
            if not workflow.module(name).is_schedulable:
                vm_of_module[name] = f"staging:{name}"

        vm_type_of = {
            f"vm{idx}": problem.catalog[alloc.vm_type_index]
            for idx, alloc in enumerate(plan.allocations)
        }

        # ---------------- dependency bookkeeping ------------------------ #
        waiting: dict[str, int] = {
            name: len(workflow.predecessors(name))
            for name in workflow.module_names
        }
        durations = self.schedule.durations(workflow, matrices)
        if self.actual_durations:
            for name, actual in self.actual_durations.items():
                if name not in durations:
                    raise SimulationError(
                        f"actual_durations references unknown module {name!r}"
                    )
                if actual < 0:
                    raise SimulationError(
                        f"actual duration of {name!r} must be >= 0, got {actual!r}"
                    )
                durations[name] = float(actual)
        finished: set[str] = set()
        transfer_cost_total = 0.0
        attempts: dict[str, int] = {name: 0 for name in workflow.module_names}
        replacement_seq = 0

        def provision(vm_id: str) -> VirtualMachine:
            if vm_id in vms:
                return vms[vm_id]
            vm_type = vm_type_of[vm_id]
            if not self.datacenter.try_place(vm_id, vm_type):
                raise SimulationError(
                    f"datacenter cannot place {vm_id} (type {vm_type.name}); "
                    "insufficient physical capacity"
                )
            vm = VirtualMachine(
                vm_id=vm_id, vm_type=vm_type, provisioned_at=engine.now
            )
            vms[vm_id] = vm
            if vm_type.startup_time > 0:
                vm.state = VMState.BOOTING
                engine.after(
                    vm_type.startup_time,
                    lambda: (vm.boot_complete(engine.now), drain(vm_id))[0],
                    priority=EventPriority.CONTROL,
                    label=f"boot:{vm_id}",
                )
            else:
                vm.boot_complete(engine.now)
            return vm

        def drain(vm_id: str) -> None:
            """Start the next queued module on an idle, ready VM."""
            vm = vms.get(vm_id)
            if vm is None or vm.state is not VMState.READY:
                return
            if not vm_queue[vm_id]:
                return
            module = vm_queue[vm_id].pop(0)
            start_module(module, vm)

        def start_module(module: str, vm: VirtualMachine | None) -> None:
            start = engine.now
            duration = durations[module]
            trace.record_event(
                start,
                "started",
                module,
                vm.vm_id if vm is not None else vm_of_module[module],
                vm.vm_type.name if vm is not None else "staging",
            )
            if vm is not None:
                vm.start_module(module)
                offset = self.faults.fail_after(
                    module, attempts[module], duration
                )
                if offset is not None:
                    engine.after(
                        offset,
                        lambda: crash_module(module, vm.vm_id, start),
                        priority=EventPriority.COMPLETION,
                        label=f"crash:{module}",
                    )
                    return
            engine.after(
                duration,
                lambda: complete_module(module, start),
                priority=EventPriority.COMPLETION,
                label=f"finish:{module}",
            )

        def crash_module(module: str, vm_id: str, start: float) -> None:
            nonlocal replacement_seq
            now = engine.now
            vm = vms[vm_id]
            vm.crash(now)
            self.datacenter.release(vm_id)
            attempts[module] += 1
            trace.failures.append(
                FailureRecord(
                    module=module,
                    vm_id=vm_id,
                    started=start,
                    crashed=now,
                    attempt=attempts[module],
                )
            )
            trace.record_event(
                now,
                "failed",
                module,
                vm_id,
                vm.vm_type.name,
                elapsed=now - start,
            )
            if attempts[module] > self.max_attempts:
                raise SimulationError(
                    f"module {module!r} exceeded max_attempts="
                    f"{self.max_attempts} after repeated VM failures"
                )
            # Everything unfinished on the dead instance moves to a fresh
            # replacement VM of the same type.
            replacement_seq += 1
            new_id = f"{vm_id}+r{replacement_seq}"
            vm_type_of[new_id] = vm_type_of[vm_id]
            vm_pending[new_id] = vm_pending[vm_id]
            vm_queue[new_id] = vm_queue.pop(vm_id, [])
            for name, mapped in list(vm_of_module.items()):
                if mapped == vm_id and name not in finished:
                    vm_of_module[name] = new_id
            # Retry the killed module on the replacement.
            module_ready(module)

        def complete_module(module: str, start: float) -> None:
            nonlocal transfer_cost_total
            now = engine.now
            vm_id = vm_of_module[module]
            vm = vms.get(vm_id)
            vm_type_name = vm.vm_type.name if vm else "staging"
            trace.tasks.append(
                TaskRecord(
                    module=module,
                    vm_id=vm_id,
                    vm_type=vm_type_name,
                    start=start,
                    finish=now,
                )
            )
            # The event carries the broker's own realized duration, not
            # finish - start: the float round-trip through the calendar
            # would break bit-exact zero-drift replays downstream.
            trace.record_event(
                now,
                "completed",
                module,
                vm_id,
                vm_type_name,
                duration=durations[module],
            )
            finished.add(module)
            if vm is not None:
                vm.finish_module()
                vm_pending[vm_id] -= 1
                if vm_pending[vm_id] == 0:
                    vm.release(now)
                    self.datacenter.release(vm_id)
                else:
                    drain(vm_id)
            for succ in workflow.successors(module):
                dep = workflow.dependency(module, succ)
                src_vm = vm_of_module[module]
                dst_vm = vm_of_module[succ]
                transfer_cost_total += fabric.transfer_cost(
                    src_vm, dst_vm, dep.data_size
                )
                arrive = fabric.transfer_finish_time(
                    now, src_vm, dst_vm, dep.data_size
                )
                if arrive > now:
                    trace.transfers.append(
                        TransferRecord(
                            src=module,
                            dst=succ,
                            data_size=dep.data_size,
                            start=now,
                            finish=arrive,
                        )
                    )
                engine.at(
                    arrive,
                    lambda s=succ: dependency_arrived(s),
                    priority=EventPriority.TRANSFER,
                    label=f"xfer:{module}->{succ}",
                )

        def dependency_arrived(module: str) -> None:
            waiting[module] -= 1
            if waiting[module] == 0:
                module_ready(module)

        def module_ready(module: str) -> None:
            mod = workflow.module(module)
            if not mod.is_schedulable:
                start_module(module, None)
                return
            vm_id = vm_of_module[module]
            vm = provision(vm_id)
            if vm.state is VMState.READY and not vm_queue[vm_id]:
                start_module(module, vm)
            else:
                vm_queue[vm_id].append(module)

        # ---------------- kick-off --------------------------------------- #
        if self.prelaunch:
            for vm_id in vm_type_of:
                provision(vm_id)
        engine.at(
            0.0,
            lambda: module_ready(workflow.entry),
            priority=EventPriority.START,
            label="start",
        )
        engine.run()

        if len(finished) != workflow.num_modules:
            missing = set(workflow.module_names) - finished
            raise SimulationError(
                f"simulation deadlocked; unfinished modules: {sorted(missing)}"
            )

        for vm in vms.values():
            if vm.state is not VMState.RELEASED:
                raise SimulationError(f"VM {vm.vm_id} never released")
            trace.vms.append(vm.bill(problem.billing))

        total_cost = trace.total_cost + transfer_cost_total
        return SimulationResult(
            makespan=trace.makespan,
            total_cost=total_cost,
            trace=trace,
            analytical_makespan=evaluation.makespan,
            analytical_cost=evaluation.total_cost,
        )
