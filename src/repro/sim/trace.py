"""Execution-trace records produced by the simulator.

Every simulated run yields a :class:`SimulationTrace`: per-module task
records, per-edge transfer records and per-VM lease records — enough to
audit the makespan, the bill and the precedence constraints after the
fact (the test suite does exactly that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SimulationError

__all__ = [
    "TaskRecord",
    "TransferRecord",
    "VMRecord",
    "FailureRecord",
    "EventRecord",
    "SimulationTrace",
]


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """One module execution: where and when it ran."""

    module: str
    vm_id: str
    vm_type: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Wall-clock execution time of the module."""
        return self.finish - self.start


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One edge data transfer between modules (possibly zero-duration)."""

    src: str
    dst: str
    data_size: float
    start: float
    finish: float


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """One injected VM crash and the execution attempt it killed."""

    module: str
    vm_id: str
    started: float
    crashed: float
    attempt: int


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One machine-readable broker event (the live-replay wire format).

    The broker appends these in deterministic engine order as modules
    start, complete and crash, so a seeded run always emits the same
    sequence.  ``duration`` on a completion is the *scheduled realized*
    duration (the broker's own ``durations[module]`` value), not
    ``finish - start``: re-deriving it from timestamps would round-trip
    through a float add/subtract and break the bit-exact zero-drift
    replay identity the live subsystem guarantees.
    """

    seq: int
    time: float
    kind: str
    module: str
    vm_id: str
    vm_type: str
    duration: float | None = None
    elapsed: float | None = None

    def to_payload(self) -> dict[str, Any]:
        """The ``POST /v1/workflows/<id>/events`` body for this event."""
        payload: dict[str, Any] = {
            "seq": self.seq,
            "type": self.kind,
            "module": self.module,
            "time": self.time,
            "vm_id": self.vm_id,
        }
        if self.kind == "started":
            payload["vm_type"] = self.vm_type
        elif self.kind == "completed":
            payload["duration"] = self.duration
        elif self.kind == "failed":
            payload["elapsed"] = self.elapsed
        return payload


@dataclass(frozen=True, slots=True)
class VMRecord:
    """One VM lease: boot, busy interval and the billed cost."""

    vm_id: str
    vm_type: str
    provisioned_at: float
    ready_at: float
    released_at: float
    billed_units: float
    cost: float
    modules: tuple[str, ...]


@dataclass
class SimulationTrace:
    """Complete audit trail of one simulated workflow execution."""

    tasks: list[TaskRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    vms: list[VMRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)

    def record_event(
        self,
        time: float,
        kind: str,
        module: str,
        vm_id: str,
        vm_type: str,
        *,
        duration: float | None = None,
        elapsed: float | None = None,
    ) -> EventRecord:
        """Append the next broker event (sequence numbers start at 1)."""
        record = EventRecord(
            seq=len(self.events) + 1,
            time=time,
            kind=kind,
            module=module,
            vm_id=vm_id,
            vm_type=vm_type,
            duration=duration,
            elapsed=elapsed,
        )
        self.events.append(record)
        return record

    def event_payloads(self) -> list[dict[str, Any]]:
        """All events as live-workflow wire payloads, in emission order."""
        return [record.to_payload() for record in self.events]

    def events_jsonl(self) -> str:
        """The event stream as one JSON object per line (replay input)."""
        return "\n".join(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            for payload in self.event_payloads()
        )

    def task(self, module: str) -> TaskRecord:
        """The record of a given module (exactly one per module)."""
        matches = [t for t in self.tasks if t.module == module]
        if len(matches) != 1:
            raise SimulationError(
                f"expected exactly one task record for {module!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    @property
    def makespan(self) -> float:
        """Latest task finish time (0 for an empty trace)."""
        return max((t.finish for t in self.tasks), default=0.0)

    @property
    def total_cost(self) -> float:
        """Sum of all VM lease costs."""
        return sum(vm.cost for vm in self.vms)

    @property
    def num_vms(self) -> int:
        """Number of VM instances actually provisioned."""
        return len(self.vms)

    def render(self) -> str:
        """Multi-line human-readable timeline (sorted by start time)."""
        lines = ["== tasks =="]
        for t in sorted(self.tasks, key=lambda r: (r.start, r.module)):
            lines.append(
                f"  {t.module:<12} on {t.vm_id:<10} ({t.vm_type}) "
                f"[{t.start:10.3f} .. {t.finish:10.3f}]"
            )
        if self.transfers:
            lines.append("== transfers ==")
            for tr in sorted(self.transfers, key=lambda r: (r.start, r.src)):
                lines.append(
                    f"  {tr.src}->{tr.dst:<10} size={tr.data_size:<8g} "
                    f"[{tr.start:10.3f} .. {tr.finish:10.3f}]"
                )
        if self.failures:
            lines.append("== failures ==")
            for fr in sorted(self.failures, key=lambda r: (r.crashed, r.module)):
                lines.append(
                    f"  {fr.module:<12} on {fr.vm_id:<10} attempt {fr.attempt} "
                    f"crashed at {fr.crashed:.3f} (started {fr.started:.3f})"
                )
        lines.append("== vms ==")
        for vm in sorted(self.vms, key=lambda r: r.vm_id):
            lines.append(
                f"  {vm.vm_id:<10} type={vm.vm_type:<6} "
                f"lease=[{vm.provisioned_at:.3f} .. {vm.released_at:.3f}] "
                f"billed={vm.billed_units:g} cost={vm.cost:g} "
                f"modules={','.join(vm.modules)}"
            )
        lines.append(
            f"== makespan={self.makespan:.4f} cost={self.total_cost:.4f} "
            f"vms={self.num_vms} =="
        )
        return "\n".join(lines)
