"""Virtual-machine instances: lifecycle, leases and billing.

A :class:`VirtualMachine` walks the lifecycle
``PROVISIONING → BOOTING → READY → (BUSY ↔ READY)* → RELEASED``.
The lease runs from provisioning to release; the billing meter charges
``billing.billed_units(lease_duration) * rate + startup_cost`` — the
instance-hour model of Eq. 1/Eq. 7 applied at the VM level, which is what
an IaaS provider actually bills.  When each module runs on its own VM and
startup is instantaneous, the per-VM bill equals the analytical
:math:`C(E_{i,j})`, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.billing import BillingPolicy
from repro.core.vm import VMType
from repro.exceptions import SimulationError
from repro.sim.trace import VMRecord

__all__ = ["VMState", "VirtualMachine"]


class VMState(Enum):
    """Lifecycle states of a simulated VM."""

    PROVISIONING = "provisioning"
    BOOTING = "booting"
    READY = "ready"
    BUSY = "busy"
    RELEASED = "released"


@dataclass
class VirtualMachine:
    """One provisioned VM instance of a given type."""

    vm_id: str
    vm_type: VMType
    provisioned_at: float
    ready_at: float | None = None
    released_at: float | None = None
    state: VMState = VMState.PROVISIONING
    executed: list[str] = field(default_factory=list)

    def boot_complete(self, now: float) -> None:
        """Transition BOOTING/PROVISIONING → READY."""
        if self.state not in (VMState.PROVISIONING, VMState.BOOTING):
            raise SimulationError(
                f"VM {self.vm_id}: boot_complete in state {self.state}"
            )
        self.state = VMState.READY
        self.ready_at = now

    def start_module(self, module: str) -> None:
        """Transition READY → BUSY for a module execution."""
        if self.state is not VMState.READY:
            raise SimulationError(
                f"VM {self.vm_id}: cannot start {module!r} in state {self.state}"
            )
        self.state = VMState.BUSY
        self.executed.append(module)

    def finish_module(self) -> None:
        """Transition BUSY → READY when a module completes."""
        if self.state is not VMState.BUSY:
            raise SimulationError(
                f"VM {self.vm_id}: finish_module in state {self.state}"
            )
        self.state = VMState.READY

    def release(self, now: float) -> None:
        """End the lease (READY → RELEASED)."""
        if self.state is not VMState.READY:
            raise SimulationError(
                f"VM {self.vm_id}: cannot release in state {self.state}"
            )
        self.state = VMState.RELEASED
        self.released_at = now

    def crash(self, now: float) -> None:
        """Abrupt failure (BUSY → RELEASED); the partial lease still bills."""
        if self.state is not VMState.BUSY:
            raise SimulationError(
                f"VM {self.vm_id}: crash in state {self.state}"
            )
        self.state = VMState.RELEASED
        self.released_at = now

    @property
    def lease_duration(self) -> float:
        """Billable lease span; only defined after release."""
        if self.released_at is None:
            raise SimulationError(f"VM {self.vm_id} has not been released yet")
        return self.released_at - self.provisioned_at

    def bill(self, billing: BillingPolicy) -> VMRecord:
        """Produce the final lease record with the billed cost."""
        duration = self.lease_duration
        units = billing.billed_units(duration)
        cost = units * self.vm_type.rate + self.vm_type.startup_cost
        return VMRecord(
            vm_id=self.vm_id,
            vm_type=self.vm_type.name,
            provisioned_at=self.provisioned_at,
            ready_at=self.ready_at if self.ready_at is not None else float("nan"),
            released_at=self.released_at if self.released_at is not None else float("nan"),
            billed_units=units,
            cost=cost,
            modules=tuple(self.executed),
        )
