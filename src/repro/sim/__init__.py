"""Discrete-event cloud workflow simulator (the CloudSim substitute).

Execution semantics for MED-CC schedules: VM lifecycle with boot latency
and instance-hour leases, virtual-network transfers, finite physical
hosts, VM-reuse packing, and full execution traces.  See
:mod:`repro.sim.broker` for the main entry point.
"""

from repro.sim.broker import SimulationResult, WorkflowBroker
from repro.sim.datacenter import Datacenter, Host
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventPriority, EventQueue
from repro.sim.faults import FaultModel, NoFaults, RandomFaults, ScriptedFaults
from repro.sim.network import NetworkFabric, VirtualLink
from repro.sim.packing import VMAllocation, VMPlan, pack_schedule
from repro.sim.trace import (
    FailureRecord,
    SimulationTrace,
    TaskRecord,
    TransferRecord,
    VMRecord,
)
from repro.sim.vmachine import VirtualMachine, VMState

__all__ = [
    "SimulationResult",
    "WorkflowBroker",
    "Datacenter",
    "Host",
    "SimulationEngine",
    "Event",
    "EventPriority",
    "EventQueue",
    "FaultModel",
    "NoFaults",
    "RandomFaults",
    "ScriptedFaults",
    "FailureRecord",
    "NetworkFabric",
    "VirtualLink",
    "VMAllocation",
    "VMPlan",
    "pack_schedule",
    "SimulationTrace",
    "TaskRecord",
    "TransferRecord",
    "VMRecord",
    "VirtualMachine",
    "VMState",
]
