"""Fault models: VM crash injection for robustness studies.

Clouds lose VMs.  The paper's model (and testbed runs) assume fault-free
execution; these fault models let the simulator quantify what a schedule's
makespan and bill look like when VMs crash mid-execution and modules must
be retried on replacement instances (the recovery policy implemented by
:class:`~repro.sim.broker.WorkflowBroker`):

* :class:`NoFaults` — the default, never fails;
* :class:`ScriptedFaults` — fail specific (module, attempt) executions at
  specified offsets; precise unit-test control;
* :class:`RandomFaults` — exponential time-to-failure with a given hazard
  rate, deterministic per (seed, module, attempt) so runs are exactly
  reproducible, with an optional cap on total injected failures.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.exceptions import SimulationError

__all__ = ["FaultModel", "NoFaults", "ScriptedFaults", "RandomFaults"]


@runtime_checkable
class FaultModel(Protocol):
    """Decides whether one module execution attempt fails, and when."""

    def fail_after(
        self, module: str, attempt: int, duration: float
    ) -> float | None:
        """Offset (from execution start) at which the VM crashes.

        Return ``None`` for a successful attempt; otherwise a value in
        ``[0, duration)`` — a crash at or after completion is a success.
        """
        ...  # pragma: no cover


@dataclass(frozen=True)
class NoFaults:
    """The fault-free cloud of the analytical model."""

    def fail_after(self, module: str, attempt: int, duration: float) -> float | None:
        return None


@dataclass(frozen=True)
class ScriptedFaults:
    """Fail exactly the scripted attempts.

    Parameters
    ----------
    script:
        Mapping of ``(module, attempt)`` → crash offset.  Attempts are
        0-based; unscripted attempts succeed.
    """

    script: Mapping[tuple[str, int], float]

    def __post_init__(self) -> None:
        for (module, attempt), offset in self.script.items():
            if attempt < 0 or offset < 0:
                raise SimulationError(
                    f"invalid scripted fault for {module!r}: "
                    f"attempt={attempt}, offset={offset}"
                )

    def fail_after(self, module: str, attempt: int, duration: float) -> float | None:
        offset = self.script.get((module, attempt))
        if offset is None or offset >= duration:
            return None
        return offset


@dataclass
class RandomFaults:
    """Exponential time-to-failure, deterministic per (seed, module, attempt).

    Parameters
    ----------
    rate:
        Hazard rate λ (failures per time unit).  An attempt of duration
        ``d`` fails with probability ``1 - exp(-λ d)``.
    seed:
        Determinism seed.
    max_failures:
        Stop injecting after this many failures (guards against
        pathological livelock at high rates).
    """

    rate: float
    seed: int = 0
    max_failures: int = 1000
    _injected: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.rate < 0 or not math.isfinite(self.rate):
            raise SimulationError(f"hazard rate must be finite and >= 0: {self.rate!r}")
        if self.max_failures < 0:
            raise SimulationError("max_failures must be >= 0")

    def _uniform(self, module: str, attempt: int) -> float:
        """A deterministic U(0,1) draw for one (module, attempt) pair."""
        key = f"{self.seed}:{module}:{attempt}".encode()
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fail_after(self, module: str, attempt: int, duration: float) -> float | None:
        if self.rate == 0.0 or self._injected >= self.max_failures:
            return None
        u = self._uniform(module, attempt)
        # Inverse-CDF sample of Exp(rate); u in [0,1) keeps log() finite.
        ttf = -math.log(1.0 - u) / self.rate
        if ttf >= duration:
            return None
        self._injected += 1
        return ttf
