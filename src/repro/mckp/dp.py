"""Exact MCKP solvers: Pareto-frontier DP and integer-weight table DP.

Two classic exact algorithms:

* :func:`solve_pareto` — dominance-pruned dynamic programming over
  (weight, profit) states.  Works with arbitrary real weights/profits;
  state count bounded by the number of non-dominated prefixes.  This is
  the workhorse used by the reduction tests and the pipeline solver.
* :func:`solve_integer_dp` — the textbook table DP over integer weights
  (``O(m * n * c)``).  Requires integral weights and a modest capacity;
  included both as an independent cross-check of :func:`solve_pareto` and
  because it is the standard pseudo-polynomial algorithm for MCKP (which
  is NP-complete only in the weak sense — consistent with the paper's
  non-approximability argument relying on instance construction, not on
  strong NP-hardness).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ExperimentError
from repro.mckp.problem import MCKPError, MCKPInstance, MCKPSolution

__all__ = ["solve_pareto", "solve_integer_dp", "solve_bruteforce"]

_EPS = 1e-9


def solve_pareto(
    instance: MCKPInstance, *, max_states: int = 5_000_000
) -> MCKPSolution | None:
    """Exact MCKP via Pareto-dominance DP; ``None`` if infeasible.

    Maintains, per class prefix, the set of (weight, profit, selection)
    states where no state has both lower-or-equal weight and
    higher-or-equal profit than another (with at least one strict).
    """
    if not instance.is_feasible():
        return None

    # Completion bound: minimal weight still to be added after class i.
    min_w = [min(item.weight for item in cls) for cls in instance.classes]
    suffix = [0.0] * (instance.num_classes + 1)
    for i in range(instance.num_classes - 1, -1, -1):
        suffix[i] = suffix[i + 1] + min_w[i]

    frontier: list[tuple[float, float, tuple[int, ...]]] = [(0.0, 0.0, ())]
    for i, cls in enumerate(instance.classes):
        bound = instance.capacity - suffix[i + 1] + _EPS
        expanded: list[tuple[float, float, tuple[int, ...]]] = []
        for weight, profit, sel in frontier:
            for j, item in enumerate(cls):
                new_w = weight + item.weight
                if new_w > bound:
                    continue
                expanded.append((new_w, profit + item.profit, sel + (j,)))
        if not expanded:
            return None
        # Dominance prune: sort by (weight, -profit); keep strictly
        # increasing best-profit.
        expanded.sort(key=lambda s: (s[0], -s[1]))
        pruned: list[tuple[float, float, tuple[int, ...]]] = []
        best_profit = -math.inf
        for state in expanded:
            if state[1] > best_profit + _EPS:
                pruned.append(state)
                best_profit = state[1]
        frontier = pruned
        if len(frontier) > max_states:
            raise ExperimentError(
                f"MCKP Pareto frontier exceeded max_states={max_states}"
            )

    best = max(frontier, key=lambda s: (s[1], -s[0]))
    return MCKPSolution(
        selection=best[2], total_weight=best[0], total_profit=best[1]
    )


def solve_integer_dp(
    instance: MCKPInstance, *, max_capacity: int = 2_000_000
) -> MCKPSolution | None:
    """Exact MCKP via the integer-weight table DP; ``None`` if infeasible.

    Raises
    ------
    MCKPError
        If any weight or the capacity is not (numerically) integral.
    ExperimentError
        If the capacity exceeds ``max_capacity`` (table would not fit).
    """
    cap = instance.capacity
    if abs(cap - round(cap)) > 1e-9:
        raise MCKPError(f"integer DP requires integral capacity, got {cap!r}")
    cap = int(round(cap))
    if cap > max_capacity:
        raise ExperimentError(
            f"capacity {cap} exceeds max_capacity={max_capacity} for table DP"
        )
    for cls in instance.classes:
        for item in cls:
            if abs(item.weight - round(item.weight)) > 1e-9:
                raise MCKPError(
                    f"integer DP requires integral weights, got {item.weight!r}"
                )

    if not instance.is_feasible():
        return None

    neg_inf = -math.inf
    # best[w] = max profit using exactly-one-per-class so far with total
    # weight exactly <= w tracked as "best at weight w"; choice[i][w] item.
    best = np.full(cap + 1, neg_inf)
    best[0] = 0.0
    # choices[i] records, for every reachable weight after class i, the
    # item index used and the predecessor weight.
    choices: list[dict[int, tuple[int, int]]] = []

    for cls in instance.classes:
        new_best = np.full(cap + 1, neg_inf)
        chosen: dict[int, tuple[int, int]] = {}
        reachable = np.nonzero(best > neg_inf)[0]
        for j, item in enumerate(cls):
            w = int(round(item.weight))
            targets = reachable + w
            ok = targets <= cap
            src = reachable[ok]
            dst = targets[ok]
            cand = best[src] + item.profit
            improved = cand > new_best[dst]
            for s, d in zip(src[improved], dst[improved]):
                new_best[d] = best[s] + item.profit
                chosen[int(d)] = (j, int(s))
        best = new_best
        choices.append(chosen)
        if not np.any(best > neg_inf):
            return None

    w_star = int(np.argmax(best))
    if best[w_star] == neg_inf:
        return None

    # Backtrack the selection.
    selection: list[int] = []
    w = w_star
    for chosen in reversed(choices):
        j, w_prev = chosen[w]
        selection.append(j)
        w = w_prev
    selection.reverse()

    weight, profit = instance.evaluate(selection)
    return MCKPSolution(
        selection=tuple(selection), total_weight=weight, total_profit=profit
    )


def solve_bruteforce(
    instance: MCKPInstance, *, max_leaves: int = 5_000_000
) -> MCKPSolution | None:
    """Exact MCKP by full enumeration (tiny instances / test oracle)."""
    total_leaves = 1
    for cls in instance.classes:
        total_leaves *= len(cls)
        if total_leaves > max_leaves:
            raise ExperimentError(
                f"bruteforce would enumerate > {max_leaves} selections"
            )

    best: MCKPSolution | None = None
    m = instance.num_classes
    selection = [0] * m

    def recurse(i: int, weight: float, profit: float) -> None:
        nonlocal best
        if weight > instance.capacity + _EPS:
            return
        if i == m:
            if best is None or profit > best.total_profit + _EPS:
                best = MCKPSolution(tuple(selection), weight, profit)
            return
        for j, item in enumerate(instance.classes[i]):
            selection[i] = j
            recurse(i + 1, weight + item.weight, profit + item.profit)

    recurse(0, 0.0, 0.0)
    return best
