"""MCKP substrate: the knapsack core of MED-CC (Section IV of the paper).

Provides the Multiple-Choice Knapsack Problem model, three independent
exact solvers (Pareto DP, integer table DP, branch-and-bound), a greedy
heuristic, and the paper's Theorem 1 / Theorem 2 reductions between MCKP
and MED-CC-Pipeline.
"""

from repro.mckp.branch_bound import solve_branch_and_bound
from repro.mckp.dp import solve_bruteforce, solve_integer_dp, solve_pareto
from repro.mckp.greedy import solve_greedy
from repro.mckp.problem import MCKPInstance, MCKPItem, MCKPSolution
from repro.mckp.reduction import (
    NonApproxGadget,
    mckp_to_pipeline_matrices,
    pipeline_to_mckp,
    schedule_to_selection,
    selection_to_schedule,
)

__all__ = [
    "MCKPInstance",
    "MCKPItem",
    "MCKPSolution",
    "solve_pareto",
    "solve_integer_dp",
    "solve_bruteforce",
    "solve_branch_and_bound",
    "solve_greedy",
    "pipeline_to_mckp",
    "selection_to_schedule",
    "schedule_to_selection",
    "mckp_to_pipeline_matrices",
    "NonApproxGadget",
]
