"""The Section IV reductions between MED-CC-Pipeline and MCKP.

Theorem 1 (NP-completeness) maps a pipeline-structured MED-CC instance to
MCKP: modules ↦ classes, VM types ↦ items, execution cost ↦ weight,
``K - execution time`` ↦ profit, budget ↦ capacity.  Choosing one item per
class to maximize profit is then exactly choosing one VM type per module
to minimize total (= end-to-end, for a pipeline) execution time.

:func:`pipeline_to_mckp` implements that construction; together with an
exact MCKP solver it yields an independent optimal MED-CC-Pipeline solver,
which the test suite checks against :class:`PipelineDPScheduler` and the
exhaustive search.

Theorem 2 (non-approximability) constructs, from an arbitrary MCKP
instance, a MED-CC instance whose *optimal* schedule assigns the
maximum-power VM type to every module — so an approximation scheme with a
small-enough ratio would decide MCKP.  :class:`NonApproxGadget` reproduces
that instance construction (class padding, the scaling factor
:math:`k = c / (m \\cdot w_{max,max})`, workloads
:math:`WL_i = VP_{max} (K - p_{i,max})` and charging rates
:math:`CV_{*,j} = k \\cdot w_{max,j} / T'(E_{max,j})`) and exposes the
properties the proof claims, which the test suite verifies
computationally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.billing import DEFAULT_BILLING, BillingPolicy
from repro.core.module import DataDependency, Module
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.core.vm import VMType, VMTypeCatalog
from repro.core.workflow import Workflow
from repro.exceptions import ScheduleError
from repro.mckp.problem import MCKPInstance, MCKPSolution

__all__ = [
    "pipeline_to_mckp",
    "selection_to_schedule",
    "schedule_to_selection",
    "mckp_to_pipeline_matrices",
    "NonApproxGadget",
]


def pipeline_to_mckp(
    problem: MedCCProblem, budget: float, *, big_k: float | None = None
) -> tuple[MCKPInstance, float]:
    """Theorem 1: encode a pipeline MED-CC instance as MCKP.

    Parameters
    ----------
    problem:
        A *pipeline* MED-CC instance (chain workflow).
    budget:
        The budget :math:`B`, which becomes the knapsack capacity.
    big_k:
        The constant :math:`K \\ge T(E_{i,j})\\ \\forall i,j`.  Defaults to
        the maximum entry of :math:`T_E` (the smallest valid choice).

    Returns
    -------
    (instance, K):
        The MCKP instance and the constant used, so profits can be mapped
        back to times via ``time = K - profit``.
    """
    from repro.algorithms.pipeline_dp import is_pipeline

    if not is_pipeline(problem):
        raise ScheduleError("Theorem 1 reduction applies to pipeline workflows only")
    te, ce = problem.matrices.te, problem.matrices.ce
    k = float(te.max()) if big_k is None else float(big_k)
    if k < te.max() - 1e-12:
        raise ScheduleError(
            f"K={k!r} is smaller than the largest execution time {te.max()!r}"
        )
    weights = ce.tolist()
    profits = (k - te).tolist()
    return MCKPInstance.from_lists(weights, profits, capacity=budget), k


def selection_to_schedule(
    problem: MedCCProblem, solution: MCKPSolution
) -> Schedule:
    """Map an MCKP selection back to a MED-CC schedule (Theorem 1 inverse)."""
    modules = problem.matrices.module_names
    if len(solution.selection) != len(modules):
        raise ScheduleError(
            f"selection covers {len(solution.selection)} classes, "
            f"problem has {len(modules)} modules"
        )
    return Schedule(dict(zip(modules, solution.selection)))


def schedule_to_selection(problem: MedCCProblem, schedule: Schedule) -> tuple[int, ...]:
    """Map a MED-CC schedule to the corresponding MCKP selection."""
    return tuple(schedule[m] for m in problem.matrices.module_names)


def mckp_to_pipeline_matrices(
    instance: MCKPInstance, *, big_k: float | None = None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Encode an (equal-class-size) MCKP instance as pipeline TE/CE matrices.

    This is the matrix-form ("estimated performance vector") direction used
    inside the Theorem 1 argument: item weights become execution costs and
    ``K - profit`` becomes execution time, so minimizing total time under
    the budget equals maximizing total profit under the capacity.

    The instance must have equal class sizes (pad with
    :meth:`MCKPInstance.padded` first).

    Returns
    -------
    (te, ce, K):
        Execution-time matrix, execution-cost matrix, and the constant K.
    """
    sizes = {len(cls) for cls in instance.classes}
    if len(sizes) != 1:
        raise ScheduleError(
            "MCKP classes must have equal sizes; call instance.padded() first"
        )
    profits = np.array(
        [[item.profit for item in cls] for cls in instance.classes], dtype=float
    )
    weights = np.array(
        [[item.weight for item in cls] for cls in instance.classes], dtype=float
    )
    k = float(profits.max()) if big_k is None else float(big_k)
    if k < profits.max() - 1e-12:
        raise ScheduleError(f"K={k!r} is smaller than the largest profit")
    te = k - profits
    return te, weights, k


@dataclass(frozen=True)
class NonApproxGadget:
    """The Theorem 2 instance construction, with its claimed properties.

    Given an arbitrary MCKP instance, builds the MED-CC instance
    :math:`I_{MED}` of the non-approximability proof:

    * classes are padded to equal size ``n`` with harmless dummies;
    * ``m`` modules form a pipeline, module :math:`w_i` gets workload
      :math:`WL_i = VP_{max} \\cdot (K - p_{i,max})`;
    * ``n`` VM types share their power/rate across modules, with
      :math:`CV_{*,j} = k \\cdot w_{max,j} / T'(E_{max,j})` where
      :math:`k = c / (m \\cdot w_{max,max})`;
    * the budget is the knapsack capacity :math:`c`.

    Attributes
    ----------
    problem:
        The constructed MED-CC pipeline instance.
    budget:
        The budget :math:`B = c`.
    big_k:
        The constant :math:`K \\ge p_{ij}`.
    optimal_time:
        :math:`T_A = \\sum_i WL_i / VP_{max}` — the delay of the schedule
        selecting the max-power type everywhere, which the proof shows is
        both feasible (cost ≤ c) and optimal.
    """

    problem: MedCCProblem
    budget: float
    big_k: float
    optimal_time: float

    @classmethod
    def build(
        cls,
        instance: MCKPInstance,
        *,
        billing: BillingPolicy = DEFAULT_BILLING,
        power_base: float = 1.0,
    ) -> "NonApproxGadget":
        """Construct :math:`I_{MED}` from an MCKP instance (see class doc)."""
        padded = instance.padded()
        m = padded.num_classes
        n = padded.max_class_size

        profits = np.array(
            [[item.profit for item in cls] for cls in padded.classes], dtype=float
        )
        weights = np.array(
            [[item.weight for item in cls] for cls in padded.classes], dtype=float
        )
        c = padded.capacity

        big_k = float(profits.max()) + 1.0
        powers = power_base * np.arange(1, n + 1, dtype=float)
        vp_max = float(powers[-1])

        # WL_i = VP_max * (K - p_i,max) — strictly positive since K > p.
        p_i_max = profits.max(axis=1)
        workloads = vp_max * (big_k - p_i_max)
        wl_max = float(workloads.max())

        w_max_j = weights.max(axis=0)  # w_max,j per type
        w_max_max = float(w_max_j.max())
        if w_max_max <= 0:
            raise ScheduleError(
                "the Theorem 2 construction needs a positive maximum weight"
            )
        k_factor = c / (m * w_max_max)

        rates = np.array(
            [
                k_factor * w_max_j[j] / max(
                    billing.billed_units(wl_max / powers[j]), 1e-12
                )
                for j in range(n)
            ]
        )

        catalog = VMTypeCatalog(
            [
                VMType(name=f"VT{j + 1}", power=float(powers[j]), rate=float(rates[j]))
                for j in range(n)
            ]
        )
        modules = [
            Module(name=f"w{i + 1}", workload=float(workloads[i])) for i in range(m)
        ]
        edges = [
            DataDependency(f"w{i + 1}", f"w{i + 2}") for i in range(m - 1)
        ]
        workflow = Workflow(modules, edges, name="theorem2-gadget")
        problem = MedCCProblem(workflow=workflow, catalog=catalog, billing=billing)

        optimal_time = float(np.sum(workloads / vp_max))
        return cls(
            problem=problem,
            budget=float(c),
            big_k=big_k,
            optimal_time=optimal_time,
        )

    def max_power_schedule(self) -> Schedule:
        """The all-:math:`VP_{max}` schedule the proof argues is optimal."""
        j_max = self.problem.catalog.fastest()
        return Schedule(
            {name: j_max for name in self.problem.matrices.module_names}
        )

    def max_power_cost(self) -> float:
        """Cost of the all-:math:`VP_{max}` schedule (proof: ≤ budget)."""
        return self.problem.cost_of(self.max_power_schedule())

    def check_claims(self) -> dict[str, bool]:
        """Verify the proof's structural claims on this concrete gadget.

        Returns a dict of claim name → bool:

        * ``"feasible"`` — the all-max-power schedule fits the budget;
        * ``"time_matches"`` — its delay equals :math:`T_A`;
        * ``"is_optimal"`` — no cheaper-by-capacity schedule beats it
          (checked with the exact pipeline DP).
        """
        from repro.algorithms.pipeline_dp import PipelineDPScheduler

        schedule = self.max_power_schedule()
        cost = self.max_power_cost()
        evaluation = self.problem.evaluate(schedule)
        exact = PipelineDPScheduler().solve(self.problem, self.budget)
        return {
            "feasible": cost <= self.budget + 1e-6,
            "time_matches": math.isclose(
                evaluation.makespan, self.optimal_time, rel_tol=1e-9, abs_tol=1e-9
            ),
            "is_optimal": exact.med >= evaluation.makespan - 1e-9,
        }
