"""Greedy MCKP heuristic (incremental-efficiency upgrades).

The classic LP-guided greedy: start from the minimum-weight item of every
class, then repeatedly apply the single-item upgrade with the best
profit-gain-to-weight-gain ratio that still fits.  This is the knapsack
mirror of the GAIN strategy for workflows and serves two purposes:

* a fast non-exact reference point for MCKP benchmarks, and
* a structural demonstration that GAIN-style scheduling *is* greedy MCKP
  once the Theorem 1 reduction is applied (tested in
  ``tests/mckp/test_reduction.py``).
"""

from __future__ import annotations

from repro.mckp.problem import MCKPInstance, MCKPSolution

__all__ = ["solve_greedy"]

_EPS = 1e-9


def solve_greedy(instance: MCKPInstance) -> MCKPSolution | None:
    """Greedy (non-exact) MCKP solution; ``None`` if infeasible.

    Starts from each class's minimum-weight item (ties: max profit) and
    repeatedly applies the affordable upgrade with the largest
    ``Δprofit / Δweight`` ratio (upgrades with ``Δweight <= 0`` and
    ``Δprofit > 0`` are taken eagerly).
    """
    if not instance.is_feasible():
        return None

    selection = [
        min(
            range(len(cls)),
            key=lambda j: (cls[j].weight, -cls[j].profit),
        )
        for cls in instance.classes
    ]
    weight, profit = instance.evaluate(selection)

    while True:
        best_ratio = -1.0
        best_move: tuple[int, int, float, float] | None = None
        for i, cls in enumerate(instance.classes):
            cur = cls[selection[i]]
            for j, item in enumerate(cls):
                if j == selection[i]:
                    continue
                dp = item.profit - cur.profit
                dw = item.weight - cur.weight
                if dp <= _EPS:
                    continue
                if weight + dw > instance.capacity + _EPS:
                    continue
                ratio = float("inf") if dw <= _EPS else dp / dw
                if best_move is None or ratio > best_ratio + _EPS:
                    best_ratio = ratio
                    best_move = (i, j, dp, dw)
        if best_move is None:
            break
        i, j, dp, dw = best_move
        selection[i] = j
        weight += dw
        profit += dp

    return MCKPSolution(
        selection=tuple(selection),
        total_weight=weight,
        total_profit=profit,
        optimal=False,
    )
