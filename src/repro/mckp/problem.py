"""The Multiple-Choice Knapsack Problem (MCKP) instance model.

Definition 2 of the paper (after Martello & Toth): given :math:`m` classes
:math:`N_1, \\dots, N_m` of items, each item :math:`j \\in N_i` with profit
:math:`p_{ij}` and weight :math:`w_{ij}`, choose **exactly one** item per
class maximizing total profit subject to total weight ≤ capacity :math:`c`.

MCKP is the combinatorial core of MED-CC: Theorem 1 shows the pipeline
special case of MED-CC *is* MCKP (classes = modules, items = VM types,
weight = execution cost, profit = ``K - execution time``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ReproError

__all__ = ["MCKPItem", "MCKPInstance", "MCKPSolution"]


class MCKPError(ReproError):
    """An MCKP instance or solution is malformed."""


@dataclass(frozen=True, slots=True)
class MCKPItem:
    """One item: a (weight, profit) pair within a class."""

    weight: float
    profit: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.weight) or self.weight < 0:
            raise MCKPError(f"item weight must be finite and >= 0, got {self.weight!r}")
        if not math.isfinite(self.profit):
            raise MCKPError(f"item profit must be finite, got {self.profit!r}")


@dataclass(frozen=True)
class MCKPInstance:
    """An MCKP instance: item classes plus a knapsack capacity.

    Attributes
    ----------
    classes:
        One tuple of :class:`MCKPItem` per class; every class must be
        non-empty (the "choose exactly one per class" constraint makes an
        empty class unsatisfiable).
    capacity:
        The knapsack capacity :math:`c`.
    """

    classes: tuple[tuple[MCKPItem, ...], ...]
    capacity: float

    def __post_init__(self) -> None:
        if not self.classes:
            raise MCKPError("an MCKP instance needs at least one class")
        for idx, cls in enumerate(self.classes):
            if not cls:
                raise MCKPError(f"class {idx} is empty; every class needs an item")
        if not math.isfinite(self.capacity) or self.capacity < 0:
            raise MCKPError(
                f"capacity must be finite and >= 0, got {self.capacity!r}"
            )

    @classmethod
    def from_lists(
        cls,
        weights: Sequence[Sequence[float]],
        profits: Sequence[Sequence[float]],
        capacity: float,
    ) -> "MCKPInstance":
        """Build an instance from parallel weight/profit lists."""
        if len(weights) != len(profits):
            raise MCKPError("weights and profits must have the same class count")
        classes = []
        for wi, pi in zip(weights, profits):
            if len(wi) != len(pi):
                raise MCKPError("weights and profits must align within classes")
            classes.append(tuple(MCKPItem(w, p) for w, p in zip(wi, pi)))
        return cls(classes=tuple(classes), capacity=capacity)

    @property
    def num_classes(self) -> int:
        """Number of classes :math:`m`."""
        return len(self.classes)

    @property
    def max_class_size(self) -> int:
        """Largest class size (``n_max`` of the padding construction)."""
        return max(len(c) for c in self.classes)

    def min_total_weight(self) -> float:
        """Smallest achievable total weight (per-class minima summed)."""
        return sum(min(item.weight for item in c) for c in self.classes)

    def is_feasible(self) -> bool:
        """Whether any selection fits the capacity."""
        return self.min_total_weight() <= self.capacity + 1e-9

    def padded(self) -> "MCKPInstance":
        """Equalize class sizes with dummy items (Theorem 2 construction).

        Pads every class to ``n_max`` items with dummies of zero profit and
        weight strictly larger than every original item's weight in that
        class, so "none of the dummy items would affect the solution".
        """
        n = self.max_class_size
        padded = []
        for cls_items in self.classes:
            items = list(cls_items)
            if len(items) < n:
                dummy_weight = max(i.weight for i in items) + 1.0
                items.extend(
                    MCKPItem(weight=dummy_weight, profit=0.0)
                    for _ in range(n - len(items))
                )
            padded.append(tuple(items))
        return MCKPInstance(classes=tuple(padded), capacity=self.capacity)

    def evaluate(self, selection: Sequence[int]) -> tuple[float, float]:
        """Total (weight, profit) of a selection (one item index per class).

        Raises
        ------
        MCKPError
            If the selection has the wrong length or an index out of range.
        """
        if len(selection) != self.num_classes:
            raise MCKPError(
                f"selection length {len(selection)} != classes {self.num_classes}"
            )
        weight = profit = 0.0
        for i, j in enumerate(selection):
            if not 0 <= j < len(self.classes[i]):
                raise MCKPError(f"class {i}: item index {j} out of range")
            item = self.classes[i][j]
            weight += item.weight
            profit += item.profit
        return weight, profit


@dataclass(frozen=True)
class MCKPSolution:
    """An MCKP solution: the chosen item per class and its totals."""

    selection: tuple[int, ...]
    total_weight: float
    total_profit: float
    optimal: bool = True

    def is_feasible_for(self, instance: MCKPInstance) -> bool:
        """Whether this solution fits the instance's capacity."""
        weight, _ = instance.evaluate(self.selection)
        return weight <= instance.capacity + 1e-9
