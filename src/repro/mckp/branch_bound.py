"""Branch-and-bound MCKP solver with the LP-relaxation upper bound.

Independent third exact algorithm (besides the Pareto DP and the integer
table DP) used to cross-validate results in the test suite.  The upper
bound at each node is the linear relaxation of the remaining classes: for
each unassigned class, take the convex-hull best profit achievable per
remaining capacity — here conservatively approximated by the per-class
maximum profit with minimum-weight feasibility check, which is admissible
(never underestimates the optimum) though looser than Dyer–Zemel.
"""

from __future__ import annotations

import math

from repro.exceptions import ExperimentError
from repro.mckp.problem import MCKPInstance, MCKPSolution

__all__ = ["solve_branch_and_bound"]

_EPS = 1e-9


def solve_branch_and_bound(
    instance: MCKPInstance, *, max_nodes: int = 10_000_000
) -> MCKPSolution | None:
    """Exact MCKP via DFS branch-and-bound; ``None`` if infeasible."""
    if not instance.is_feasible():
        return None

    m = instance.num_classes
    classes = instance.classes

    # Per-class orderings and suffix aggregates for bounds.
    min_weight = [min(i.weight for i in cls) for cls in classes]
    max_profit = [max(i.profit for i in cls) for cls in classes]
    suffix_min_weight = [0.0] * (m + 1)
    suffix_max_profit = [0.0] * (m + 1)
    for i in range(m - 1, -1, -1):
        suffix_min_weight[i] = suffix_min_weight[i + 1] + min_weight[i]
        suffix_max_profit[i] = suffix_max_profit[i + 1] + max_profit[i]

    best_profit = -math.inf
    best_sel: tuple[int, ...] | None = None
    selection = [0] * m
    nodes = 0

    # Explore items profit-descending so good incumbents appear early.
    order = [
        sorted(range(len(cls)), key=lambda j: (-cls[j].profit, cls[j].weight))
        for cls in classes
    ]

    def dfs(i: int, weight: float, profit: float) -> None:
        nonlocal best_profit, best_sel, nodes
        nodes += 1
        if nodes > max_nodes:
            raise ExperimentError(
                f"branch-and-bound exceeded max_nodes={max_nodes}"
            )
        if weight + suffix_min_weight[i] > instance.capacity + _EPS:
            return
        if profit + suffix_max_profit[i] <= best_profit + _EPS:
            return
        if i == m:
            best_profit = profit
            best_sel = tuple(selection)
            return
        for j in order[i]:
            item = classes[i][j]
            selection[i] = j
            dfs(i + 1, weight + item.weight, profit + item.profit)

    dfs(0, 0.0, 0.0)
    if best_sel is None:
        return None
    weight, profit = instance.evaluate(best_sel)
    return MCKPSolution(selection=best_sel, total_weight=weight, total_profit=profit)
