"""The per-workflow live state machine.

:class:`LiveWorkflow` holds one registered plan mid-flight: the original
:class:`~repro.core.problem.MedCCProblem`, the current (revisable)
schedule, per-module execution status, realized durations and the billed
spend so far.  Each accepted event — ``started``, ``completed``,
``failed``, ``topup`` — updates that state and then re-optimizes the
**remaining** DAG under the **remaining** budget.

Re-optimization is a warm continuation of the incremental
Critical-Greedy engine, not a fresh solve: the ΔT/ΔC grids, the current
te/ce rows and one persistent :class:`~repro.core.fastpath.IncrementalSweep`
survive across events, so a completion costs one ``set_duration`` delta
sweep plus a vectorized candidate argmax over the still-pending rows.
Two loops run per event:

* a **repair** pass while the projected cost exceeds the budget (sunk
  failure bills eat the envelope): downgrade pending modules, picking
  the candidate with the *least* time damage first (max ΔT) and the
  biggest saving on ties (min ΔC) — the same lexicographic selector as
  the upgrade direction, so the policy mirrors Alg. 1;
* the standard Critical-Greedy **upgrade** pass (Alg. 1 lines 9-17)
  restricted to pending rows.

The zero-drift identity is bit-exact by construction: the projected
cost is seeded from the offline run's own accumulator (the last step's
``cost_after``), actual costs are billed through the same
``BillingPolicy`` arithmetic that built the CE matrix, and the grids are
refreshed with the exact subtractions ``_solve_incremental`` performs —
so replaying a drift-free trace leaves no affordable step and the
revision counter stays 0 (property-tested in ``tests/live``).

Thread safety: instances are *not* thread-safe; the
:class:`~repro.live.store.LiveWorkflowManager` serializes access with a
per-workflow lock.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.base import SchedulerResult
from repro.algorithms.critical_greedy import _EPS, _pick_step
from repro.core import fastpath
from repro.core.problem import MedCCProblem
from repro.core.schedule import Schedule
from repro.exceptions import EventConflictError, LiveWorkflowError
from repro.service.codec import encode_schedule, event_digest

__all__ = [
    "EVENT_KINDS",
    "LiveEvent",
    "LiveWorkflow",
    "PENDING",
    "RUNNING",
    "DONE",
]

#: Wire-level event kinds accepted on ``POST /v1/workflows/<id>/events``.
EVENT_KINDS = frozenset({"started", "completed", "failed", "topup"})

PENDING = "pending"
RUNNING = "running"
DONE = "done"

#: Kinds that must reference a module.
_MODULE_KINDS = frozenset({"started", "completed", "failed"})

#: How many recent sequence numbers keep their (digest, response) pair
#: for digest-verified idempotent replays.  The protocol has exactly one
#: outstanding seq, so retries land overwhelmingly on the newest entry;
#: anything that aged out of the window is an ancient retry and gets a
#: generic replayed ack instead of growing node memory without bound.
_REPLAY_WINDOW = 64


def _require_number(
    payload: Mapping[str, Any],
    field: str,
    *,
    minimum: float = 0.0,
    strict: bool = False,
) -> float:
    value = payload.get(field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise LiveWorkflowError(f"event field {field!r} must be a number")
    value = float(value)
    if not math.isfinite(value):
        raise LiveWorkflowError(f"event field {field!r} must be finite")
    if value < minimum or (strict and value <= minimum):
        bound = "greater than" if strict else "at least"
        raise LiveWorkflowError(
            f"event field {field!r} must be {bound} {minimum:g}, got {value:g}"
        )
    return value


@dataclass(frozen=True, slots=True)
class LiveEvent:
    """One validated wire event.

    ``time`` is the sender's (informational) simulation/wall timestamp;
    it is echoed into the ledger but never used for state decisions —
    ordering authority is the sequence number alone.
    """

    seq: int
    kind: str
    module: str | None = None
    duration: float | None = None
    elapsed: float | None = None
    amount: float | None = None
    vm_type: str | None = None
    time: float | None = None

    @classmethod
    def parse(cls, payload: object) -> "LiveEvent":
        """Validate a wire payload; raises :class:`LiveWorkflowError` (400)."""
        if not isinstance(payload, Mapping):
            raise LiveWorkflowError("event payload must be a JSON object")
        seq = payload.get("seq")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            raise LiveWorkflowError("event field 'seq' must be a positive integer")
        kind = payload.get("type")
        if kind not in EVENT_KINDS:
            raise LiveWorkflowError(
                f"event field 'type' must be one of {sorted(EVENT_KINDS)}, "
                f"got {kind!r}"
            )
        module = payload.get("module")
        if kind in _MODULE_KINDS:
            if not isinstance(module, str) or not module:
                raise LiveWorkflowError(
                    f"{kind!r} event requires a non-empty string 'module'"
                )
        else:
            module = None
        duration = elapsed = amount = None
        if kind == "completed":
            duration = _require_number(payload, "duration")
        elif kind == "failed":
            elapsed = _require_number(payload, "elapsed")
        elif kind == "topup":
            amount = _require_number(payload, "amount", strict=True)
        vm_type = payload.get("vm_type")
        if vm_type is not None and not isinstance(vm_type, str):
            raise LiveWorkflowError("event field 'vm_type' must be a string")
        time = payload.get("time")
        if time is not None:
            if isinstance(time, bool) or not isinstance(time, (int, float)):
                raise LiveWorkflowError("event field 'time' must be a number")
            time = float(time)
        return cls(
            seq=seq,
            kind=kind,
            module=module,
            duration=duration,
            elapsed=elapsed,
            amount=amount,
            vm_type=vm_type if kind == "started" else None,
            time=time,
        )


class LiveWorkflow:
    """State machine for one registered, running workflow.

    Parameters
    ----------
    workflow_id:
        Stable identifier (see :func:`repro.service.keys.derive_workflow_id`).
    problem:
        The MED-CC instance the plan was computed for.
    budget:
        The authorized budget (grows on ``topup`` events).
    plan:
        The offline Critical-Greedy result to start from.
    candidate_scope / transfer_aware:
        The scheduler knobs of the registered plan; re-optimization uses
        the same scope so residual solves stay comparable to offline
        ones.
    """

    def __init__(
        self,
        workflow_id: str,
        problem: MedCCProblem,
        budget: float,
        plan: SchedulerResult,
        *,
        candidate_scope: str = "critical",
        transfer_aware: bool = True,
    ) -> None:
        self.workflow_id = str(workflow_id)
        self.problem = problem
        self.budget = float(budget)
        self.algorithm = plan.algorithm
        self.candidate_scope = candidate_scope

        matrices = problem.matrices
        self._te = matrices.te
        self._ce = matrices.ce
        self._num_types = matrices.num_types
        self._module_names = matrices.module_names
        self._row_index = matrices.row_index

        workflow = problem.workflow
        self._workflow = workflow
        self._index = fastpath.graph_index(workflow)
        transfer_times = problem.transfer_times if transfer_aware else None
        self._sweep = fastpath.IncrementalSweep(
            workflow, transfer_times=transfer_times
        )

        # Current plan, row-indexed like the solver's internal state.
        self._columns = [int(plan.schedule[name]) for name in self._module_names]
        rows = np.arange(matrices.num_modules)
        self._current_te = self._te[rows, self._columns]
        self._current_ce = self._ce[rows, self._columns]
        durations = list(self._index.base_durations)
        for row, node in enumerate(self._index.sched_nodes):
            durations[node] = float(self._current_te[row])
        self.projected_makespan = self._sweep.reset_vector(durations)
        self._dt_all = self._current_te[:, None] - self._te
        self._dc_all = self._ce - self._current_ce[:, None]

        # Seed the cost accumulator from the offline run's own running
        # sum (cost0 + applied ΔC, i.e. the last step's cost_after) so a
        # drift-free replay sees the *bitwise identical* `extra` the
        # offline loop terminated with — a fresh cost_of() summation
        # could differ in the last ulp and manufacture a phantom step.
        if plan.steps:
            self.projected_cost = float(plan.steps[-1].cost_after)
        else:
            least_cost = [int(j) for j in matrices.least_cost_choice()]
            self.projected_cost = problem.cost_of(
                Schedule._adopt(dict(zip(self._module_names, least_cost)))
            )

        self._status: dict[str, str] = {
            name: PENDING for name in workflow.module_names
        }
        #: Schedulable rows still re-plannable (not started/completed).
        self._pending = np.ones(matrices.num_modules, dtype=bool)
        self._actual_time: dict[str, float] = {}
        self._actual_cost: dict[str, float] = {}
        self.spend = 0.0
        self._planned_done_cost = 0.0
        self.revision = 0
        self.over_budget = False
        self.failures = 0
        self.reconciliations = 0

        self.last_seq = 0
        #: seq -> (payload digest, response) for idempotent replays;
        #: bounded to the last ``_REPLAY_WINDOW`` sequence numbers.
        self._history: dict[int, tuple[str, dict[str, Any]]] = {}

    # ------------------------------------------------------------------ #
    # Event intake: prepare (validate, no mutation) / commit (mutate)
    # ------------------------------------------------------------------ #

    def prepare(
        self, payload: object
    ) -> tuple[LiveEvent, str] | dict[str, Any]:
        """Validate an incoming payload without mutating state.

        Returns the idempotent stored response (a fresh copy, flagged
        ``replayed``) when the sequence number was already applied with
        an identical payload — or a generic replayed ack when the seq
        aged out of the bounded replay window — or the parsed
        ``(event, digest)`` pair to pass to :meth:`commit`.  Raises :class:`LiveWorkflowError` (400)
        on malformed payloads and :class:`EventConflictError` (409) on
        sequence gaps, divergent replays and invalid transitions.  The
        split lets the manager append the event to its durable log
        *after* validation but *before* the state mutation.
        """
        event = LiveEvent.parse(payload)
        digest = event_digest(payload)
        if event.seq <= self.last_seq:
            stored = self._history.get(event.seq)
            if stored is None:
                # The seq predates the bounded replay window: its digest
                # is gone, so divergence can no longer be checked.  The
                # protocol keeps one seq outstanding, so a retry this old
                # is ancient — answer a generic replayed ack built from
                # current state rather than wedging the stream.
                response = self._event_response(event.seq, False, 0)
                response["replayed"] = True
                return response
            stored_digest, stored_response = stored
            if stored_digest != digest:
                raise EventConflictError(
                    f"seq {event.seq} was already applied with a different "
                    "payload",
                    workflow_id=self.workflow_id,
                    seq=event.seq,
                )
            response = dict(stored_response)
            response["replayed"] = True
            return response
        if event.seq != self.last_seq + 1:
            raise EventConflictError(
                f"out-of-order event: expected seq {self.last_seq + 1}, "
                f"got {event.seq}",
                workflow_id=self.workflow_id,
                seq=event.seq,
            )
        self._validate_transition(event)
        return event, digest

    def commit(self, event: LiveEvent, digest: str) -> dict[str, Any]:
        """Apply a prepared event: mutate, re-optimize, record, respond."""
        changed = self._apply(event)
        resteps = self._reoptimize()
        if changed or resteps:
            self.revision += 1
        self.last_seq = event.seq
        response = self._event_response(event.seq, changed, resteps)
        self._history[event.seq] = (digest, response)
        # Seqs are contiguous, so evicting one entry per commit keeps
        # the replay window bounded at _REPLAY_WINDOW.
        self._history.pop(event.seq - _REPLAY_WINDOW, None)
        return dict(response)

    def handle_event(self, payload: object) -> dict[str, Any]:
        """Prepare + commit in one call (no durable log in between)."""
        prepared = self.prepare(payload)
        if isinstance(prepared, dict):
            return prepared
        event, digest = prepared
        return self.commit(event, digest)

    # ------------------------------------------------------------------ #
    # Checkpointing: snapshot / restore
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict[str, Any]:
        """The full mutable state as a canonical-JSON-safe object.

        Everything derived (te/ce rows, Δ grids, the sweep, the pending
        mask) is *recomputed* on restore from the same arithmetic
        ``__init__`` uses, so only the irreducible state is stored:
        assignments, per-module status, realized durations/bills, the
        accumulators, and the bounded replay history.  Floats survive
        the JSON round-trip bitwise (``repr`` is exact for doubles), so
        ``load_state`` of a snapshot is byte-identical to replaying the
        events that produced it — the property the checkpoint tests pin.
        """
        return {
            "workflow_id": self.workflow_id,
            "last_seq": self.last_seq,
            "revision": self.revision,
            "budget": self.budget,
            "spend": self.spend,
            "planned_done_cost": self._planned_done_cost,
            "projected_cost": self.projected_cost,
            "projected_makespan": self.projected_makespan,
            "over_budget": self.over_budget,
            "failures": self.failures,
            "reconciliations": self.reconciliations,
            "columns": [int(j) for j in self._columns],
            "status": {
                name: self._status[name]
                for name in self._workflow.module_names
            },
            "actual_time": dict(self._actual_time),
            "actual_cost": dict(self._actual_cost),
            "history": {
                str(seq): [digest, response]
                for seq, (digest, response) in sorted(self._history.items())
            },
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Overwrite this (freshly registered) instance from a snapshot.

        Scalars are restored verbatim; every derived structure is
        rebuilt with the exact arithmetic the event path uses, and the
        sweep's recomputed makespan is cross-checked against the stored
        one — a mismatch means the snapshot does not describe this plan
        and the checkpoint is rejected.  Raises
        :class:`LiveWorkflowError` on any malformed field; the store
        wraps that in a corruption error, since a bad checkpoint is
        server-side log damage, not a client mistake.
        """
        if not isinstance(state, Mapping):
            raise LiveWorkflowError("checkpoint state must be a JSON object")

        def _float(field: str) -> float:
            value = state.get(field)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise LiveWorkflowError(
                    f"checkpoint field {field!r} must be a number"
                )
            value = float(value)
            if not math.isfinite(value):
                raise LiveWorkflowError(
                    f"checkpoint field {field!r} must be finite"
                )
            return value

        def _int(field: str) -> int:
            value = state.get(field)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise LiveWorkflowError(
                    f"checkpoint field {field!r} must be a non-negative integer"
                )
            return value

        names = self._module_names
        columns = state.get("columns")
        if (
            not isinstance(columns, list)
            or len(columns) != len(names)
            or any(
                isinstance(j, bool)
                or not isinstance(j, int)
                or not 0 <= j < self._num_types
                for j in columns
            )
        ):
            raise LiveWorkflowError(
                "checkpoint field 'columns' must assign every schedulable "
                f"module a VM-type index below {self._num_types}"
            )
        status = state.get("status")
        if not isinstance(status, Mapping) or set(status) != set(
            self._workflow.module_names
        ):
            raise LiveWorkflowError(
                "checkpoint field 'status' must cover exactly the "
                "workflow's modules"
            )
        for name, value in status.items():
            if value not in (PENDING, RUNNING, DONE):
                raise LiveWorkflowError(
                    f"checkpoint status for module {name!r} must be "
                    f"pending/running/done, got {value!r}"
                )
        realized: dict[str, dict[str, float]] = {}
        for field in ("actual_time", "actual_cost"):
            mapping = state.get(field)
            if not isinstance(mapping, Mapping) or any(
                key not in status
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(float(value))
                for key, value in mapping.items()
            ):
                raise LiveWorkflowError(
                    f"checkpoint field {field!r} must map known modules "
                    "to finite numbers"
                )
            realized[field] = {key: float(value) for key, value in mapping.items()}
        history_raw = state.get("history")
        if not isinstance(history_raw, Mapping):
            raise LiveWorkflowError(
                "checkpoint field 'history' must be a JSON object"
            )
        history: dict[int, tuple[str, dict[str, Any]]] = {}
        for key, entry in history_raw.items():
            if (
                not isinstance(key, str)
                or not key.isdigit()
                or not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], Mapping)
            ):
                raise LiveWorkflowError(
                    "checkpoint field 'history' must map sequence numbers "
                    "to [digest, response] pairs"
                )
            history[int(key)] = (entry[0], dict(entry[1]))

        self.budget = _float("budget")
        self.spend = _float("spend")
        self._planned_done_cost = _float("planned_done_cost")
        self.projected_cost = _float("projected_cost")
        self.over_budget = bool(state.get("over_budget"))
        self.failures = _int("failures")
        self.reconciliations = _int("reconciliations")
        self.revision = _int("revision")
        self.last_seq = _int("last_seq")
        self._columns = [int(j) for j in columns]
        rows = np.arange(len(names))
        self._current_te = self._te[rows, self._columns]
        self._current_ce = self._ce[rows, self._columns]
        self._dt_all = self._current_te[:, None] - self._te
        self._dc_all = self._ce - self._current_ce[:, None]
        self._status = {
            name: str(status[name]) for name in self._workflow.module_names
        }
        self._actual_time = realized["actual_time"]
        self._actual_cost = realized["actual_cost"]
        self._history = history
        self._pending = np.fromiter(
            (self._status[name] == PENDING for name in names),
            dtype=bool,
            count=len(names),
        )

        # Rebuild the sweep exactly as the event path left it: planned
        # te everywhere, overridden by realized durations for completed
        # modules (the only ones `set_duration` ever re-pins).
        durations = list(self._index.base_durations)
        for row, node in enumerate(self._index.sched_nodes):
            durations[node] = float(self._current_te[row])
        for name, value in self._actual_time.items():
            durations[self._index.node_index[name]] = value
        makespan = self._sweep.reset_vector(durations)
        stored = _float("projected_makespan")
        if makespan != stored:  # lint: ignore[RA901] - bitwise snapshot integrity check
            raise LiveWorkflowError(
                f"checkpoint makespan {stored!r} does not match the value "
                f"{makespan!r} recomputed from its assignments; the "
                "snapshot does not describe this plan"
            )
        self.projected_makespan = makespan

    # ------------------------------------------------------------------ #
    # Transition validation (no mutation)
    # ------------------------------------------------------------------ #

    def _conflict(self, message: str, seq: int) -> EventConflictError:
        return EventConflictError(
            message, workflow_id=self.workflow_id, seq=seq
        )

    def _validate_transition(self, event: LiveEvent) -> None:
        if event.kind == "topup":
            return
        module = event.module
        assert module is not None
        if module not in self._status:
            raise LiveWorkflowError(
                f"event references unknown module {module!r}"
            )
        status = self._status[module]
        if event.kind == "started":
            if status != PENDING:
                raise self._conflict(
                    f"module {module!r} cannot start: status is {status}",
                    event.seq,
                )
            if event.vm_type is not None:
                mod = self._workflow.module(module)
                if mod.is_schedulable and event.vm_type not in self.problem.catalog:
                    raise LiveWorkflowError(
                        f"event references unknown VM type {event.vm_type!r}"
                    )
            self._check_predecessors_done(module, event.seq)
        elif event.kind == "completed":
            if status == DONE:
                raise self._conflict(
                    f"module {module!r} already completed", event.seq
                )
            if status == PENDING:
                # Direct pending -> done is allowed (clients that do not
                # send start events), but precedence must still hold.
                self._check_predecessors_done(module, event.seq)
        elif event.kind == "failed":
            if status != RUNNING:
                raise self._conflict(
                    f"module {module!r} cannot fail: status is {status}",
                    event.seq,
                )
            if not self._workflow.module(module).is_schedulable:
                raise self._conflict(
                    f"fixed module {module!r} cannot fail", event.seq
                )

    def _check_predecessors_done(self, module: str, seq: int) -> None:
        for pred in self._workflow.predecessors(module):
            if self._status[pred] != DONE:
                raise self._conflict(
                    f"module {module!r} cannot start: predecessor "
                    f"{pred!r} is {self._status[pred]}",
                    seq,
                )

    # ------------------------------------------------------------------ #
    # State mutation
    # ------------------------------------------------------------------ #

    def _reassign(self, row: int, j: int) -> None:
        """Move one pending row to type ``j``; exact incremental updates.

        Identical arithmetic to the offline step application in
        ``CriticalGreedyScheduler._solve_incremental`` — same row
        refreshes, same accumulator addition, same delta sweep.
        """
        dc = float(self._ce[row, j] - self._current_ce[row])
        self._columns[row] = j
        new_time = float(self._te[row, j])
        self._current_te[row] = new_time
        self._current_ce[row] = self._ce[row, j]
        self._dt_all[row, :] = self._current_te[row] - self._te[row, :]
        self._dc_all[row, :] = self._ce[row, :] - self._current_ce[row]
        self.projected_cost += dc
        self.projected_makespan = self._sweep.set_row_duration(row, new_time)

    def _apply(self, event: LiveEvent) -> bool:
        """Mutate per-event state; returns whether the assignment changed."""
        if event.kind == "topup":
            assert event.amount is not None
            self.budget += event.amount
            return False
        module = event.module
        assert module is not None
        mod = self._workflow.module(module)
        schedulable = mod.is_schedulable
        row = self._row_index[module] if schedulable else -1

        if event.kind == "started":
            changed = False
            if schedulable:
                if event.vm_type is not None:
                    j = self.problem.catalog.index_of(event.vm_type)
                    if j != self._columns[row]:
                        # The executor launched a different type than the
                        # current plan (e.g. a crash-retry raced a
                        # revision): reconcile the model to reality.
                        self._reassign(row, j)
                        self.reconciliations += 1
                        changed = True
                self._pending[row] = False
            self._status[module] = RUNNING
            return changed

        if event.kind == "completed":
            assert event.duration is not None
            duration = event.duration
            self._status[module] = DONE
            self._actual_time[module] = duration
            if schedulable:
                vm_type = self.problem.catalog[self._columns[row]]
                # Billed through the same policy arithmetic that built
                # the CE matrix, so duration == planned te implies
                # actual == planned bitwise (the zero-drift identity).
                actual = self.problem.billing.charge(duration, vm_type.rate)
                planned = float(self._current_ce[row])
                self._actual_cost[module] = (
                    self._actual_cost.get(module, 0.0) + actual
                )
                self.spend += actual
                self._planned_done_cost += planned
                self.projected_cost += actual - planned
                self._pending[row] = False
            node = self._index.node_index[module]
            self.projected_makespan = self._sweep.set_duration(node, duration)
            return False

        # failed: bill the elapsed lease as sunk cost and put the module
        # back in the pending pool so the retry is re-plannable.
        assert event.kind == "failed" and event.elapsed is not None
        vm_type = self.problem.catalog[self._columns[row]]
        lost = self.problem.billing.charge(event.elapsed, vm_type.rate)
        self._actual_cost[module] = self._actual_cost.get(module, 0.0) + lost
        self.spend += lost
        self.projected_cost += lost
        self.failures += 1
        self._status[module] = PENDING
        self._pending[row] = True
        return False

    # ------------------------------------------------------------------ #
    # Residual re-optimization
    # ------------------------------------------------------------------ #

    def _reoptimize(self) -> int:
        """Repair + upgrade the pending rows; returns steps applied."""
        steps = 0
        extra = self.budget - self.projected_cost

        # Repair: sunk failure bills (or a shrunk effective envelope)
        # pushed the projection over budget — shed cost from pending
        # rows, least time damage first (max ΔT), biggest saving on
        # ties (min ΔC).  `_pick_step` is exactly that lexicographic
        # selector once validity is restricted to cost-decreasing moves.
        while extra < -_EPS:
            valid = self._pending[:, None] & (self._dc_all < -_EPS)
            picked = _pick_step(
                self._dt_all, self._dc_all, valid, self._num_types
            )
            if picked is None:
                break
            row, j, _dt, _dc = picked
            self._reassign(row, j)
            steps += 1
            extra = self.budget - self.projected_cost
        self.over_budget = bool(extra < -_EPS)

        # Upgrade: Alg. 1 on the residual DAG under the remaining budget.
        while extra > _EPS:
            affordable = (self._dt_all > _EPS) & (self._dc_all <= extra + _EPS)
            affordable &= self._pending[:, None]
            if self.candidate_scope == "critical":
                critical = self._sweep.critical_rows()
                if not critical.any():
                    break
                valid = affordable & critical[:, None]
            else:
                valid = affordable
            picked = _pick_step(
                self._dt_all, self._dc_all, valid, self._num_types
            )
            if picked is None:
                break
            row, j, _dt, _dc = picked
            self._reassign(row, j)
            steps += 1
            extra = self.budget - self.projected_cost
        return steps

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def planning_budget(self) -> float:
        """The budget the *full current plan* is optimized under.

        The live invariant is ``projected_cost <= budget``; responses
        embed the whole (done + residual) schedule, whose planned cost
        differs from the projection by realized-vs-planned drift on
        completed modules and sunk failure bills.  Reporting
        ``budget - spend + planned_done_cost`` makes the service-wide
        RS601 check (planned cost of the response schedule within the
        response budget) equivalent to that invariant — and equal to the
        registered budget under zero drift.
        """
        return self.budget - self.spend + self._planned_done_cost

    def schedule(self) -> Schedule:
        """The full current plan (completed modules keep their types)."""
        return Schedule._adopt(dict(zip(self._module_names, self._columns)))

    def counts(self) -> dict[str, int]:
        pending = running = done = 0
        for status in self._status.values():
            if status == PENDING:
                pending += 1
            elif status == RUNNING:
                running += 1
            else:
                done += 1
        return {"pending": pending, "running": running, "done": done}

    def is_complete(self) -> bool:
        return all(status == DONE for status in self._status.values())

    def _result_fragment(self, steps: int) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "engine": "live",
            "schedule": encode_schedule(self.schedule(), self.problem.catalog),
            "cost": self.projected_cost,
            "makespan": self.projected_makespan,
            "steps": steps,
        }

    def _event_response(
        self, seq: int, changed: bool, resteps: int
    ) -> dict[str, Any]:
        return {
            "status": "ok",
            "workflow_id": self.workflow_id,
            "seq": seq,
            "revision": self.revision,
            "changed": bool(changed or resteps),
            "replayed": False,
            "budget": self.planning_budget,
            "total_budget": self.budget,
            "spend": self.spend,
            "projected_cost": self.projected_cost,
            "projected_makespan": self.projected_makespan,
            "remaining_budget": self.budget - self.projected_cost,
            "over_budget": self.over_budget,
            "counts": self.counts(),
            "result": self._result_fragment(resteps),
        }

    def registration_response(self) -> dict[str, Any]:
        """The body returned by ``POST /v1/workflows``."""
        return {
            "status": "ok",
            "workflow_id": self.workflow_id,
            "seq": 0,
            "revision": self.revision,
            "replayed": False,
            "budget": self.planning_budget,
            "total_budget": self.budget,
            "spend": self.spend,
            "projected_cost": self.projected_cost,
            "projected_makespan": self.projected_makespan,
            "remaining_budget": self.budget - self.projected_cost,
            "over_budget": self.over_budget,
            "counts": self.counts(),
            "result": self._result_fragment(0),
        }

    def status_payload(self) -> dict[str, Any]:
        """The body returned by ``GET /v1/workflows/<id>``."""
        catalog = self.problem.catalog
        modules: dict[str, Any] = {}
        for name in self._workflow.module_names:
            mod = self._workflow.module(name)
            entry: dict[str, Any] = {"status": self._status[name]}
            if mod.is_schedulable:
                row = self._row_index[name]
                entry["vm_type"] = catalog.names[self._columns[row]]
                entry["planned_time"] = float(self._current_te[row])
                entry["planned_cost"] = float(self._current_ce[row])
            else:
                entry["vm_type"] = None
                entry["planned_time"] = float(mod.fixed_time or 0.0)
                entry["planned_cost"] = 0.0
            if name in self._actual_time:
                entry["actual_time"] = self._actual_time[name]
            if name in self._actual_cost:
                entry["actual_cost"] = self._actual_cost[name]
            modules[name] = entry
        return {
            "status": "ok",
            "workflow_id": self.workflow_id,
            "last_seq": self.last_seq,
            "revision": self.revision,
            "complete": self.is_complete(),
            "budget": self.planning_budget,
            "total_budget": self.budget,
            "spend": self.spend,
            "projected_cost": self.projected_cost,
            "projected_makespan": self.projected_makespan,
            "remaining_budget": self.budget - self.projected_cost,
            "over_budget": self.over_budget,
            "failures": self.failures,
            "reconciliations": self.reconciliations,
            "counts": self.counts(),
            "ledger": {
                "planned_cost_of_done": self._planned_done_cost,
                "actual_cost_of_done": self.spend,
                "cost_drift": self.spend - self._planned_done_cost,
            },
            "modules": modules,
            "result": self._result_fragment(0),
        }
