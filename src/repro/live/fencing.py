"""Epoch fencing for the live-workflow log: one *enforced* writer.

Nodes sharing a ``live_dir`` (or replicating into each other's) always
assumed a single active writer per workflow — the shard router pins each
id to one node.  Fencing turns that assumption into an invariant the log
itself enforces:

* The **registration record implies epoch 1** — no extra fence line, so
  the single-node log layout (and its byte costs) are unchanged.
* A node that starts writing to a log it did not register **claims a
  lease** by appending ``{"kind": "fence", "epoch": E, "node": ...}``
  with ``E = observed_max + 1``.  Epochs only ever grow; checkpoint
  records carry the claiming epoch too, so compaction cannot roll the
  counter back.
* Before every append the writer re-checks the log.  The fast path is a
  single ``stat``: if the file size still equals the size after *our*
  last append, no foreign bytes landed and the lease stands.  On a size
  mismatch the log is re-scanned; a higher epoch than our lease means a
  peer fenced us — the append is rejected with
  :class:`~repro.exceptions.StaleEpochError`, the store catches up from
  the log, and only then re-claims ``observed + 1`` and retries.  Router
  failover therefore bumps the epoch on the first post-takeover append.

The lease is node-local bookkeeping (:class:`WriterLease`); the durable
truth is always the log.  This module owns the record format and the
lease struct; the enforcement logic lives in
:class:`~repro.live.store.LiveWorkflowManager`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

__all__ = ["WriterLease", "fence_record", "record_epoch"]


@dataclass
class WriterLease:
    """One node's view of its writer lease on a workflow log.

    Attributes
    ----------
    epoch:
        The epoch this node holds (``0`` = not claimed; claimed lazily
        on the first append, never on reads, so recovery and status
        probes leave the log untouched).
    observed:
        The highest epoch seen in the log (``max`` over fence and
        checkpoint records; ``1`` once a registration exists).
    size:
        Log size in bytes after our last append/scan.  ``-1`` = unknown,
        which forces the next lease check onto the slow scan path.
    records:
        Complete records in the log at our last observation (drives the
        replication base offset).
    """

    epoch: int = 0
    observed: int = 0
    size: int = -1
    records: int = 0


def fence_record(epoch: int, node: str | None) -> dict[str, Any]:
    """The log record claiming writer ``epoch`` for this workflow."""
    return {"kind": "fence", "epoch": int(epoch), "node": node or "unnamed"}


def record_epoch(record: Mapping[str, Any]) -> int | None:
    """The epoch a log record carries, if it is well-formed.

    Fence records carry their claimed epoch; checkpoint records repeat
    the epoch they were written under (so compacting a log down to
    registration + checkpoint preserves the fence high-water mark).
    Returns ``None`` for records of other kinds — and for fence or
    checkpoint records whose epoch field is malformed, which the caller
    treats as corruption.
    """
    if record.get("kind") not in ("fence", "checkpoint"):
        return None
    epoch = record.get("epoch")
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 1:
        return None
    return epoch
