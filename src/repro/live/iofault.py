"""Injectable filesystem layer under the live-workflow log.

Every byte the :class:`~repro.live.store.LiveWorkflowManager` persists
goes through a :class:`LogIO` instance, so the durability contract can
be tested against *simulated* hardware failures instead of hoped-for
ones:

* :class:`LogIO` — the real thing: appends with optional ``fsync``
  (directory ``fsync`` when the append creates the file), whole-file
  writes, atomic ``os.replace`` with directory sync, torn-tail
  truncation.
* :class:`FaultyLogIO` — a wrapper that (a) **counts crash-point
  boundaries** — one before the first byte of every durable mutation,
  one after each partial write, one between write and fsync, one after
  the operation — and (b) **dies at a chosen boundary** by performing
  exactly the bytes that precede it and then raising
  :class:`SimulatedCrash`.  A harness first runs a scenario with
  ``crash_at=None`` to learn the boundary count, then replays it once
  per boundary (see :mod:`repro.live.crashharness`).
* Seeded probabilistic faults (``fsync_error_prob``,
  ``replace_error_prob``) mirror :mod:`repro.service.chaos`: operation
  number ``n`` under seed ``s`` draws from its private
  ``random.Random(f"{s}:{n}")``, so a failing run replays exactly.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`:
nothing in the store (or the service layers above it) may absorb a
simulated power loss, the same way nothing absorbs a real one.
"""

from __future__ import annotations

import os
import random
from pathlib import Path
from typing import IO

from repro.exceptions import ConfigurationError

__all__ = ["SimulatedCrash", "LogIO", "FaultyLogIO"]


class SimulatedCrash(BaseException):
    """The process "died" at a fault-injection boundary.

    A ``BaseException`` so no library ``except Exception`` handler can
    swallow it — the harness alone catches it, then recovers the log
    with a fresh manager exactly like a restarted node would.
    """

    def __init__(self, boundary: int, operation: str) -> None:
        super().__init__(
            f"simulated crash at boundary {boundary} during {operation}"
        )
        self.boundary = int(boundary)
        self.operation = str(operation)


class LogIO:
    """Real filesystem primitives behind ``<live_dir>/<id>.jsonl``."""

    def size(self, path: Path) -> int | None:
        """File size in bytes, or ``None`` if the file does not exist."""
        try:
            return os.stat(path).st_size
        except FileNotFoundError:
            return None

    def open_read(self, path: Path) -> IO[bytes]:
        """Binary read handle; raises :class:`FileNotFoundError`."""
        return open(path, "rb")

    def append(self, path: Path, data: bytes, *, fsync: bool = True) -> int:
        """Append ``data`` (complete ``\\n``-terminated lines); new size.

        When ``fsync`` is set the record is forced to stable storage
        before returning — and when the append *creates* the file, the
        parent directory entry is synced too, so the file itself
        survives a crash right after the first event.
        """
        existed = path.exists()
        with open(path, "ab") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        if fsync and not existed:
            self.fsync_dir(path.parent)
        return os.stat(path).st_size

    def write_file(self, path: Path, data: bytes, *, fsync: bool = True) -> None:
        """Write a whole file (used for compaction/pull staging files)."""
        with open(path, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())

    def replace(self, src: Path, dst: Path, *, fsync: bool = True) -> None:
        """Atomic rename; with ``fsync``, the directory entry is synced."""
        os.replace(src, dst)
        if fsync:
            self.fsync_dir(dst.parent)

    def remove(self, path: Path) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def fsync_dir(self, directory: Path) -> None:
        """Sync a directory entry (rename/create durability)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except (FileNotFoundError, NotADirectoryError, PermissionError):
            return
        try:
            os.fsync(fd)
        except OSError:
            pass  # some filesystems refuse directory fsync; best effort
        finally:
            os.close(fd)

    def truncate_torn_tail(self, path: Path) -> None:
        """Drop a torn final line (crash mid-append) before the next append.

        A record counts as applied only once fully logged, so a partial
        tail was never acknowledged and is safe to discard — but it must
        go *before* new records land, or the append fuses with it into
        one unparseable merged line.  Only the active writer calls this;
        readers never mutate the log.
        """
        try:
            with open(path, "rb+") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size - 1)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                data = handle.read()
                handle.truncate(data.rfind(b"\n") + 1)
        except FileNotFoundError:
            return


class FaultyLogIO(LogIO):
    """A :class:`LogIO` that counts crash boundaries and dies on cue.

    Parameters
    ----------
    crash_at:
        Global boundary index to crash at (``None`` = count only).  The
        boundary *before* an effect crashes with none of that effect
        applied; the boundary *after* ``k`` bytes leaves exactly ``k``
        bytes on disk.
    seed / fsync_error_prob / replace_error_prob:
        Seeded probabilistic faults: the ``fsync`` step of an append (or
        the directory sync of a replace) raises :class:`OSError` with
        the drawn probability.  Deterministic per ``(seed, op number)``.
    partial_fraction:
        Where the mid-write boundary falls inside each payload
        (``0 < f < 1``; the partial write is ``max(1, int(f * len))``
        bytes, so even one-byte-per-boundary scenarios stay torn).
    """

    def __init__(
        self,
        *,
        crash_at: int | None = None,
        seed: int = 0,
        fsync_error_prob: float = 0.0,
        replace_error_prob: float = 0.0,
        partial_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < partial_fraction < 1.0:
            raise ConfigurationError(
                f"partial_fraction must be in (0, 1), got {partial_fraction}"
            )
        self.crash_at = crash_at
        self.seed = int(seed)
        self.fsync_error_prob = float(fsync_error_prob)
        self.replace_error_prob = float(replace_error_prob)
        self.partial_fraction = float(partial_fraction)
        self.boundaries = 0
        self.operations = 0
        self.crashes = 0
        self.injected_fsync_errors = 0
        self.injected_replace_errors = 0

    # ------------------------------------------------------------------ #
    # Injection plumbing
    # ------------------------------------------------------------------ #

    def _boundary(self, operation: str) -> None:
        """One crash point; raises when the counter hits ``crash_at``."""
        boundary = self.boundaries
        self.boundaries += 1
        if self.crash_at is not None and boundary == self.crash_at:
            self.crashes += 1
            raise SimulatedCrash(boundary, operation)

    def _draw(self) -> random.Random:
        rng = random.Random(f"{self.seed}:{self.operations}")
        self.operations += 1
        return rng

    def _maybe_os_error(
        self, rng: random.Random, probability: float, counter: str, what: str
    ) -> None:
        if probability > 0.0 and rng.random() < probability:
            setattr(self, counter, getattr(self, counter) + 1)
            raise OSError(f"injected {what} failure")

    # ------------------------------------------------------------------ #
    # Durable mutations (each one a crash-point ladder)
    # ------------------------------------------------------------------ #

    def append(self, path: Path, data: bytes, *, fsync: bool = True) -> int:
        rng = self._draw()
        self._boundary(f"append:{path.name}:pre")
        partial = max(1, int(len(data) * self.partial_fraction))
        existed = path.exists()
        with open(path, "ab") as handle:
            handle.write(data[:partial])
            handle.flush()
            try:
                self._boundary(f"append:{path.name}:partial")
                handle.write(data[partial:])
                handle.flush()
                self._boundary(f"append:{path.name}:pre-fsync")
            except SimulatedCrash:
                os.fsync(handle.fileno())  # the torn bytes do reach disk
                raise
            if fsync:
                self._maybe_os_error(
                    rng, self.fsync_error_prob, "injected_fsync_errors", "fsync"
                )
                os.fsync(handle.fileno())
        if fsync and not existed:
            self.fsync_dir(path.parent)
        self._boundary(f"append:{path.name}:post")
        return os.stat(path).st_size

    def write_file(self, path: Path, data: bytes, *, fsync: bool = True) -> None:
        self._draw()
        self._boundary(f"write:{path.name}:pre")
        partial = max(1, int(len(data) * self.partial_fraction))
        with open(path, "wb") as handle:
            handle.write(data[:partial])
            handle.flush()
            try:
                self._boundary(f"write:{path.name}:partial")
                handle.write(data[partial:])
                handle.flush()
                self._boundary(f"write:{path.name}:pre-fsync")
            except SimulatedCrash:
                os.fsync(handle.fileno())
                raise
            if fsync:
                os.fsync(handle.fileno())
        self._boundary(f"write:{path.name}:post")

    def replace(self, src: Path, dst: Path, *, fsync: bool = True) -> None:
        rng = self._draw()
        self._boundary(f"replace:{dst.name}:pre")
        self._maybe_os_error(
            rng, self.replace_error_prob, "injected_replace_errors", "replace"
        )
        os.replace(src, dst)
        try:
            self._boundary(f"replace:{dst.name}:pre-dirsync")
        except SimulatedCrash:
            raise
        if fsync:
            self.fsync_dir(dst.parent)
        self._boundary(f"replace:{dst.name}:post")

    def truncate_torn_tail(self, path: Path) -> None:
        # Truncation only ever removes unacknowledged bytes, so a crash
        # before/after is indistinguishable from crashing around the
        # following append's pre-boundary; no extra ladder needed.
        super().truncate_torn_tail(path)
