"""``WorkflowBroker -> ServiceClient`` replay: drive live from the sim.

The DES broker emits a deterministic machine-readable event stream
(:class:`~repro.sim.trace.EventRecord`); this module replays that stream
— optionally interleaved with budget top-ups — through any live-workflow
client: the in-process :class:`~repro.service.app.SchedulingService`,
an HTTP :class:`~repro.service.http.ServiceClient`, or the shard
router.  All three expose the same ``register_workflow`` /
``workflow_event`` / ``workflow_status`` trio, so the adapter is
transport-agnostic.

The simulation executes the *offline* plan; the live subsystem shadows
it, re-optimizing the residual DAG as reality diverges.  The report
closes the loop with the :mod:`repro.analysis.regret` metric: realized
(makespan, cost) against a clairvoyant offline schedule computed with
the realized durations under the final budget.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.analysis.regret import RegretReport, clairvoyant_regret
from repro.core.problem import MedCCProblem
from repro.core.serialize import problem_to_dict
from repro.exceptions import ServiceError
from repro.service.codec import decode_schedule

__all__ = ["ReplayReport", "replay_events", "replay_simulation"]

#: Float tolerance for the budget-respect audit (service responses go
#: through JSON, so exact ulp comparisons are not meaningful here).
_BUDGET_TOL = 1e-6


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of streaming one event sequence through a live client."""

    workflow_id: str
    events: int
    replays: int
    revision: int
    final_budget: float
    spend: float
    projected_cost: float
    projected_makespan: float
    over_budget: bool
    complete: bool
    #: Budget-respect violations ("every revised residual schedule
    #: respects the remaining budget") — empty on a healthy replay.
    violations: tuple[str, ...]
    regret: RegretReport | None = None


def _call(response: Mapping[str, Any], context: str) -> Mapping[str, Any]:
    if not isinstance(response, Mapping) or response.get("status") != "ok":
        detail = ""
        if isinstance(response, Mapping):
            detail = f": {response.get('error')}"
        raise ServiceError(f"{context} failed{detail}")
    return response


def merge_topups(
    events: Sequence[Mapping[str, Any]],
    topups: Sequence[tuple[float, float]] | None,
) -> list[dict[str, Any]]:
    """Interleave ``(time, amount)`` top-ups into an event stream.

    Top-ups are inserted before the first event at or after their
    timestamp (stably, in ascending time order) and the merged stream is
    re-sequenced 1..N — the order is fully determined by the inputs, so
    replaying the same trace with the same top-ups is deterministic.
    """
    pending = sorted(topups or [], key=lambda pair: pair[0])
    merged: list[dict[str, Any]] = []
    cursor = 0
    for event in events:
        time = float(event.get("time", 0.0) or 0.0)
        while cursor < len(pending) and pending[cursor][0] <= time:
            merged.append(
                {
                    "type": "topup",
                    "amount": float(pending[cursor][1]),
                    "time": float(pending[cursor][0]),
                }
            )
            cursor += 1
        merged.append(dict(event))
    for time, amount in pending[cursor:]:
        merged.append(
            {"type": "topup", "amount": float(amount), "time": float(time)}
        )
    for seq, event in enumerate(merged, start=1):
        event["seq"] = seq
    return merged


def replay_events(
    client: Any,
    registration: Mapping[str, Any],
    events: Sequence[Mapping[str, Any]],
    *,
    topups: Sequence[tuple[float, float]] | None = None,
) -> ReplayReport:
    """Register a plan and stream events through ``client``.

    ``registration`` is a ``POST /v1/workflows`` body; ``events`` are
    wire payloads (their ``seq`` fields are overwritten by the merged
    ordering).  Each response is audited for the budget-respect
    invariant; violations are collected, not raised, so a failing run
    still yields an inspectable report.
    """
    body = _call(client.register_workflow(dict(registration)), "registration")
    workflow_id = str(body["workflow_id"])
    violations: list[str] = []
    replays = 0
    last: Mapping[str, Any] = body
    stream = merge_topups(events, topups)
    for payload in stream:
        response = _call(
            client.workflow_event(workflow_id, payload),
            f"event seq {payload['seq']}",
        )
        if response.get("replayed"):
            replays += 1
        if (
            not response.get("over_budget")
            and float(response["remaining_budget"]) < -_BUDGET_TOL
        ):
            violations.append(
                f"seq {payload['seq']}: projected cost "
                f"{response['projected_cost']:g} exceeds budget "
                f"{response['total_budget']:g}"
            )
        last = response
    status = _call(client.workflow_status(workflow_id), "status")
    return ReplayReport(
        workflow_id=workflow_id,
        events=len(stream),
        replays=replays,
        revision=int(last.get("revision", 0)),
        final_budget=float(status["total_budget"]),
        spend=float(status["spend"]),
        projected_cost=float(status["projected_cost"]),
        projected_makespan=float(status["projected_makespan"]),
        over_budget=bool(status["over_budget"]),
        complete=bool(status.get("complete", False)),
        violations=tuple(violations),
    )


def replay_simulation(
    client: Any,
    problem: MedCCProblem,
    budget: float,
    *,
    actual_durations: Mapping[str, float] | None = None,
    faults: Any = None,
    topups: Sequence[tuple[float, float]] | None = None,
    params: Mapping[str, Any] | None = None,
    workflow_id: str | None = None,
    with_regret: bool = True,
) -> tuple[Any, ReplayReport]:
    """End-to-end: register, simulate the plan, replay, report regret.

    Registers the problem with ``client``, executes the *registered
    offline plan* on the DES broker (with optional duration drift and
    fault injection), streams the broker's event trace (plus top-ups)
    back through the live endpoints, and closes with the clairvoyant
    regret metric.  Returns ``(SimulationResult, ReplayReport)``.
    """
    from repro.sim.broker import WorkflowBroker
    from repro.sim.faults import NoFaults

    registration: dict[str, Any] = {
        "problem": problem_to_dict(problem),
        "budget": float(budget),
    }
    if params:
        registration["params"] = dict(params)
    if workflow_id is not None:
        registration["workflow_id"] = workflow_id
    body = _call(client.register_workflow(dict(registration)), "registration")
    plan = decode_schedule(body["result"]["schedule"], problem.catalog)

    broker = WorkflowBroker(
        problem,
        plan,
        faults=faults if faults is not None else NoFaults(),
        actual_durations=actual_durations,
    )
    result = broker.run()

    report = replay_events(
        client,
        registration,
        result.trace.event_payloads(),
        topups=topups,
    )
    if with_regret:
        realized = {
            record.module: float(record.duration)
            for record in result.trace.events
            if record.kind == "completed" and record.duration is not None
        }
        regret = clairvoyant_regret(
            problem,
            report.final_budget,
            schedule=plan,
            actual_durations=realized,
            realized_makespan=result.makespan,
            realized_cost=result.total_cost,
        )
        report = dataclasses.replace(report, regret=regret)
    return result, report
