"""Crash-point harness: kill the log at every boundary, prove recovery.

The durability contract of the live-workflow log is a universally
quantified claim — *whenever* the node dies, no acknowledged event is
lost and no revision is duplicated.  This harness enumerates the
"whenever" instead of sampling it:

1. **Reference run.**  A deterministic scenario (registration + a full
   started/completed/failed/topup event stream over the paper's example
   workflow) runs against the real :class:`~repro.live.iofault.LogIO`.
   Its acknowledgements and final status are the canonical answers.
2. **Boundary census.**  The same scenario runs once under a
   :class:`~repro.live.iofault.FaultyLogIO` with ``crash_at=None``,
   which counts every crash boundary: before/inside/after each append,
   checkpoint write and compaction rename.
3. **The ladder.**  One run per boundary: the scenario executes until
   :class:`~repro.live.iofault.SimulatedCrash` fires at that exact
   point, the "dead" manager is discarded, a fresh manager recovers
   from the surviving bytes, and the whole scenario is re-sent.  For
   every event acknowledged before the crash, the replayed
   acknowledgement must match the reference answer (idempotent replay,
   nothing lost); the final status must be byte-identical to the
   reference (nothing duplicated, nothing forked).
4. **Flaky-fsync phase.**  Seeded probabilistic ``fsync`` failures with
   client-side retries must still converge on the reference status.

The ladder runs with checkpointing off and on, so compaction's
write-temp + atomic-replace boundaries are part of the sweep.

Run as a module for the CI crash-recovery job::

    python -m repro.live.crashharness --out crash_recovery.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro.core.serialize import problem_to_dict
from repro.live.iofault import FaultyLogIO, SimulatedCrash
from repro.live.store import LiveWorkflowManager
from repro.service.codec import dumps
from repro.workloads.example import example_problem

__all__ = ["build_scenario", "run_ladder", "run_flaky_fsync", "run_harness"]


def build_scenario() -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """The canonical (registration, events) pair the harness replays.

    Deterministic and as adversarial as the state machine allows: every
    module goes through ``started`` → ``completed``, one schedulable
    module fails mid-flight and retries, and budget top-ups land
    mid-stream so re-optimization (revision bumps) happens between
    crashes.
    """
    problem = example_problem()
    registration = {
        "problem": problem_to_dict(problem),
        "budget": 57.0,
        "workflow_id": "crash-harness",
    }
    events: list[dict[str, Any]] = []
    seq = 0

    def emit(payload: dict[str, Any]) -> None:
        nonlocal seq
        seq += 1
        events.append({"seq": seq, **payload})

    failed_once = False
    for index, name in enumerate(problem.workflow.topological_order()):
        module = problem.workflow.module(name)
        duration = 0.5 + 0.25 * (index % 4)
        if index == 1:
            emit({"type": "topup", "amount": 3.0})
        emit({"type": "started", "module": name})
        if module.is_schedulable and not failed_once and index >= 2:
            # One failure + retry: bills sunk cost, re-plans the module.
            failed_once = True
            emit({"type": "failed", "module": name, "elapsed": 0.25})
            emit({"type": "topup", "amount": 2.0})
            emit({"type": "started", "module": name})
        emit({"type": "completed", "module": name, "duration": duration})
    return registration, events


def _strip_replayed(response: dict[str, Any]) -> str:
    """Canonical comparison form of an acknowledgement."""
    return dumps({k: v for k, v in response.items() if k != "replayed"})


def _run_scenario(
    manager: LiveWorkflowManager,
    registration: dict[str, Any],
    events: list[dict[str, Any]],
) -> tuple[dict[str, Any], dict[int, dict[str, Any]]]:
    """Drive the full scenario; returns (registration ack, per-seq acks)."""
    reg_ack = manager.register(dict(registration))
    wid = reg_ack["workflow_id"]
    acks = {event["seq"]: manager.event(wid, event) for event in events}
    return reg_ack, acks


def run_ladder(
    *, checkpoint_interval: int, workdir: Path, max_events: int | None = None
) -> dict[str, Any]:
    """The crash ladder for one configuration; returns its report.

    ``max_events`` truncates the scenario's event stream — the in-test
    smoke ladder uses a short prefix; CI sweeps the full scenario.
    """
    registration, events = build_scenario()
    if max_events is not None:
        events = events[:max_events]

    # Reference run: real IO, no faults.  Its acks are the canon.
    ref_dir = workdir / f"ref-ci{checkpoint_interval}"
    reference = LiveWorkflowManager(
        live_dir=ref_dir, checkpoint_interval=checkpoint_interval
    )
    ref_reg, ref_acks = _run_scenario(reference, registration, events)
    wid = ref_reg["workflow_id"]
    ref_status = dumps(reference.status(wid))

    # Boundary census: count crash points without crashing.
    census_io = FaultyLogIO(crash_at=None)
    census_dir = workdir / f"census-ci{checkpoint_interval}"
    census = LiveWorkflowManager(
        live_dir=census_dir, io=census_io, checkpoint_interval=checkpoint_interval
    )
    _run_scenario(census, registration, events)
    boundaries = census_io.boundaries

    violations: list[str] = []
    crashes = 0
    for boundary in range(boundaries):
        crash_dir = workdir / f"crash-ci{checkpoint_interval}-b{boundary}"
        io = FaultyLogIO(crash_at=boundary)
        doomed = LiveWorkflowManager(
            live_dir=crash_dir, io=io, checkpoint_interval=checkpoint_interval
        )
        acked: dict[int, dict[str, Any]] = {}
        registered = False
        try:
            reg_ack = doomed.register(dict(registration))
            registered = True
            for event in events:
                acked[event["seq"]] = doomed.event(wid, event)
        except SimulatedCrash:
            crashes += 1
        del doomed  # the process "died"; only the disk survives

        # Restart: recover from the surviving bytes, re-send everything.
        recovered = LiveWorkflowManager(
            live_dir=crash_dir, checkpoint_interval=checkpoint_interval
        )
        try:
            new_reg, new_acks = _run_scenario(recovered, registration, events)
        except Exception as exc:  # noqa: BLE001  # lint: ignore[RS602] - recorded as a violation
            violations.append(
                f"boundary {boundary}: recovery replay raised "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if registered and not (
            new_reg.get("replayed") is True and new_reg["workflow_id"] == wid
        ):
            # Re-registration answers with the *current* plan (revision
            # may have advanced), so the check is identity + idempotent
            # replay, not byte equality with the revision-0 ack.
            violations.append(
                f"boundary {boundary}: acked registration did not replay "
                f"idempotently after recovery"
            )
        for seq, response in acked.items():
            # Every *acknowledged* event must replay to the same answer:
            # an ack that vanished or mutated is a broken durability
            # promise to the client that holds it.
            if _strip_replayed(new_acks[seq]) != _strip_replayed(response):
                violations.append(
                    f"boundary {boundary}: acked seq {seq} diverged "
                    f"after recovery"
                )
        for seq, response in new_acks.items():
            if _strip_replayed(response) != _strip_replayed(ref_acks[seq]):
                violations.append(
                    f"boundary {boundary}: seq {seq} diverged from the "
                    f"reference answer"
                )
        final = dumps(recovered.status(wid))
        if final != ref_status:
            violations.append(
                f"boundary {boundary}: final status is not byte-identical "
                f"to the reference run"
            )
    return {
        "checkpoint_interval": checkpoint_interval,
        "boundaries": boundaries,
        "crashes": crashes,
        "events": len(events),
        "violations": violations,
    }


def run_flaky_fsync(
    *,
    workdir: Path,
    seed: int,
    probability: float = 0.25,
    retries: int = 4,
    max_events: int | None = None,
) -> dict[str, Any]:
    """Seeded fsync failures + client retries must still converge."""
    registration, events = build_scenario()
    if max_events is not None:
        events = events[:max_events]
    ref = LiveWorkflowManager(live_dir=workdir / "fsync-ref")
    ref_reg, _ref_acks = _run_scenario(ref, registration, events)
    wid = ref_reg["workflow_id"]
    ref_status = dumps(ref.status(wid))

    io = FaultyLogIO(seed=seed, fsync_error_prob=probability)
    manager = LiveWorkflowManager(live_dir=workdir / "fsync-flaky", io=io)
    violations: list[str] = []

    def send(call: Any) -> None:
        for attempt in range(retries + 1):
            try:
                call()
                return
            except OSError:
                if attempt == retries:
                    raise

    try:
        send(lambda: manager.register(dict(registration)))
        for event in events:
            send(lambda event=event: manager.event(wid, event))
    except OSError as exc:
        violations.append(f"fsync phase: retries exhausted: {exc}")
    else:
        status = dumps(manager.status(wid))
        if status != ref_status:
            violations.append(
                "fsync phase: status diverged from the reference run"
            )
        # A fresh recovery over the flaky log must agree too.
        recovered = LiveWorkflowManager(live_dir=workdir / "fsync-flaky")
        if dumps(recovered.status(wid)) != ref_status:
            violations.append(
                "fsync phase: recovered status diverged from the reference"
            )
    return {
        "seed": seed,
        "probability": probability,
        "injected_fsync_errors": io.injected_fsync_errors,
        "violations": violations,
    }


def run_harness(
    *,
    workdir: Path | None = None,
    checkpoint_intervals: tuple[int, ...] = (0, 3),
    fsync_seed: int = 20260808,
    max_events: int | None = None,
) -> dict[str, Any]:
    """Full sweep: one ladder per checkpoint config + the fsync phase."""
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="crashharness-") as tmp:
            return run_harness(
                workdir=Path(tmp),
                checkpoint_intervals=checkpoint_intervals,
                fsync_seed=fsync_seed,
                max_events=max_events,
            )
    ladders = [
        run_ladder(
            checkpoint_interval=interval, workdir=workdir, max_events=max_events
        )
        for interval in checkpoint_intervals
    ]
    fsync_phase = run_flaky_fsync(
        workdir=workdir, seed=fsync_seed, max_events=max_events
    )
    violations = [
        violation
        for report in (*ladders, fsync_phase)
        for violation in report["violations"]
    ]
    return {
        "ladders": ladders,
        "flaky_fsync": fsync_phase,
        "total_boundaries": sum(r["boundaries"] for r in ladders),
        "total_crashes": sum(r["crashes"] for r in ladders),
        "violations": violations,
        "ok": not violations,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-point fault-injection harness for the "
        "live-workflow log (see docs/service.md)"
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report to this file"
    )
    parser.add_argument(
        "--checkpoint-intervals",
        default="0,3",
        help="comma-separated checkpoint cadences to sweep (default 0,3)",
    )
    parser.add_argument(
        "--seed", type=int, default=20260808, help="flaky-fsync phase seed"
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="truncate the scenario to its first N events (smoke runs)",
    )
    args = parser.parse_args(argv)
    intervals = tuple(
        int(part) for part in args.checkpoint_intervals.split(",") if part
    )
    report = run_harness(
        checkpoint_intervals=intervals,
        fsync_seed=args.seed,
        max_events=args.max_events,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    if not report["ok"]:
        print(
            f"crashharness: {len(report['violations'])} violation(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"crashharness: ok — {report['total_boundaries']} boundaries, "
        f"{report['total_crashes']} simulated crashes, 0 violations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
