"""Stateful running-workflow subsystem (mid-flight budget re-optimization).

The offline layers compute one schedule per (workflow, budget) and stop.
Real workloads drift: modules finish early or late, VMs crash, budgets
get topped up.  ``repro.live`` keeps a registered workflow *running*:

* :class:`~repro.live.state.LiveWorkflow` — the per-workflow state
  machine.  It pins completed modules to their realized durations and
  billed costs, and on every event re-runs Critical-Greedy on the
  *residual* DAG under the *remaining* budget through one persistent
  :class:`~repro.core.fastpath.IncrementalSweep` (a single
  ``set_duration`` delta per completion instead of a from-scratch
  solve).
* :class:`~repro.live.store.LiveWorkflowManager` — the service-side
  registry: idempotent registration, per-workflow locking, an
  append-only JSONL event log under ``--live-dir`` and deterministic
  recovery replay, so a failover node resumes a workflow with no lost
  or duplicated revisions.
* :mod:`repro.live.replay` — the ``WorkflowBroker -> ServiceClient``
  adapter: turns a DES simulation trace into the live event stream and
  drives it through any client (in-process service, HTTP node, or the
  shard router).

Wire shape and idempotency contract are documented in
``docs/service.md``.
"""

from repro.live.replay import ReplayReport, replay_events, replay_simulation
from repro.live.state import EVENT_KINDS, LiveEvent, LiveWorkflow
from repro.live.store import LiveWorkflowManager

__all__ = [
    "EVENT_KINDS",
    "LiveEvent",
    "LiveWorkflow",
    "LiveWorkflowManager",
    "ReplayReport",
    "replay_events",
    "replay_simulation",
]
