"""Stateful running-workflow subsystem (mid-flight budget re-optimization).

The offline layers compute one schedule per (workflow, budget) and stop.
Real workloads drift: modules finish early or late, VMs crash, budgets
get topped up.  ``repro.live`` keeps a registered workflow *running*:

* :class:`~repro.live.state.LiveWorkflow` — the per-workflow state
  machine.  It pins completed modules to their realized durations and
  billed costs, and on every event re-runs Critical-Greedy on the
  *residual* DAG under the *remaining* budget through one persistent
  :class:`~repro.core.fastpath.IncrementalSweep` (a single
  ``set_duration`` delta per completion instead of a from-scratch
  solve).
* :class:`~repro.live.store.LiveWorkflowManager` — the service-side
  registry: idempotent registration, per-workflow locking, an
  append-only (fsynced) JSONL event log under ``--live-dir`` and
  deterministic recovery replay, so a failover node resumes a workflow
  with no lost or duplicated revisions.  Durable federation on top:
  epoch fencing (:mod:`repro.live.fencing`) enforces one active writer
  per log, checkpoints (:mod:`repro.live.checkpoint`) bound replay and
  log size via atomic compaction, and peer replication rebuilds a
  corrupt or missing log from a sibling node.
* :mod:`repro.live.iofault` / :mod:`repro.live.crashharness` — the
  injectable filesystem layer and the crash-point harness that proves
  the contract: a simulated kill at every append/checkpoint/compaction
  boundary, then recovery, must lose no acknowledged event and
  duplicate no revision.
* :mod:`repro.live.replay` — the ``WorkflowBroker -> ServiceClient``
  adapter: turns a DES simulation trace into the live event stream and
  drives it through any client (in-process service, HTTP node, or the
  shard router).

Wire shape and idempotency contract are documented in
``docs/service.md``.
"""

# Import order is load-bearing: replay pulls in repro.service first, so
# by the time service.app's own `from repro.live.store import ...` edge
# runs, checkpoint/fencing/state are imported fresh (not re-entered
# half-initialized through this package body).
from repro.live.replay import ReplayReport, replay_events, replay_simulation  # noqa: I001
from repro.live.checkpoint import build_checkpoint, verify_checkpoint
from repro.live.fencing import WriterLease, fence_record, record_epoch
from repro.live.iofault import FaultyLogIO, LogIO, SimulatedCrash
from repro.live.state import EVENT_KINDS, LiveEvent, LiveWorkflow
from repro.live.store import MAX_RECORD_BYTES, LiveWorkflowManager, PeerLink

__all__ = [
    "EVENT_KINDS",
    "FaultyLogIO",
    "LiveEvent",
    "LiveWorkflow",
    "LiveWorkflowManager",
    "LogIO",
    "MAX_RECORD_BYTES",
    "PeerLink",
    "ReplayReport",
    "SimulatedCrash",
    "WriterLease",
    "build_checkpoint",
    "fence_record",
    "record_epoch",
    "replay_events",
    "replay_simulation",
    "verify_checkpoint",
]
