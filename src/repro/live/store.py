"""Service-side registry of live workflows: locking, logging, recovery.

:class:`LiveWorkflowManager` owns every :class:`~repro.live.state.LiveWorkflow`
on a node and enforces the durability contract behind the idempotent
event protocol:

* **Registration is content-addressed.**  Ids default to
  :func:`repro.service.keys.derive_workflow_id`, so a retried or
  re-routed registration of the same (problem, algorithm, budget,
  params) lands on the existing workflow and replays its response
  instead of forking a duplicate; re-using an id with a *different*
  registration is a 409.
* **Append-before-apply.**  With a ``live_dir`` configured, each
  accepted event is appended to ``<live_dir>/<id>.jsonl`` *after*
  validation but *before* the state mutation.  A node that dies between
  append and reply leaves a log the failover node replays to the exact
  same state (the state machine is deterministic), and the client's
  retried event is answered idempotently from the rebuilt history — no
  lost or duplicated revisions.
* **Recovery is lazy.**  An event or status request for an id this node
  has never seen falls back to the shared ``live_dir``; a torn final
  line (crash mid-append) is dropped, matching the "applied only if
  fully logged" reading of the protocol.  The active writer also
  truncates any torn tail back to the last complete line before its
  next append, so a new (acknowledged) record can never fuse with a
  partial one into a corrupt merged line.

Nodes sharing a ``live_dir`` assume a single *active* writer per
workflow id — the shard router pins each id to one node and only moves
it on failover (see ``docs/service.md``).  A node whose in-memory copy
went stale because the shard briefly moved to a peer (transient fault,
then back) detects the gap on the next event — the peer's appended
records make the incoming seq look out-of-order — and *catches up* from
the log before answering, so split-brain windows heal instead of
wedging the stream on 409s.  Duplicate log records from such windows
are benign: recovery replays them idempotently.
"""

from __future__ import annotations

import os
import re
import threading
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import (
    ConfigurationError,
    EventConflictError,
    LiveLogCorruptionError,
    LiveWorkflowError,
    ServiceError,
    UnknownWorkflowError,
)
from repro.live.state import LiveWorkflow
from repro.service.codec import decode_problem, dumps, event_digest, loads
from repro.service.keys import canonical_problem_payload, derive_workflow_id

__all__ = ["LiveWorkflowManager", "ParsedRegistration"]

#: Workflow ids become file names; keep them shell- and path-safe.
_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Scheduler knobs a registration may override.
_ALLOWED_PARAMS = frozenset({"candidate_scope", "transfer_aware", "engine"})


@dataclass(frozen=True)
class ParsedRegistration:
    """A validated ``POST /v1/workflows`` payload."""

    workflow_id: str
    problem: MedCCProblem
    budget: float
    algorithm: str
    params: dict[str, Any]
    digest: str
    raw: dict[str, Any]


@dataclass
class _Entry:
    workflow: LiveWorkflow
    registration_digest: str
    lock: threading.RLock = field(default_factory=threading.RLock)


class LiveWorkflowManager:
    """Registry + durability layer for the live-workflow endpoints."""

    def __init__(self, *, live_dir: str | Path | None = None) -> None:
        self._lock = threading.Lock()
        self._workflows: dict[str, _Entry] = {}
        self._live_dir = Path(live_dir) if live_dir else None
        if self._live_dir is not None:
            self._live_dir.mkdir(parents=True, exist_ok=True)
        self._registered = 0
        self._recovered = 0
        self._events = 0
        self._replays = 0
        self._resyncs = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def parse_registration(self, payload: object) -> ParsedRegistration:
        """Validate a registration payload (400 on any malformation)."""
        if not isinstance(payload, Mapping):
            raise LiveWorkflowError("registration payload must be a JSON object")
        if not isinstance(payload.get("problem"), Mapping):
            raise LiveWorkflowError(
                "registration requires a 'problem' object"
            )
        problem = decode_problem(payload["problem"])
        budget = payload.get("budget")
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise LiveWorkflowError("registration field 'budget' must be a number")
        budget = float(budget)
        algorithm = payload.get("algorithm", CriticalGreedyScheduler.name)
        if algorithm != CriticalGreedyScheduler.name:
            raise LiveWorkflowError(
                f"live workflows require algorithm "
                f"{CriticalGreedyScheduler.name!r}, got {algorithm!r}"
            )
        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise LiveWorkflowError("registration field 'params' must be an object")
        params = {str(k): params[k] for k in sorted(params)}
        unknown = set(params) - _ALLOWED_PARAMS
        if unknown:
            raise LiveWorkflowError(
                f"unsupported scheduler params for live workflows: "
                f"{sorted(unknown)}"
            )
        workflow_id = payload.get("workflow_id")
        if workflow_id is None:
            workflow_id = derive_workflow_id(
                payload["problem"], algorithm, budget, params
            )
        elif not isinstance(workflow_id, str) or not _ID_RE.match(workflow_id):
            raise LiveWorkflowError(
                "registration field 'workflow_id' must match "
                f"{_ID_RE.pattern}"
            )
        digest = event_digest(
            {
                "workflow_id": workflow_id,
                "problem": canonical_problem_payload(payload["problem"]),
                "budget": budget,
                "algorithm": algorithm,
                "params": params,
            }
        )
        return ParsedRegistration(
            workflow_id=workflow_id,
            problem=problem,
            budget=budget,
            algorithm=algorithm,
            params=params,
            digest=digest,
            raw=dict(payload),
        )

    def register(self, payload: object) -> dict[str, Any]:
        """Register a plan (or replay an identical prior registration)."""
        parsed = self.parse_registration(payload)
        entry = self._find_entry(parsed.workflow_id)
        if entry is not None:
            return self._replay_registration(parsed, entry)

        workflow = self._build_workflow(parsed)
        new_entry = _Entry(workflow, parsed.digest)
        # Publish, then log, holding the entry lock across both: racing
        # registrations converge on one surviving entry so only the race
        # winner appends the registration record, and an event for the
        # new id cannot reach the log first — event() must take the
        # entry lock this thread holds until the record is durable.
        with new_entry.lock:
            with self._lock:
                existing = self._workflows.setdefault(
                    parsed.workflow_id, new_entry
                )
                if existing is new_entry:
                    self._registered += 1
            if existing is new_entry:
                self._append_log(
                    parsed.workflow_id,
                    {"kind": "registration", "payload": parsed.raw},
                )
                return workflow.registration_response()
        # Lost a registration race; answer from the surviving entry.
        return self._replay_registration(parsed, existing)

    def _replay_registration(
        self, parsed: ParsedRegistration, entry: _Entry
    ) -> dict[str, Any]:
        if entry.registration_digest != parsed.digest:
            raise EventConflictError(
                f"workflow {parsed.workflow_id!r} is already registered "
                "with a different problem/budget/params",
                workflow_id=parsed.workflow_id,
            )
        with entry.lock:
            response = entry.workflow.registration_response()
        response["replayed"] = True
        return response

    def _build_workflow(self, parsed: ParsedRegistration) -> LiveWorkflow:
        try:
            scheduler = CriticalGreedyScheduler(**parsed.params)
        except ConfigurationError as exc:
            raise LiveWorkflowError(f"invalid scheduler params: {exc}") from exc
        plan = scheduler.solve(parsed.problem, parsed.budget)
        return LiveWorkflow(
            parsed.workflow_id,
            parsed.problem,
            parsed.budget,
            plan,
            candidate_scope=scheduler.candidate_scope,
            transfer_aware=scheduler.transfer_aware,
        )

    # ------------------------------------------------------------------ #
    # Events and status
    # ------------------------------------------------------------------ #

    def event(self, workflow_id: str, payload: object) -> dict[str, Any]:
        """Apply (or idempotently replay) one event; returns the response."""
        entry = self._require_entry(workflow_id)
        with entry.lock:
            try:
                prepared = entry.workflow.prepare(payload)
            except EventConflictError:
                # The sequence looks wrong *to this node* — but a failover
                # peer may have applied the missing events to the shared
                # log while our in-memory copy went stale.  Catch up from
                # the log and re-validate before answering 409.
                if not self._catch_up(workflow_id, entry):
                    raise
                prepared = entry.workflow.prepare(payload)
            if isinstance(prepared, dict):
                with self._lock:
                    self._replays += 1
                return prepared
            event, digest = prepared
            self._append_log(workflow_id, {"kind": "event", "payload": payload})
            response = entry.workflow.commit(event, digest)
        with self._lock:
            self._events += 1
        return response

    def status(self, workflow_id: str) -> dict[str, Any]:
        """The status/ledger body for ``GET /v1/workflows/<id>``."""
        entry = self._require_entry(workflow_id)
        with entry.lock:
            if self._live_dir is not None:
                # Status reads are rare; fold in anything a failover peer
                # logged so operators never see a stale ledger.
                self._catch_up(workflow_id, entry)
            return entry.workflow.status_payload()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            workflows = len(self._workflows)
            complete = 0
            revisions = 0
            for entry in self._workflows.values():
                if entry.workflow.is_complete():
                    complete += 1
                revisions += entry.workflow.revision
            return {
                "workflows": workflows,
                "complete": complete,
                "registered": self._registered,
                "recovered": self._recovered,
                "events": self._events,
                "replays": self._replays,
                "resyncs": self._resyncs,
                "revisions": revisions,
            }

    # ------------------------------------------------------------------ #
    # Durable log + recovery
    # ------------------------------------------------------------------ #

    def _log_path(self, workflow_id: str) -> Path | None:
        if self._live_dir is None:
            return None
        return self._live_dir / f"{workflow_id}.jsonl"

    def _append_log(self, workflow_id: str, record: Mapping[str, Any]) -> None:
        path = self._log_path(workflow_id)
        if path is None:
            return
        _truncate_torn_tail(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(dumps(record) + "\n")

    def _find_entry(self, workflow_id: str) -> _Entry | None:
        with self._lock:
            entry = self._workflows.get(workflow_id)
        if entry is not None:
            return entry
        return self._recover(workflow_id)

    def _require_entry(self, workflow_id: str) -> _Entry:
        entry = self._find_entry(workflow_id)
        if entry is None:
            raise UnknownWorkflowError(workflow_id)
        return entry

    def _read_log(self, workflow_id: str) -> list[dict[str, Any]] | None:
        """Parse ``<live_dir>/<id>.jsonl``; ``None`` if there is no log."""
        path = self._log_path(workflow_id)
        if path is None or not path.exists():
            return None
        records: list[dict[str, Any]] = []
        lines = path.read_text(encoding="utf-8").splitlines()
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(loads(line))
            except ServiceError:
                if position == len(lines) - 1:
                    break  # torn tail from a crash mid-append: not applied
                raise LiveLogCorruptionError(
                    f"corrupt live log for workflow {workflow_id!r} "
                    f"at line {position + 1}",
                    workflow_id=workflow_id,
                ) from None
        return records

    def _catch_up(self, workflow_id: str, entry: _Entry) -> bool:
        """Apply events a failover peer appended while this node's
        in-memory copy went stale (the router moved the shard away and
        back).  Caller holds ``entry.lock``; returns ``True`` if any
        logged event was newly applied."""
        records = self._read_log(workflow_id)
        if not records:
            return False
        applied = False
        for record in records[1:]:
            if record.get("kind") != "event":
                continue  # duplicate registration records are benign
            payload = record.get("payload")
            seq = payload.get("seq") if isinstance(payload, Mapping) else None
            if isinstance(seq, bool) or not isinstance(seq, int):
                continue
            if seq <= entry.workflow.last_seq:
                continue
            entry.workflow.handle_event(payload)
            applied = True
        if applied:
            with self._lock:
                self._resyncs += 1
        return applied

    def _recover(self, workflow_id: str) -> _Entry | None:
        """Rebuild a workflow from its event log (failover takeover)."""
        if not _ID_RE.match(workflow_id or ""):
            return None
        records = self._read_log(workflow_id)
        if records is None:
            return None
        if not records:
            # Only a torn first line: the registration was never
            # acknowledged, so the workflow does not exist yet.
            return None
        if records[0].get("kind") != "registration":
            raise LiveLogCorruptionError(
                f"live log for workflow {workflow_id!r} has no "
                "registration record",
                workflow_id=workflow_id,
            )
        parsed = self._parse_logged_registration(
            workflow_id, records[0].get("payload")
        )
        if parsed.workflow_id != workflow_id:
            raise LiveLogCorruptionError(
                f"live log for workflow {workflow_id!r} registers "
                f"{parsed.workflow_id!r}",
                workflow_id=workflow_id,
            )
        workflow = self._build_workflow(parsed)
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "registration":
                # Two nodes racing the same registration through a shared
                # live_dir during a failover window can both append the
                # record.  An identical duplicate is benign; a divergent
                # one means the log serves two masters.
                duplicate = self._parse_logged_registration(
                    workflow_id, record.get("payload")
                )
                if duplicate.digest != parsed.digest:
                    raise LiveLogCorruptionError(
                        f"live log for workflow {workflow_id!r} has a "
                        "second registration record with a different "
                        "problem/budget/params",
                        workflow_id=workflow_id,
                    )
                continue
            if kind != "event":
                raise LiveLogCorruptionError(
                    f"live log for workflow {workflow_id!r} has an "
                    f"unexpected {kind!r} record",
                    workflow_id=workflow_id,
                )
            try:
                workflow.handle_event(record.get("payload"))
            except LiveWorkflowError as exc:
                # A logged event the deterministic state machine rejects
                # is server-side history damage, not a client error.
                raise LiveLogCorruptionError(
                    f"live log for workflow {workflow_id!r} does not "
                    f"replay: {exc}",
                    workflow_id=workflow_id,
                ) from exc
        new_entry = _Entry(workflow, parsed.digest)
        with self._lock:
            entry = self._workflows.setdefault(workflow_id, new_entry)
            if entry is new_entry:
                self._recovered += 1
        return entry

    def _parse_logged_registration(
        self, workflow_id: str, payload: object
    ) -> ParsedRegistration:
        try:
            return self.parse_registration(payload)
        except LiveWorkflowError as exc:
            raise LiveLogCorruptionError(
                f"live log for workflow {workflow_id!r} has an "
                f"unparseable registration record: {exc}",
                workflow_id=workflow_id,
            ) from exc


def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn final line (crash mid-append) before the next append.

    A record counts as applied only once fully logged, so a partial tail
    was never acknowledged and is safe to discard — but it must go
    *before* new records land, or the append fuses with it into one
    unparseable merged line (a lost acknowledged event while it is the
    tail, a fatally corrupt middle line once more records follow).  Only
    the active writer calls this; readers (`_read_log` on a catch-up or
    recovery path) never mutate the log, because a stale reader could
    race the real writer's in-flight append.
    """
    try:
        with open(path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            handle.truncate(data.rfind(b"\n") + 1)
    except FileNotFoundError:
        return
