"""Service-side registry of live workflows: locking, logging, recovery.

:class:`LiveWorkflowManager` owns every :class:`~repro.live.state.LiveWorkflow`
on a node and enforces the durability contract behind the idempotent
event protocol:

* **Registration is content-addressed.**  Ids default to
  :func:`repro.service.keys.derive_workflow_id`, so a retried or
  re-routed registration of the same (problem, algorithm, budget,
  params) lands on the existing workflow and replays its response
  instead of forking a duplicate; re-using an id with a *different*
  registration is a 409.
* **Append-before-apply, fsynced.**  With a ``live_dir`` configured,
  each accepted event is appended to ``<live_dir>/<id>.jsonl`` *after*
  validation but *before* the state mutation, and (by default) forced
  to stable storage — directory entry included when the append creates
  the file — before the client is answered.  A node that dies between
  append and reply leaves a log the failover node replays to the exact
  same state (the state machine is deterministic), and the client's
  retried event is answered idempotently from the rebuilt history — no
  lost or duplicated revisions.  ``fsync=False`` trades that guarantee
  for latency and is documented as unsafe.
* **Recovery is lazy and streams.**  An event or status request for an
  id this node has never seen falls back to the ``live_dir`` log, read
  one record at a time (recovery memory is O(record), not O(log)); a
  torn final line (crash mid-append) is dropped, matching the "applied
  only if fully logged" reading of the protocol, and any single record
  larger than the per-line bound is corruption, not an allocation.  The
  active writer truncates a torn tail before its next append so an
  acknowledged record can never fuse with a partial one.
* **Epoch fencing** (:mod:`repro.live.fencing`) turns the single-active-
  writer assumption into an enforced invariant: every write re-checks
  the log (one ``stat`` on the fast path), a foreign fence with a higher
  epoch rejects the stale writer's append
  (:class:`~repro.exceptions.StaleEpochError`), forces a catch-up from
  the log, and only then re-claims ``observed + 1`` — so router failover
  bumps the epoch and split-brain windows converge on one history.
* **Checkpoints + compaction** (:mod:`repro.live.checkpoint`): every
  ``checkpoint_interval`` events the full state is snapshotted and the
  log atomically rewritten (temp file + ``os.replace``) down to
  ``registration + checkpoint``, so recovery replays from the snapshot
  instead of event 0 and log size stays bounded.  Completed workflows
  idle past the ``retention`` window are archived, then expired.
* **Peer replication**: accepted records are pushed write-through to
  sibling nodes (``POST /v1/workflows/<id>/sync``); a push failure or
  base mismatch falls back to a full resync on the next write.  On
  recovery, a *missing or corrupt* local log is rebuilt from the first
  peer that can serve it (``GET …/sync``) — the damaged log is
  quarantined beside the live one, never silently deleted — so a lost
  disk answers the stream instead of a terminal 500.
* **Injectable I/O** (:mod:`repro.live.iofault`): every durable byte
  goes through a :class:`~repro.live.iofault.LogIO`, so the crash-point
  harness (:mod:`repro.live.crashharness`) can kill the node at every
  append/checkpoint/compaction boundary and assert that no acknowledged
  event is lost and no revision duplicated.

Without peers, readers never mutate a shared ``live_dir`` (a stale
reader must not race the active writer's in-flight append); quarantine
and pull-repair only engage when replication peers are configured.
"""

from __future__ import annotations

import os
import re
import threading
import time
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core.problem import MedCCProblem
from repro.exceptions import (
    ConfigurationError,
    EventConflictError,
    LiveLogCorruptionError,
    LiveWorkflowError,
    ReproError,
    ServiceError,
    StaleEpochError,
    UnknownWorkflowError,
)
from repro.live.checkpoint import build_checkpoint, verify_checkpoint
from repro.live.fencing import WriterLease, fence_record, record_epoch
from repro.live.iofault import LogIO
from repro.live.state import LiveWorkflow
from repro.service.codec import decode_problem, dumps, event_digest, loads
from repro.service.keys import canonical_problem_payload, derive_workflow_id

__all__ = ["LiveWorkflowManager", "ParsedRegistration", "PeerLink", "MAX_RECORD_BYTES"]

#: Workflow ids become file names; keep them shell- and path-safe.
_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Scheduler knobs a registration may override.
_ALLOWED_PARAMS = frozenset({"candidate_scope", "transfer_aware", "engine"})

#: Per-record size bound for log reads and sync imports.  A single
#: record beyond this is corruption (or a hostile peer), not a reason to
#: balloon recovery memory.
MAX_RECORD_BYTES = 8 * 1024 * 1024


class PeerLink(Protocol):
    """A replication link to a sibling node (see ``http.HttpPeer``)."""

    def fetch(self, workflow_id: str) -> list[str] | None:
        """Full log lines for ``workflow_id``, or ``None`` if absent."""
        ...

    def push(
        self, workflow_id: str, base_records: int | None, records: list[str]
    ) -> int:
        """Replicate ``records`` after the first ``base_records`` lines
        (``None`` = full reset); returns the peer's new record count."""
        ...


@dataclass(frozen=True)
class ParsedRegistration:
    """A validated ``POST /v1/workflows`` payload."""

    workflow_id: str
    problem: MedCCProblem
    budget: float
    algorithm: str
    params: dict[str, Any]
    digest: str
    raw: dict[str, Any]


@dataclass
class _Entry:
    workflow: LiveWorkflow
    registration_digest: str
    registration_record: dict[str, Any] | None = None
    lock: threading.RLock = field(default_factory=threading.RLock)
    lease: WriterLease = field(default_factory=WriterLease)
    checkpoint_seq: int = 0
    events_since_checkpoint: int = 0


class LiveWorkflowManager:
    """Registry + durability layer for the live-workflow endpoints.

    Parameters
    ----------
    live_dir:
        Directory for the per-workflow JSONL logs; ``None`` keeps state
        in memory only (no durability, no replication).
    io:
        Filesystem layer for every durable mutation; tests inject a
        :class:`~repro.live.iofault.FaultyLogIO` here.
    fsync:
        Force each append/compaction to stable storage before the
        client is answered.  Turning this off is **unsafe**: an
        acknowledged event can vanish on power loss.
    node:
        Name recorded in fence records (diagnostics only).
    peers:
        Replication links (:class:`PeerLink`) to sibling nodes.
    checkpoint_interval:
        Snapshot + compact the log every N accepted events; ``0``
        disables checkpointing.
    retention:
        Seconds of idleness after which a *completed* workflow's log is
        archived (and an archived log expired); ``None`` keeps
        everything forever.
    """

    def __init__(
        self,
        *,
        live_dir: str | Path | None = None,
        io: LogIO | None = None,
        fsync: bool = True,
        node: str | None = None,
        peers: Sequence[PeerLink] = (),
        checkpoint_interval: int = 0,
        retention: float | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._workflows: dict[str, _Entry] = {}
        self._live_dir = Path(live_dir) if live_dir else None
        if self._live_dir is not None:
            self._live_dir.mkdir(parents=True, exist_ok=True)
        self._io = io if io is not None else LogIO()
        self._fsync = bool(fsync)
        self._node = node
        self._peers: list[PeerLink] = list(peers)
        #: (peer index, workflow id) -> records confirmed replicated.
        self._peer_acked: dict[tuple[int, str], int] = {}
        if isinstance(checkpoint_interval, bool) or not isinstance(
            checkpoint_interval, int
        ) or checkpoint_interval < 0:
            raise ConfigurationError(
                "checkpoint_interval must be a non-negative integer, "
                f"got {checkpoint_interval!r}"
            )
        self._checkpoint_interval = checkpoint_interval
        if retention is not None and (
            isinstance(retention, bool) or float(retention) <= 0
        ):
            raise ConfigurationError(
                f"retention must be a positive number of seconds, got {retention!r}"
            )
        self._retention = None if retention is None else float(retention)
        self._registered = 0
        self._recovered = 0
        self._events = 0
        self._replays = 0
        self._resyncs = 0
        self._fenced = 0
        self._epoch_claims = 0
        self._checkpoints = 0
        self._compactions = 0
        self._archived = 0
        self._expired = 0
        self._pulls = 0
        self._quarantined = 0
        self._pushes = 0
        self._push_failures = 0
        self._sync_imports = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def parse_registration(self, payload: object) -> ParsedRegistration:
        """Validate a registration payload (400 on any malformation)."""
        if not isinstance(payload, Mapping):
            raise LiveWorkflowError("registration payload must be a JSON object")
        if not isinstance(payload.get("problem"), Mapping):
            raise LiveWorkflowError(
                "registration requires a 'problem' object"
            )
        problem = decode_problem(payload["problem"])
        budget = payload.get("budget")
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise LiveWorkflowError("registration field 'budget' must be a number")
        budget = float(budget)
        algorithm = payload.get("algorithm", CriticalGreedyScheduler.name)
        if algorithm != CriticalGreedyScheduler.name:
            raise LiveWorkflowError(
                f"live workflows require algorithm "
                f"{CriticalGreedyScheduler.name!r}, got {algorithm!r}"
            )
        params = payload.get("params") or {}
        if not isinstance(params, Mapping):
            raise LiveWorkflowError("registration field 'params' must be an object")
        params = {str(k): params[k] for k in sorted(params)}
        unknown = set(params) - _ALLOWED_PARAMS
        if unknown:
            raise LiveWorkflowError(
                f"unsupported scheduler params for live workflows: "
                f"{sorted(unknown)}"
            )
        workflow_id = payload.get("workflow_id")
        if workflow_id is None:
            workflow_id = derive_workflow_id(
                payload["problem"], algorithm, budget, params
            )
        elif not isinstance(workflow_id, str) or not _ID_RE.match(workflow_id):
            raise LiveWorkflowError(
                "registration field 'workflow_id' must match "
                f"{_ID_RE.pattern}"
            )
        digest = event_digest(
            {
                "workflow_id": workflow_id,
                "problem": canonical_problem_payload(payload["problem"]),
                "budget": budget,
                "algorithm": algorithm,
                "params": params,
            }
        )
        return ParsedRegistration(
            workflow_id=workflow_id,
            problem=problem,
            budget=budget,
            algorithm=algorithm,
            params=params,
            digest=digest,
            raw=dict(payload),
        )

    def register(self, payload: object) -> dict[str, Any]:
        """Register a plan (or replay an identical prior registration)."""
        parsed = self.parse_registration(payload)
        entry = self._find_entry(parsed.workflow_id)
        if entry is not None:
            return self._replay_registration(parsed, entry)

        workflow = self._build_workflow(parsed)
        record = {"kind": "registration", "payload": parsed.raw}
        new_entry = _Entry(workflow, parsed.digest, registration_record=record)
        # Publish, then log, holding the entry lock across both: racing
        # registrations converge on one surviving entry so only the race
        # winner appends the registration record, and an event for the
        # new id cannot reach the log first — event() must take the
        # entry lock this thread holds until the record is durable.
        with new_entry.lock:
            with self._lock:
                existing = self._workflows.setdefault(
                    parsed.workflow_id, new_entry
                )
                if existing is new_entry:
                    self._registered += 1
            if existing is new_entry:
                # The registration record *is* the epoch-1 fence: the
                # registering node holds the writer lease without an
                # extra log line.
                line = dumps(record)
                self._append_line(
                    parsed.workflow_id, new_entry, line, claim_epoch=1
                )
                self._replicate(parsed.workflow_id, new_entry, [line])
                return workflow.registration_response()
        # Lost a registration race; answer from the surviving entry.
        return self._replay_registration(parsed, existing)

    def _replay_registration(
        self, parsed: ParsedRegistration, entry: _Entry
    ) -> dict[str, Any]:
        if entry.registration_digest != parsed.digest:
            raise EventConflictError(
                f"workflow {parsed.workflow_id!r} is already registered "
                "with a different problem/budget/params",
                workflow_id=parsed.workflow_id,
            )
        with entry.lock:
            response = entry.workflow.registration_response()
        response["replayed"] = True
        return response

    def _build_workflow(self, parsed: ParsedRegistration) -> LiveWorkflow:
        try:
            scheduler = CriticalGreedyScheduler(**parsed.params)
        except ConfigurationError as exc:
            raise LiveWorkflowError(f"invalid scheduler params: {exc}") from exc
        plan = scheduler.solve(parsed.problem, parsed.budget)
        return LiveWorkflow(
            parsed.workflow_id,
            parsed.problem,
            parsed.budget,
            plan,
            candidate_scope=scheduler.candidate_scope,
            transfer_aware=scheduler.transfer_aware,
        )

    # ------------------------------------------------------------------ #
    # Events and status
    # ------------------------------------------------------------------ #

    def event(self, workflow_id: str, payload: object) -> dict[str, Any]:
        """Apply (or idempotently replay) one event; returns the response."""
        entry = self._require_entry(workflow_id)
        compacted = False
        with entry.lock:
            if self._live_dir is not None:
                # Writer-lease check first: a fenced node catches up and
                # re-claims here, so prepare() below validates the event
                # against the converged history, not a stale copy.
                self._ensure_writer(workflow_id, entry)
            try:
                prepared = entry.workflow.prepare(payload)
            except EventConflictError:
                # The sequence looks wrong *to this node* — but a failover
                # peer may have applied the missing events to the shared
                # log while our in-memory copy went stale.  Catch up from
                # the log and re-validate before answering 409.
                if not self._catch_up(workflow_id, entry):
                    raise
                prepared = entry.workflow.prepare(payload)
            if isinstance(prepared, dict):
                with self._lock:
                    self._replays += 1
                return prepared
            event, digest = prepared
            line = dumps({"kind": "event", "payload": payload})
            self._append_line(workflow_id, entry, line)
            response = entry.workflow.commit(event, digest)
            if self._live_dir is not None:
                entry.events_since_checkpoint += 1
                self._replicate(workflow_id, entry, [line])
                compacted = self._maybe_checkpoint(workflow_id, entry)
        with self._lock:
            self._events += 1
        if compacted:
            # Outside the entry lock: retention touches other entries.
            self.enforce_retention()
        return response

    def status(self, workflow_id: str) -> dict[str, Any]:
        """The status/ledger body for ``GET /v1/workflows/<id>``."""
        entry = self._require_entry(workflow_id)
        with entry.lock:
            if self._live_dir is not None:
                # Status reads fold in anything a failover peer logged so
                # operators never see a stale ledger; the unchanged-size
                # fast path keeps this one stat() when nothing moved.
                self._catch_up(workflow_id, entry)
            return entry.workflow.status_payload()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            entries = list(self._workflows.items())
            acked = dict(self._peer_acked)
            counters = {
                "registered": self._registered,
                "recovered": self._recovered,
                "events": self._events,
                "replays": self._replays,
                "resyncs": self._resyncs,
                "fenced": self._fenced,
                "epoch_claims": self._epoch_claims,
                "checkpoints": self._checkpoints,
                "compactions": self._compactions,
                "archived": self._archived,
                "expired": self._expired,
                "pulls": self._pulls,
                "quarantined": self._quarantined,
                "pushes": self._pushes,
                "push_failures": self._push_failures,
                "sync_imports": self._sync_imports,
            }
        complete = 0
        revisions = 0
        max_epoch = 0
        last_checkpoint_seq = 0
        lag = 0
        for workflow_id, entry in entries:
            if entry.workflow.is_complete():
                complete += 1
            revisions += entry.workflow.revision
            max_epoch = max(max_epoch, entry.lease.epoch, entry.lease.observed)
            last_checkpoint_seq = max(last_checkpoint_seq, entry.checkpoint_seq)
            for index in range(len(self._peers)):
                behind = entry.lease.records - acked.get((index, workflow_id), 0)
                if behind > 0:
                    lag += behind
        return {
            "workflows": len(entries),
            "complete": complete,
            "revisions": revisions,
            "peers": len(self._peers),
            "fsync": self._fsync,
            "max_epoch": max_epoch,
            "last_checkpoint_seq": last_checkpoint_seq,
            "replication_lag": lag,
            **counters,
        }

    # ------------------------------------------------------------------ #
    # Durable log: append path + writer lease
    # ------------------------------------------------------------------ #

    def _log_path(self, workflow_id: str) -> Path | None:
        if self._live_dir is None:
            return None
        return self._live_dir / f"{workflow_id}.jsonl"

    def _append_line(
        self,
        workflow_id: str,
        entry: _Entry,
        line: str,
        *,
        claim_epoch: int | None = None,
    ) -> None:
        """Append one durable record; updates the lease observation."""
        path = self._log_path(workflow_id)
        if path is None:
            return
        self._io.truncate_torn_tail(path)
        size = self._io.append(
            path, (line + "\n").encode("utf-8"), fsync=self._fsync
        )
        entry.lease.size = size
        entry.lease.records += 1
        if claim_epoch is not None:
            entry.lease.epoch = claim_epoch
            entry.lease.observed = max(entry.lease.observed, claim_epoch)

    def _ensure_writer(self, workflow_id: str, entry: _Entry) -> None:
        """Enforce the single-writer invariant before a write.

        Caller holds ``entry.lock``.  A fenced node (foreign fence with
        a higher epoch) has already been caught up by the lease check;
        it re-claims ``observed + 1`` and proceeds, so the client's
        event is validated against the converged history.
        """
        try:
            self._check_lease(workflow_id, entry)
        except StaleEpochError as exc:
            with self._lock:
                self._fenced += 1
            self._claim(workflow_id, entry, exc.observed + 1)

    def _check_lease(self, workflow_id: str, entry: _Entry) -> None:
        """Raise :class:`StaleEpochError` if a peer fenced this writer.

        Fast path: one ``stat`` — an unchanged file size means no
        foreign bytes landed since our last append, so the lease stands.
        A mismatch re-scans the log (folding in foreign records) and
        compares epochs.  An unclaimed lease (recovered entry) claims
        lazily here, on the first *write*; reads never claim.
        """
        path = self._log_path(workflow_id)
        if path is None:
            return
        lease = entry.lease
        size = self._io.size(path)
        if size is None or size != lease.size:
            self._fold_log(workflow_id, entry)
        if lease.epoch == 0:
            self._claim(workflow_id, entry, lease.observed + 1)
        elif lease.observed > lease.epoch:
            raise StaleEpochError(
                workflow_id, epoch=lease.epoch, observed=lease.observed
            )

    def _claim(self, workflow_id: str, entry: _Entry, epoch: int) -> None:
        """Claim the writer lease by appending a fence record."""
        line = dumps(fence_record(epoch, self._node))
        self._append_line(workflow_id, entry, line, claim_epoch=epoch)
        with self._lock:
            self._epoch_claims += 1
        self._replicate(workflow_id, entry, [line])

    # ------------------------------------------------------------------ #
    # Checkpoints, compaction, retention
    # ------------------------------------------------------------------ #

    def _maybe_checkpoint(self, workflow_id: str, entry: _Entry) -> bool:
        """Snapshot + compact when the interval elapsed.

        Compaction is atomic: the compacted image (registration +
        checkpoint) is written to a temp file, fsynced, and swapped in
        with one ``os.replace`` — at every instant the on-disk log is
        either the full history or the compacted one.  If the rewrite
        fails (e.g. an injected replace fault), the checkpoint record is
        *appended* instead: the snapshot still lands durably and a later
        interval retries the compaction.  Returns whether a compaction
        happened (the caller then runs retention outside the lock).
        """
        if (
            self._checkpoint_interval <= 0
            or entry.events_since_checkpoint < self._checkpoint_interval
        ):
            return False
        path = self._log_path(workflow_id)
        if path is None or entry.registration_record is None:
            return False
        checkpoint_line = dumps(
            build_checkpoint(entry.workflow, epoch=max(entry.lease.epoch, 1))
        )
        registration_line = dumps(entry.registration_record)
        data = (registration_line + "\n" + checkpoint_line + "\n").encode("utf-8")
        tmp = path.with_name(path.name + ".compact.tmp")
        try:
            self._io.write_file(tmp, data, fsync=self._fsync)
            self._io.replace(tmp, path, fsync=self._fsync)
        except OSError:
            self._io.remove(tmp)
            self._append_line(workflow_id, entry, checkpoint_line)
            entry.checkpoint_seq = entry.workflow.last_seq
            entry.events_since_checkpoint = 0
            with self._lock:
                self._checkpoints += 1
            self._replicate(workflow_id, entry, [checkpoint_line])
            return False
        entry.lease.size = len(data)
        entry.lease.records = 2
        entry.checkpoint_seq = entry.workflow.last_seq
        entry.events_since_checkpoint = 0
        with self._lock:
            self._checkpoints += 1
            self._compactions += 1
        # Peers' append offsets no longer exist; push the compacted log.
        self._replicate(workflow_id, entry, None)
        return True

    def enforce_retention(self, *, now: float | None = None) -> int:
        """Archive idle completed workflows; expire idle archives.

        A completed workflow whose log has been idle for ``retention``
        seconds moves to ``<live_dir>/archive/`` and leaves memory; an
        archived log idle for another window is deleted.  Busy entries
        (lock held) are skipped and picked up next time.  Returns the
        number of logs archived or expired.
        """
        if self._retention is None or self._live_dir is None:
            return 0
        if now is None:
            now = time.time()
        archive_dir = self._live_dir / "archive"
        actions = 0
        with self._lock:
            items = list(self._workflows.items())
        for workflow_id, entry in items:
            if not entry.lock.acquire(blocking=False):
                continue
            try:
                if not entry.workflow.is_complete():
                    continue
                path = self._log_path(workflow_id)
                if path is None:
                    continue
                try:
                    mtime = os.stat(path).st_mtime
                except FileNotFoundError:
                    continue
                if now - mtime < self._retention:
                    continue
                archive_dir.mkdir(parents=True, exist_ok=True)
                try:
                    self._io.replace(
                        path, archive_dir / path.name, fsync=self._fsync
                    )
                    # The expiry window starts at archive time, not at
                    # the log's last append (replace preserves mtime).
                    os.utime(archive_dir / path.name, (now, now))
                except OSError:
                    continue
                with self._lock:
                    self._workflows.pop(workflow_id, None)
                    self._archived += 1
                actions += 1
            finally:
                entry.lock.release()
        try:
            archived = sorted(archive_dir.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            archived = []
        for stale in archived:
            try:
                if now - stale.stat().st_mtime < self._retention:
                    continue
            except FileNotFoundError:
                continue
            self._io.remove(stale)
            with self._lock:
                self._expired += 1
            actions += 1
        return actions

    # ------------------------------------------------------------------ #
    # Peer replication
    # ------------------------------------------------------------------ #

    def _replicate(
        self, workflow_id: str, entry: _Entry, lines: list[str] | None
    ) -> None:
        """Write-through push to every peer; best-effort.

        ``lines`` are the records just appended (``None`` forces a full
        resync, e.g. after compaction).  A peer whose confirmed offset
        does not match our base — or whose push fails — is resynced with
        the whole log on this or the next write; the local log remains
        the source of truth either way, and a peer that missed pushes
        can still pull on demand.
        """
        if not self._peers or self._live_dir is None:
            return
        path = self._log_path(workflow_id)
        if path is None:
            return
        base = None if lines is None else entry.lease.records - len(lines)
        full: list[str] | None = None
        for index, peer in enumerate(self._peers):
            key = (index, workflow_id)
            with self._lock:
                acked = self._peer_acked.get(key)
            try:
                if lines is None or acked != base:
                    if full is None:
                        full = [
                            raw
                            for _record, raw in self._iter_records(
                                workflow_id, path
                            )
                        ]
                    count = peer.push(workflow_id, None, full)
                else:
                    count = peer.push(workflow_id, base, list(lines))
            except (ReproError, OSError):
                with self._lock:
                    self._peer_acked.pop(key, None)
                    self._push_failures += 1
            else:
                with self._lock:
                    self._peer_acked[key] = count
                    self._pushes += 1

    def sync_export(self, workflow_id: str) -> dict[str, Any]:
        """``GET /v1/workflows/<id>/sync``: the raw log for a peer."""
        if not isinstance(workflow_id, str) or not _ID_RE.match(workflow_id):
            raise UnknownWorkflowError(str(workflow_id))
        path = self._log_path(workflow_id)
        if path is None or self._io.size(path) is None:
            raise UnknownWorkflowError(workflow_id)
        lines = [raw for _record, raw in self._iter_records(workflow_id, path)]
        if not lines:
            # Only a torn first line: nothing was ever acknowledged.
            raise UnknownWorkflowError(workflow_id)
        return {
            "status": "ok",
            "workflow_id": workflow_id,
            "count": len(lines),
            "records": lines,
        }

    def sync_import(self, workflow_id: str, payload: object) -> dict[str, Any]:
        """``POST /v1/workflows/<id>/sync``: accept replicated records.

        ``{"reset": true, "records": [...]}`` atomically replaces the
        local replica with the sender's full log (temp file +
        ``os.replace``); ``{"base_records": N, "records": [...]}``
        appends after the first N records — a count mismatch is a 409,
        telling the sender to fall back to a full resync.
        """
        if not isinstance(workflow_id, str) or not _ID_RE.match(workflow_id):
            raise LiveWorkflowError("sync target workflow id is invalid")
        if self._live_dir is None:
            raise LiveWorkflowError(
                "this node has no live_dir; it cannot accept replicated records"
            )
        if not isinstance(payload, Mapping):
            raise LiveWorkflowError("sync payload must be a JSON object")
        records = payload.get("records")
        if not isinstance(records, list) or not records:
            raise LiveWorkflowError(
                "sync field 'records' must be a non-empty array of log lines"
            )
        parsed: list[Mapping[str, Any]] = []
        for raw in records:
            if not isinstance(raw, str) or not raw.strip():
                raise LiveWorkflowError("sync records must be non-empty strings")
            if len(raw.encode("utf-8")) > MAX_RECORD_BYTES:
                raise LiveWorkflowError(
                    f"sync record exceeds the {MAX_RECORD_BYTES}-byte bound"
                )
            try:
                record = loads(raw)
            except ServiceError:
                raise LiveWorkflowError(
                    "sync records must be JSON objects"
                ) from None
            if not isinstance(record, Mapping) or not isinstance(
                record.get("kind"), str
            ):
                raise LiveWorkflowError("sync records must carry a 'kind'")
            parsed.append(record)
        path = self._log_path(workflow_id)
        assert path is not None
        data = ("\n".join(records) + "\n").encode("utf-8")
        # The IO handle is immutable after __init__; bind it outside the
        # sync-lock regions so it never reads as lock-guarded state.
        io = self._io
        if payload.get("reset"):
            if parsed[0].get("kind") != "registration":
                raise LiveWorkflowError(
                    "a sync reset must start with the registration record"
                )
            with self._sync_lock:
                tmp = path.with_name(path.name + ".sync.tmp")
                io.write_file(tmp, data, fsync=self._fsync)
                io.replace(tmp, path, fsync=self._fsync)
                with self._lock:
                    # The imported log is authoritative; a loaded copy
                    # rebuilds from it on its next access.
                    self._workflows.pop(workflow_id, None)
                    self._sync_imports += 1
            total = len(records)
        else:
            base = payload.get("base_records")
            if isinstance(base, bool) or not isinstance(base, int) or base < 1:
                raise LiveWorkflowError(
                    "sync field 'base_records' must be a positive integer "
                    "(or pass \"reset\": true)"
                )
            with self._sync_lock:
                current = self._count_records(path)
                if current != base:
                    raise EventConflictError(
                        f"sync base mismatch for workflow {workflow_id!r}: "
                        f"sender appends at record {base}, local log has "
                        f"{current}",
                        workflow_id=workflow_id,
                    )
                io.truncate_torn_tail(path)
                io.append(path, data, fsync=self._fsync)
                with self._lock:
                    entry = self._workflows.get(workflow_id)
                    self._sync_imports += 1
                if entry is not None:
                    # Force this node's next lease check onto the scan
                    # path so it folds the imported records in.
                    entry.lease.size = -1
            total = base + len(records)
        return {"status": "ok", "workflow_id": workflow_id, "records": total}

    def _pull_from_peer(self, workflow_id: str, *, quarantine: bool) -> bool:
        """Anti-entropy pull: rebuild the local log from the first peer
        that can serve it.  With ``quarantine`` the damaged local log is
        set aside (``<id>.jsonl.quarantined``) first — never silently
        deleted.  Returns whether a log was installed."""
        path = self._log_path(workflow_id)
        if path is None or not self._peers:
            return False
        for peer in self._peers:
            try:
                lines = peer.fetch(workflow_id)
            except (ReproError, OSError):
                continue
            if not lines or not all(
                isinstance(raw, str)
                and raw.strip()
                and len(raw.encode("utf-8")) <= MAX_RECORD_BYTES
                for raw in lines
            ):
                continue
            data = ("\n".join(lines) + "\n").encode("utf-8")
            io = self._io
            try:
                with self._sync_lock:
                    if quarantine and io.size(path) is not None:
                        io.replace(
                            path,
                            path.with_name(path.name + ".quarantined"),
                            fsync=self._fsync,
                        )
                        with self._lock:
                            self._quarantined += 1
                    tmp = path.with_name(path.name + ".pull.tmp")
                    io.write_file(tmp, data, fsync=self._fsync)
                    io.replace(tmp, path, fsync=self._fsync)
            except OSError:
                continue
            with self._lock:
                self._pulls += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Streaming log reads + recovery
    # ------------------------------------------------------------------ #

    def _iter_records(
        self, workflow_id: str, path: Path
    ) -> Iterator[tuple[Mapping[str, Any], str]]:
        """Stream ``(record, raw line)`` pairs from a log.

        Reads one bounded line at a time, so recovery memory is
        O(record) regardless of log length.  An unterminated final
        chunk is a torn tail from a crash mid-append — never
        acknowledged, silently dropped.  Anything else that does not
        parse into a JSON object, or any record over
        :data:`MAX_RECORD_BYTES`, is corruption.
        """
        try:
            handle = self._io.open_read(path)
        except FileNotFoundError:
            return
        with handle:
            while True:
                line = handle.readline(MAX_RECORD_BYTES + 1)
                if not line:
                    return
                if len(line) > MAX_RECORD_BYTES:
                    raise LiveLogCorruptionError(
                        f"live log for workflow {workflow_id!r} has a "
                        f"record longer than {MAX_RECORD_BYTES} bytes",
                        workflow_id=workflow_id,
                    )
                if not line.endswith(b"\n"):
                    # readline only returns an unterminated chunk at
                    # EOF, so this is by construction the final line.
                    return
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = loads(stripped.decode("utf-8"))
                except (ServiceError, UnicodeDecodeError):
                    record = None
                if not isinstance(record, Mapping):
                    raise LiveLogCorruptionError(
                        f"corrupt live log for workflow {workflow_id!r}: "
                        "unparseable record",
                        workflow_id=workflow_id,
                    )
                yield record, stripped.decode("utf-8")

    def _count_records(self, path: Path) -> int:
        """Complete (newline-terminated) records currently on disk."""
        if self._io.size(path) is None:
            return 0
        count = 0
        try:
            handle = self._io.open_read(path)
        except FileNotFoundError:
            return 0
        with handle:
            while True:
                line = handle.readline(MAX_RECORD_BYTES + 1)
                if not line or not line.endswith(b"\n"):
                    return count
                if line.strip():
                    count += 1

    def _find_entry(self, workflow_id: str) -> _Entry | None:
        with self._lock:
            entry = self._workflows.get(workflow_id)
        if entry is not None:
            return entry
        return self._recover(workflow_id)

    def _require_entry(self, workflow_id: str) -> _Entry:
        entry = self._find_entry(workflow_id)
        if entry is None:
            raise UnknownWorkflowError(workflow_id)
        return entry

    def _load_checkpoint(
        self, workflow_id: str, workflow: LiveWorkflow, state: Mapping[str, Any]
    ) -> None:
        try:
            workflow.load_state(state)
        except LiveWorkflowError as exc:
            raise LiveLogCorruptionError(
                f"live log for workflow {workflow_id!r} has a checkpoint "
                f"that does not restore: {exc}",
                workflow_id=workflow_id,
            ) from exc

    def _fold_log(self, workflow_id: str, entry: _Entry) -> bool:
        """Stream the log and fold in foreign records.

        Applies events past the in-memory ``last_seq`` and checkpoints
        ahead of it (a compaction may have dropped the events in
        between), and refreshes the lease observation (size, record
        count, max epoch).  Caller holds ``entry.lock``.  Returns
        whether any state was newly applied.
        """
        path = self._log_path(workflow_id)
        if path is None:
            return False
        size = self._io.size(path)
        if size is None:
            return False
        lease = entry.lease
        observed = 0
        records = 0
        applied = False
        for record, _raw in self._iter_records(workflow_id, path):
            records += 1
            kind = record.get("kind")
            if kind == "registration":
                observed = max(observed, 1)
                continue
            epoch = record_epoch(record)
            if epoch is not None:
                observed = max(observed, epoch)
            if kind == "checkpoint":
                seq, state = verify_checkpoint(record, workflow_id=workflow_id)
                if seq > entry.workflow.last_seq:
                    self._load_checkpoint(workflow_id, entry.workflow, state)
                    applied = True
                entry.checkpoint_seq = max(entry.checkpoint_seq, seq)
                continue
            if kind != "event":
                continue  # fences, duplicate registrations: no state
            payload = record.get("payload")
            seq = payload.get("seq") if isinstance(payload, Mapping) else None
            if isinstance(seq, bool) or not isinstance(seq, int):
                continue
            if seq <= entry.workflow.last_seq:
                continue
            entry.workflow.handle_event(payload)
            applied = True
        lease.size = size
        lease.records = records
        lease.observed = max(lease.observed, observed)
        if applied:
            with self._lock:
                self._resyncs += 1
        return applied

    def _catch_up(self, workflow_id: str, entry: _Entry) -> bool:
        """Fold in events a failover peer appended while this node's
        in-memory copy went stale.  Caller holds ``entry.lock``; returns
        ``True`` if any logged record was newly applied."""
        path = self._log_path(workflow_id)
        if path is None:
            return False
        size = self._io.size(path)
        if size is not None and size == entry.lease.size:
            return False  # nothing new on disk
        return self._fold_log(workflow_id, entry)

    def _recover(self, workflow_id: str) -> _Entry | None:
        """Rebuild a workflow from its event log (failover takeover).

        A corrupt — or, with peers configured, missing — log is rebuilt
        from the first peer that can serve it; the damaged original is
        quarantined, never silently discarded.  Without peers the
        corruption propagates as a 500-class error (readers must not
        mutate a shared ``live_dir``).
        """
        if not isinstance(workflow_id, str) or not _ID_RE.match(workflow_id or ""):
            return None
        if self._live_dir is None:
            return None
        try:
            entry = self._recover_from_log(workflow_id)
        except LiveLogCorruptionError:
            if not self._peers or not self._pull_from_peer(
                workflow_id, quarantine=True
            ):
                raise
            entry = self._recover_from_log(workflow_id)
        if entry is None and self._peers:
            if self._pull_from_peer(workflow_id, quarantine=False):
                entry = self._recover_from_log(workflow_id)
        return entry

    def _recover_from_log(self, workflow_id: str) -> _Entry | None:
        path = self._log_path(workflow_id)
        assert path is not None
        size = self._io.size(path)
        if size is None:
            return None
        parsed: ParsedRegistration | None = None
        workflow: LiveWorkflow | None = None
        registration_record: dict[str, Any] | None = None
        records = 0
        observed = 0
        checkpoint_seq = 0
        for record, _raw in self._iter_records(workflow_id, path):
            records += 1
            kind = record.get("kind")
            if kind == "registration":
                observed = max(observed, 1)
                if workflow is None:
                    parsed = self._parse_logged_registration(
                        workflow_id, record.get("payload")
                    )
                    if parsed.workflow_id != workflow_id:
                        raise LiveLogCorruptionError(
                            f"live log for workflow {workflow_id!r} registers "
                            f"{parsed.workflow_id!r}",
                            workflow_id=workflow_id,
                        )
                    workflow = self._build_workflow(parsed)
                    registration_record = {
                        "kind": "registration",
                        "payload": parsed.raw,
                    }
                    continue
                # Two nodes racing the same registration through a shared
                # live_dir during a failover window can both append the
                # record.  An identical duplicate is benign; a divergent
                # one means the log serves two masters.
                duplicate = self._parse_logged_registration(
                    workflow_id, record.get("payload")
                )
                if duplicate.digest != parsed.digest:
                    raise LiveLogCorruptionError(
                        f"live log for workflow {workflow_id!r} has a "
                        "second registration record with a different "
                        "problem/budget/params",
                        workflow_id=workflow_id,
                    )
                continue
            if workflow is None:
                raise LiveLogCorruptionError(
                    f"live log for workflow {workflow_id!r} has no "
                    "registration record",
                    workflow_id=workflow_id,
                )
            if kind == "fence":
                epoch = record_epoch(record)
                if epoch is None:
                    raise LiveLogCorruptionError(
                        f"live log for workflow {workflow_id!r} has a "
                        "malformed fence record",
                        workflow_id=workflow_id,
                    )
                observed = max(observed, epoch)
                continue
            if kind == "checkpoint":
                epoch = record_epoch(record)
                if epoch is None:
                    raise LiveLogCorruptionError(
                        f"live log for workflow {workflow_id!r} has a "
                        "checkpoint without a valid epoch",
                        workflow_id=workflow_id,
                    )
                observed = max(observed, epoch)
                seq, state = verify_checkpoint(record, workflow_id=workflow_id)
                if seq > workflow.last_seq:
                    self._load_checkpoint(workflow_id, workflow, state)
                checkpoint_seq = max(checkpoint_seq, seq)
                continue
            if kind != "event":
                raise LiveLogCorruptionError(
                    f"live log for workflow {workflow_id!r} has an "
                    f"unexpected {kind!r} record",
                    workflow_id=workflow_id,
                )
            try:
                workflow.handle_event(record.get("payload"))
            except LiveWorkflowError as exc:
                # A logged event the deterministic state machine rejects
                # is server-side history damage, not a client error.
                raise LiveLogCorruptionError(
                    f"live log for workflow {workflow_id!r} does not "
                    f"replay: {exc}",
                    workflow_id=workflow_id,
                ) from exc
        if workflow is None or parsed is None:
            # Only a torn first line: the registration was never
            # acknowledged, so the workflow does not exist yet.
            return None
        new_entry = _Entry(
            workflow, parsed.digest, registration_record=registration_record
        )
        new_entry.lease = WriterLease(
            epoch=0, observed=observed, size=size, records=records
        )
        new_entry.checkpoint_seq = checkpoint_seq
        with self._lock:
            entry = self._workflows.setdefault(workflow_id, new_entry)
            if entry is new_entry:
                self._recovered += 1
        return entry

    def _parse_logged_registration(
        self, workflow_id: str, payload: object
    ) -> ParsedRegistration:
        try:
            return self.parse_registration(payload)
        except LiveWorkflowError as exc:
            raise LiveLogCorruptionError(
                f"live log for workflow {workflow_id!r} has an "
                f"unparseable registration record: {exc}",
                workflow_id=workflow_id,
            ) from exc
