"""Checkpoint records and log compaction for the live-workflow log.

A checkpoint is a full :meth:`~repro.live.state.LiveWorkflow.snapshot_state`
embedded in the log::

    {"kind": "checkpoint", "seq": N, "epoch": E,
     "state": {...}, "digest": sha256(canonical state)}

Recovery that meets a valid checkpoint loads the snapshot (bitwise
identical to replaying events 1..N — the restore path recomputes every
derived array with the event path's own arithmetic and state floats
round-trip JSON exactly) and replays only the tail.  Compaction then
rewrites the log as ``registration + checkpoint`` via a temp file and
one atomic ``os.replace``: at every instant the on-disk log is either
the full history or the compacted one, never a torn mixture.

The digest is verified before a checkpoint is trusted; a mismatch (bit
rot, a torn compaction the filesystem half-applied despite the rename
contract) is :class:`~repro.exceptions.LiveLogCorruptionError`, which
the store heals from a replication peer when one is configured.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.exceptions import LiveLogCorruptionError
from repro.live.state import LiveWorkflow
from repro.service.codec import event_digest

__all__ = ["build_checkpoint", "verify_checkpoint"]


def build_checkpoint(workflow: LiveWorkflow, *, epoch: int) -> dict[str, Any]:
    """The checkpoint record for ``workflow``'s current state."""
    state = workflow.snapshot_state()
    return {
        "kind": "checkpoint",
        "seq": workflow.last_seq,
        "epoch": int(epoch),
        "state": state,
        "digest": event_digest(state),
    }


def verify_checkpoint(
    record: Mapping[str, Any], *, workflow_id: str
) -> tuple[int, Mapping[str, Any]]:
    """Validate a logged checkpoint record → ``(seq, state)``.

    Raises :class:`LiveLogCorruptionError` on a malformed record or a
    digest that does not match the embedded state — a checkpoint that
    cannot be trusted must never be loaded, because a silently wrong
    snapshot would fork the replica's history.
    """
    seq = record.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        raise LiveLogCorruptionError(
            f"live log for workflow {workflow_id!r} has a checkpoint "
            "with an invalid seq",
            workflow_id=workflow_id,
        )
    state = record.get("state")
    if not isinstance(state, Mapping):
        raise LiveLogCorruptionError(
            f"live log for workflow {workflow_id!r} has a checkpoint "
            "without a state object",
            workflow_id=workflow_id,
        )
    digest = record.get("digest")
    if not isinstance(digest, str) or event_digest(state) != digest:
        raise LiveLogCorruptionError(
            f"live log for workflow {workflow_id!r} has a checkpoint "
            f"at seq {seq} whose digest does not match its state",
            workflow_id=workflow_id,
        )
    return seq, state
