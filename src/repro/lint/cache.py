"""Content-hash incremental cache for the source-tree lint pipeline.

A cold ``repro lint --self --deep`` parses every module, runs the RA9xx
per-file rules, builds the project index and runs the RT7xx/RN8xx flow
rules.  The cache makes warm runs skip *all* of that: per file it stores
the content sha256 alongside the raw (pre-suppression, pre-baseline)
findings **and** the suppression-pragma map, so an unchanged file needs
nothing but a read + hash; for the flow pass it stores the findings
under a *project* digest (the hash of every file's ``(relpath, sha256)``
pair), so the whole-program analysis reruns only when any file changed.

Invalidation is purely content-addressed — no mtimes — which makes the
cache safe to restore in CI from an actions cache keyed on source
hashes.  The stored ``signature`` (hash of the registered rule ids and
the cache format version, computed by the runner) discards the cache
wholesale when the rule set or the format changes.  A missing, corrupt
or mismatched cache never fails a run; it just means a cold start.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

__all__ = ["LintCache", "file_digest", "project_digest"]

#: Bump to discard caches whose stored shape this module can no longer read.
CACHE_FORMAT_VERSION = 1

#: ``(rule id, lineno, message, suggestion)`` — per-file raw finding.
FileFinding = tuple[str, int, str, str | None]
#: ``(rule id, relpath, lineno, message, suggestion)`` — flow raw finding.
FlowFinding = tuple[str, str, int, str, str | None]
#: lineno → suppressed rule ids (``None`` = all rules).
PragmaMap = dict[int, frozenset[str] | None]


def file_digest(data: bytes) -> str:
    """Content address of one source file."""
    return hashlib.sha256(data).hexdigest()


def project_digest(files: dict[str, str]) -> str:
    """Content address of the whole tree (relpath → file digest)."""
    hasher = hashlib.sha256()
    for relpath in sorted(files):
        hasher.update(relpath.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(files[relpath].encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _encode_pragmas(pragmas: PragmaMap) -> dict[str, list[str] | None]:
    return {
        str(lineno): (sorted(rules) if rules is not None else None)
        for lineno, rules in pragmas.items()
    }


def _decode_pragmas(raw: Any) -> PragmaMap | None:
    if not isinstance(raw, dict):
        return None
    out: PragmaMap = {}
    for key, value in raw.items():
        try:
            lineno = int(key)
        except (TypeError, ValueError):
            return None
        if value is None:
            out[lineno] = None
        elif isinstance(value, list) and all(isinstance(r, str) for r in value):
            out[lineno] = frozenset(value)
        else:
            return None
    return out


class LintCache:
    """Read side + write side of the incremental cache (one JSON file)."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._files: dict[str, dict[str, Any]] = {}
        self._flow: dict[str, Any] = {}
        #: entries accumulated for the next :meth:`save`.
        self._new_files: dict[str, dict[str, Any]] = {}
        self._new_flow: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path | str, signature: str) -> "LintCache":
        """Open a cache file; anything unusable yields an empty cache."""
        cache = cls(Path(path), signature)
        try:
            payload = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict):
            return cache
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return cache
        if payload.get("signature") != signature:
            return cache
        files = payload.get("files")
        if isinstance(files, dict):
            cache._files = files
        flow = payload.get("flow")
        if isinstance(flow, dict):
            cache._flow = flow
        return cache

    # ------------------------------------------------------------------ #
    # Per-file entries
    # ------------------------------------------------------------------ #

    def lookup_file(
        self, relpath: str, digest: str
    ) -> tuple[list[FileFinding], PragmaMap] | None:
        """Cached ``(findings, pragmas)`` when the content is unchanged."""
        entry = self._files.get(relpath)
        if not isinstance(entry, dict) or entry.get("sha256") != digest:
            self.misses += 1
            return None
        raw_findings = entry.get("findings")
        pragmas = _decode_pragmas(entry.get("pragmas"))
        if not isinstance(raw_findings, list) or pragmas is None:
            self.misses += 1
            return None
        findings: list[FileFinding] = []
        for item in raw_findings:
            if not (isinstance(item, list) and len(item) == 4):
                self.misses += 1
                return None
            rule, lineno, message, suggestion = item
            findings.append((str(rule), int(lineno), str(message), suggestion))
        self.hits += 1
        self._new_files[relpath] = entry  # hits carry over to the next save
        return findings, pragmas

    def store_file(
        self,
        relpath: str,
        digest: str,
        findings: list[FileFinding],
        pragmas: PragmaMap,
    ) -> None:
        """Record one file's raw results for the next save."""
        self._new_files[relpath] = {
            "sha256": digest,
            "findings": [list(finding) for finding in findings],
            "pragmas": _encode_pragmas(pragmas),
        }

    # ------------------------------------------------------------------ #
    # Flow (whole-program) entry
    # ------------------------------------------------------------------ #

    def lookup_flow(self, digest: str) -> list[FlowFinding] | None:
        """Cached flow findings when no file in the project changed."""
        if self._flow.get("sha256") != digest:
            return None
        raw = self._flow.get("findings")
        if not isinstance(raw, list):
            return None
        findings: list[FlowFinding] = []
        for item in raw:
            if not (isinstance(item, list) and len(item) == 5):
                return None
            rule, relpath, lineno, message, suggestion = item
            findings.append(
                (str(rule), str(relpath), int(lineno), str(message), suggestion)
            )
        return findings

    def store_flow(self, digest: str, findings: list[FlowFinding]) -> None:
        """Record the flow pass results for the next save."""
        self._new_flow = {
            "sha256": digest,
            "findings": [list(finding) for finding in findings],
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self) -> None:
        """Write the entries stored this run (stale files drop out).

        Cache-write failures are swallowed: a read-only checkout must
        still lint.
        """
        flow = self._new_flow or self._flow
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "signature": self.signature,
            "files": dict(sorted(self._new_files.items())),
            "flow": flow,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            pass
