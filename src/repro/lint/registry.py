"""Rule registry for the lint layers (domain, AST, flow and meta rules).

A rule couples a stable id and metadata (severity, scope, summary,
rationale) with a check function.  Check functions are *generators of
findings*: they yield ``(path, message)`` or ``(path, message, suggestion)``
tuples — for AST rules, ``path`` is an ``int`` line number — and the runner
wraps each finding into a full :class:`~repro.lint.diagnostics.Diagnostic`
carrying the rule's id and severity.  Keeping checks this thin makes every
rule a few lines of pure logic and puts the id/severity bookkeeping in one
place.

Flow rules (:mod:`repro.lint.flow`) are the whole-program layer: their
checks receive a :class:`~repro.lint.callgraph.ProjectIndex` (symbol
table + call graph over every linted module at once) and yield
``(relpath, lineno, message, suggestion)`` tuples.  Meta rules have no
check function at all — the runner itself emits them (parse failures,
unused suppressions); they are registered so severity lookup and the
rule catalog stay uniform.

Rule id conventions (documented in ``docs/static_analysis.md``):

* ``RW1xx`` — workflow graph rules;
* ``RC2xx`` — VM-catalog rules;
* ``RP3xx`` — problem/budget rules;
* ``RS4xx`` — schedule rules;
* ``RS6xx`` — service-response rules (``repro.service`` wire payloads);
* ``RA9xx`` — codebase AST rules (``repro lint --self``);
* ``RT7xx`` — concurrency flow rules (``repro lint --self --deep``);
* ``RN8xx`` — numeric-determinism flow rules (``--self --deep``);
* ``RL0xx`` — lint-pipeline meta rules (parse failures, stale
  suppressions, stale baseline entries).
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.exceptions import ConfigurationError
from repro.lint.diagnostics import Diagnostic, Severity

__all__ = [
    "Rule",
    "DOMAIN_SCOPES",
    "domain_rule",
    "ast_rule",
    "flow_rule",
    "meta_rule",
    "domain_rules",
    "ast_rules",
    "flow_rules",
    "meta_rules",
    "all_rules",
    "get_rule",
    "run_rule",
]

#: Valid scopes for domain rules, in report order.
DOMAIN_SCOPES = ("workflow", "catalog", "problem", "schedule", "service")

_RULE_ID = re.compile(r"^R[A-Z]\d{3}$")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule (metadata + check function)."""

    id: str
    kind: str  # "domain" | "ast"
    scope: str  # one of DOMAIN_SCOPES, or "source" for AST rules
    severity: Severity
    summary: str
    rationale: str
    check: Callable[[Any], Iterable[tuple[Any, ...]]]


_DOMAIN: dict[str, Rule] = {}
_AST: dict[str, Rule] = {}
_FLOW: dict[str, Rule] = {}
_META: dict[str, Rule] = {}

_CheckT = TypeVar("_CheckT", bound=Callable[..., Iterable[tuple[Any, ...]]])


def _register(registry: dict[str, Rule], rule: Rule) -> None:
    if not _RULE_ID.match(rule.id):
        raise ConfigurationError(f"malformed lint rule id {rule.id!r}")
    if any(rule.id in reg for reg in (_DOMAIN, _AST, _FLOW, _META)):
        raise ConfigurationError(f"lint rule {rule.id!r} registered twice")
    registry[rule.id] = rule


def domain_rule(
    rule_id: str,
    *,
    scope: str,
    severity: Severity,
    summary: str,
    rationale: str,
) -> Callable[[_CheckT], _CheckT]:
    """Decorator registering a domain rule over model objects."""
    if scope not in DOMAIN_SCOPES:
        raise ConfigurationError(
            f"unknown domain-rule scope {scope!r}; expected one of {DOMAIN_SCOPES}"
        )

    def decorator(check: _CheckT) -> _CheckT:
        _register(
            _DOMAIN,
            Rule(
                id=rule_id,
                kind="domain",
                scope=scope,
                severity=severity,
                summary=summary,
                rationale=rationale,
                check=check,
            ),
        )
        return check

    return decorator


def ast_rule(
    rule_id: str,
    *,
    severity: Severity,
    summary: str,
    rationale: str,
    scope: str = "source",
) -> Callable[[_CheckT], _CheckT]:
    """Decorator registering a codebase AST rule over source modules.

    ``scope`` defaults to ``"source"`` (the whole codebase); a rule that
    only applies inside one package — e.g. ``RS602`` over
    ``repro.service`` — declares that package's scope for the rule
    catalog while still receiving every module (the check itself guards
    on the module path).
    """

    def decorator(check: _CheckT) -> _CheckT:
        _register(
            _AST,
            Rule(
                id=rule_id,
                kind="ast",
                scope=scope,
                severity=severity,
                summary=summary,
                rationale=rationale,
                check=check,
            ),
        )
        return check

    return decorator


def flow_rule(
    rule_id: str,
    *,
    severity: Severity,
    summary: str,
    rationale: str,
    scope: str = "project",
) -> Callable[[_CheckT], _CheckT]:
    """Decorator registering a whole-program flow rule.

    Flow checks receive a :class:`~repro.lint.callgraph.ProjectIndex` and
    yield ``(relpath, lineno, message, suggestion)`` findings; they only
    run under ``repro lint --self --deep`` (or ``lint_paths(deep=True)``).
    """

    def decorator(check: _CheckT) -> _CheckT:
        _register(
            _FLOW,
            Rule(
                id=rule_id,
                kind="flow",
                scope=scope,
                severity=severity,
                summary=summary,
                rationale=rationale,
                check=check,
            ),
        )
        return check

    return decorator


def meta_rule(
    rule_id: str,
    *,
    severity: Severity,
    summary: str,
    rationale: str,
) -> Rule:
    """Register a runner-emitted meta rule (no check function of its own)."""
    rule = Rule(
        id=rule_id,
        kind="meta",
        scope="pipeline",
        severity=severity,
        summary=summary,
        rationale=rationale,
        check=lambda _target: (),
    )
    _register(_META, rule)
    return rule


def domain_rules(scope: str | None = None) -> tuple[Rule, ...]:
    """Registered domain rules, optionally restricted to one scope."""
    rules = sorted(_DOMAIN.values(), key=lambda r: r.id)
    if scope is None:
        return tuple(rules)
    return tuple(r for r in rules if r.scope == scope)


def ast_rules() -> tuple[Rule, ...]:
    """Registered AST rules, in id order."""
    return tuple(sorted(_AST.values(), key=lambda r: r.id))


def flow_rules() -> tuple[Rule, ...]:
    """Registered whole-program flow rules, in id order."""
    return tuple(sorted(_FLOW.values(), key=lambda r: r.id))


def meta_rules() -> tuple[Rule, ...]:
    """Registered runner-emitted meta rules, in id order."""
    return tuple(sorted(_META.values(), key=lambda r: r.id))


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule (domain, AST, flow, meta), in id order."""
    return domain_rules() + ast_rules() + flow_rules() + meta_rules()


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    rule = (
        _DOMAIN.get(rule_id)
        or _AST.get(rule_id)
        or _FLOW.get(rule_id)
        or _META.get(rule_id)
    )
    if rule is None:
        raise ConfigurationError(f"unknown lint rule {rule_id!r}")
    return rule


def run_rule(rule: Rule, target: Any) -> list[Diagnostic]:
    """Execute one rule's check, wrapping findings into diagnostics."""
    out: list[Diagnostic] = []
    for finding in rule.check(target):
        path, message = finding[0], finding[1]
        suggestion = finding[2] if len(finding) > 2 else None
        out.append(
            Diagnostic(
                rule=rule.id,
                severity=rule.severity,
                path=str(path),
                message=message,
                suggestion=suggestion,
            )
        )
    return out
