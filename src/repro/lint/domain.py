"""Layer 1 — domain rules over workflows, catalogs, problems and schedules.

Workflow and catalog rules run on *payload* dictionaries (the
``Workflow.to_dict()`` / ``problem_to_dict()`` shapes) rather than on
constructed objects, so broken inputs that the constructors would reject —
cyclic graphs, duplicate names, negative workloads — can still be linted
and reported with stable rule ids instead of a single exception.  Problem
and schedule rules need derived quantities (:math:`C_{min}`, matrices, the
DES trace) and therefore run on constructed objects.

Each check yields ``(path, message[, suggestion])`` findings; severity and
rule id live in the registration decorator (see :mod:`repro.lint.registry`).
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import networkx as nx

from repro.lint.diagnostics import Severity
from repro.lint.registry import domain_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.problem import MedCCProblem
    from repro.core.schedule import Schedule
    from repro.sim.broker import SimulationResult

__all__ = [
    "WorkflowFacts",
    "CatalogFacts",
    "ProblemFacts",
    "ScheduleFacts",
    "ServiceResponseFacts",
    "BUDGET_RTOL",
    "MAKESPAN_RTOL",
]

#: Relative tolerance for budget-feasibility comparisons (scaled by the
#: budget magnitude, floored at 1 so tiny budgets keep an absolute floor).
BUDGET_RTOL = 1e-9

#: Relative tolerance for analytic-vs-DES makespan agreement (RS405).
MAKESPAN_RTOL = 1e-6


def _is_bad_number(value: Any, *, allow_zero: bool = True) -> bool:
    """True when ``value`` is not a finite non-negative (or positive) number."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return True
    if not math.isfinite(number):
        return True
    return number < 0 if allow_zero else number <= 0


# --------------------------------------------------------------------- #
# Workflow facts + rules (RW1xx)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkflowFacts:
    """Pre-computed structural facts shared by the workflow rules."""

    modules: tuple[Mapping[str, Any], ...]
    edges: tuple[Mapping[str, Any], ...]
    names: tuple[str, ...]
    duplicate_names: tuple[str, ...]
    duplicate_edges: tuple[tuple[str, str], ...]
    unknown_endpoints: tuple[tuple[str, str], ...]
    graph: nx.DiGraph

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorkflowFacts":
        """Derive facts from a ``Workflow.to_dict()``-shaped mapping."""
        modules = tuple(dict(m) for m in payload.get("modules", ()))
        edges = tuple(dict(e) for e in payload.get("edges", ()))
        names: list[str] = []
        duplicates: list[str] = []
        for mod in modules:
            name = str(mod.get("name", ""))
            if name in names and name not in duplicates:
                duplicates.append(name)
            names.append(name)
        declared = set(names)

        graph = nx.DiGraph()
        graph.add_nodes_from(declared)
        dup_edges: list[tuple[str, str]] = []
        unknown: list[tuple[str, str]] = []
        for edge in edges:
            src, dst = str(edge.get("src", "")), str(edge.get("dst", ""))
            if src not in declared or dst not in declared:
                unknown.append((src, dst))
                continue
            if graph.has_edge(src, dst):
                dup_edges.append((src, dst))
                continue
            graph.add_edge(src, dst)
        return cls(
            modules=modules,
            edges=edges,
            names=tuple(names),
            duplicate_names=tuple(duplicates),
            duplicate_edges=tuple(dup_edges),
            unknown_endpoints=tuple(unknown),
            graph=graph,
        )


@domain_rule(
    "RW101",
    scope="workflow",
    severity=Severity.ERROR,
    summary="workflow graph contains a cycle",
    rationale="Schedulers and the critical-path sweep require a DAG "
    "(Section III-B); a cycle makes every downstream quantity undefined.",
)
def _rw101_acyclic(facts: WorkflowFacts) -> Iterator[tuple[str, str, str]]:
    if not nx.is_directed_acyclic_graph(facts.graph):
        cycle = nx.find_cycle(facts.graph)
        rendered = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
        yield (
            "workflow",
            f"task graph contains a cycle: {rendered}",
            "remove or reverse one dependency edge on the cycle",
        )


@domain_rule(
    "RW102",
    scope="workflow",
    severity=Severity.ERROR,
    summary="workflow must have exactly one entry module",
    rationale="The model anchors est/eft at a unique source w0; several "
    "(or zero) sources leave the forward pass and Cmin ill-defined.",
)
def _rw102_single_entry(facts: WorkflowFacts) -> Iterator[tuple[str, str, str]]:
    sources = sorted(n for n in facts.graph.nodes if facts.graph.in_degree(n) == 0)
    if len(sources) != 1:
        yield (
            "workflow",
            f"expected exactly one entry (source) module, found {sources}",
            "normalize with WorkflowBuilder.normalized() to add a virtual entry",
        )


@domain_rule(
    "RW103",
    scope="workflow",
    severity=Severity.ERROR,
    summary="workflow must have exactly one exit module",
    rationale="The makespan is eft of the unique exit module (Eq. 8); "
    "several (or zero) sinks make the end-to-end delay ambiguous.",
)
def _rw103_single_exit(facts: WorkflowFacts) -> Iterator[tuple[str, str, str]]:
    sinks = sorted(n for n in facts.graph.nodes if facts.graph.out_degree(n) == 0)
    if len(sinks) != 1:
        yield (
            "workflow",
            f"expected exactly one exit (sink) module, found {sinks}",
            "normalize with WorkflowBuilder.normalized() to add a virtual exit",
        )


@domain_rule(
    "RW104",
    scope="workflow",
    severity=Severity.ERROR,
    summary="workflow graph is disconnected",
    rationale="Disconnected components cannot both reach the exit module, "
    "so part of the workflow would never contribute to the critical path.",
)
def _rw104_connected(facts: WorkflowFacts) -> Iterator[tuple[str, str]]:
    if facts.graph.number_of_nodes() > 1:
        components = list(nx.weakly_connected_components(facts.graph))
        if len(components) > 1:
            preview = [sorted(c)[0] for c in components]
            yield (
                "workflow",
                f"task graph has {len(components)} weakly-connected components "
                f"(containing e.g. {sorted(preview)})",
            )


@domain_rule(
    "RW105",
    scope="workflow",
    severity=Severity.ERROR,
    summary="edge references an undeclared module",
    rationale="Dangling edges silently drop precedence constraints when "
    "the graph is rebuilt from a payload.",
)
def _rw105_known_endpoints(facts: WorkflowFacts) -> Iterator[tuple[str, str]]:
    for src, dst in facts.unknown_endpoints:
        yield (
            f"workflow.edge[{src}->{dst}]",
            "edge references a module that is not declared in 'modules'",
        )


@domain_rule(
    "RW106",
    scope="workflow",
    severity=Severity.ERROR,
    summary="duplicate module name or dependency edge",
    rationale="Module names key every matrix row and schedule entry; "
    "duplicates make the mapping S : w_i -> VT_j ambiguous.",
)
def _rw106_duplicates(facts: WorkflowFacts) -> Iterator[tuple[str, str]]:
    for name in facts.duplicate_names:
        yield (f"workflow.module[{name}]", "module name declared more than once")
    for src, dst in facts.duplicate_edges:
        yield (f"workflow.edge[{src}->{dst}]", "dependency edge declared twice")


@domain_rule(
    "RW107",
    scope="workflow",
    severity=Severity.ERROR,
    summary="negative or non-finite workload, fixed time, or data size",
    rationale="Eq. 6 (TE = WL/VP) and Eq. 5 (transfer time) require "
    "finite, non-negative magnitudes; negatives corrupt Cmin and the CP.",
)
def _rw107_magnitudes(facts: WorkflowFacts) -> Iterator[tuple[str, str]]:
    for mod in facts.modules:
        name = mod.get("name", "?")
        fixed = mod.get("fixed_time")
        if fixed is not None:
            if _is_bad_number(fixed):
                yield (
                    f"workflow.module[{name}]",
                    f"fixed_time must be finite and >= 0, got {fixed!r}",
                )
        elif _is_bad_number(mod.get("workload", 0.0)):
            yield (
                f"workflow.module[{name}]",
                f"workload must be finite and >= 0, got {mod.get('workload')!r}",
            )
    for edge in facts.edges:
        src, dst = edge.get("src", "?"), edge.get("dst", "?")
        if _is_bad_number(edge.get("data_size", 0.0)):
            yield (
                f"workflow.edge[{src}->{dst}]",
                f"data size must be finite and >= 0, got {edge.get('data_size')!r}",
            )


@domain_rule(
    "RW108",
    scope="workflow",
    severity=Severity.WARNING,
    summary="schedulable module with zero workload",
    rationale="A zero-workload module is free and instantaneous on every "
    "VM type; it is usually a data-staging module that should carry "
    "fixed_time instead of participating in the VM-type decision.",
)
def _rw108_zero_workload(facts: WorkflowFacts) -> Iterator[tuple[str, str, str]]:
    for mod in facts.modules:
        if mod.get("fixed_time") is None:
            try:
                workload = float(mod.get("workload", 0.0))
            except (TypeError, ValueError):
                continue
            if workload == 0.0:
                yield (
                    f"workflow.module[{mod.get('name', '?')}]",
                    "schedulable module has zero workload",
                    "set fixed_time=0.0 to mark it as a staging module",
                )


# --------------------------------------------------------------------- #
# Catalog facts + rules (RC2xx)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CatalogFacts:
    """Pre-computed facts about a VM-type catalog payload."""

    types: tuple[Mapping[str, Any], ...]

    @classmethod
    def from_payload(cls, payload: Sequence[Mapping[str, Any]]) -> "CatalogFacts":
        """Derive facts from a ``problem_to_dict()['catalog']``-shaped list."""
        return cls(types=tuple(dict(t) for t in payload))

    def valid_types(self) -> list[tuple[str, float, float]]:
        """(name, power, rate) triples for types with well-formed numbers."""
        out: list[tuple[str, float, float]] = []
        for spec in self.types:
            name = str(spec.get("name", "?"))
            try:
                power = float(spec.get("power", 0.0))
                rate = float(spec.get("rate", 0.0))
            except (TypeError, ValueError):
                continue
            if math.isfinite(power) and power > 0 and math.isfinite(rate) and rate >= 0:
                out.append((name, power, rate))
        return out


@domain_rule(
    "RC201",
    scope="catalog",
    severity=Severity.ERROR,
    summary="empty VM-type catalog",
    rationale="The MED-CC instance requires at least one VM type VT_j to "
    "map modules onto (Eq. 3).",
)
def _rc201_nonempty(facts: CatalogFacts) -> Iterator[tuple[str, str]]:
    if not facts.types:
        yield ("catalog", "catalog declares no VM types")


@domain_rule(
    "RC202",
    scope="catalog",
    severity=Severity.ERROR,
    summary="duplicate VM-type name",
    rationale="Type names key schedule renderings and catalog lookups; "
    "duplicates make index_of() ambiguous.",
)
def _rc202_unique_names(facts: CatalogFacts) -> Iterator[tuple[str, str]]:
    seen: set[str] = set()
    for spec in facts.types:
        name = str(spec.get("name", "?"))
        if name in seen:
            yield (f"catalog[{name}]", "VM type name declared more than once")
        seen.add(name)


@domain_rule(
    "RC203",
    scope="catalog",
    severity=Severity.ERROR,
    summary="non-positive power or negative charging rate",
    rationale="Eq. 6 divides by VP_j (must be > 0) and Eq. 7 multiplies "
    "by CV_j (must be >= 0); bad values poison both matrices.",
)
def _rc203_magnitudes(facts: CatalogFacts) -> Iterator[tuple[str, str]]:
    for spec in facts.types:
        name = str(spec.get("name", "?"))
        if _is_bad_number(spec.get("power", 0.0), allow_zero=False):
            yield (
                f"catalog[{name}]",
                f"processing power must be finite and > 0, got {spec.get('power')!r}",
            )
        if _is_bad_number(spec.get("rate", 0.0)):
            yield (
                f"catalog[{name}]",
                f"charging rate must be finite and >= 0, got {spec.get('rate')!r}",
            )


@domain_rule(
    "RC204",
    scope="catalog",
    severity=Severity.WARNING,
    summary="two VM types share the same (power, rate) point",
    rationale="Identical pricing points are redundant: they enlarge every "
    "per-module choice set (and MCKP class) without adding any trade-off.",
)
def _rc204_duplicate_points(facts: CatalogFacts) -> Iterator[tuple[str, str, str]]:
    seen: dict[tuple[float, float], str] = {}
    for name, power, rate in facts.valid_types():
        point = (power, rate)
        if point in seen:
            yield (
                f"catalog[{name}]",
                f"same (power={power:g}, rate={rate:g}) as type {seen[point]!r}",
                f"drop {name!r} or merge it with {seen[point]!r}",
            )
        else:
            seen[point] = name


@domain_rule(
    "RC205",
    scope="catalog",
    severity=Severity.WARNING,
    summary="dominated VM type (never optimal)",
    rationale="A type that is no faster and no cheaper than another can "
    "never appear in an optimal schedule under Eqs. 6-7: the dominating "
    "type yields lower-or-equal TE and CE for every module.",
)
def _rc205_dominated(facts: CatalogFacts) -> Iterator[tuple[str, str, str]]:
    types = facts.valid_types()
    for name, power, rate in types:
        for other_name, other_power, other_rate in types:
            if other_name == name:
                continue
            dominates = (
                other_power >= power
                and other_rate <= rate
                and (other_power > power or other_rate < rate)
            )
            if dominates:
                yield (
                    f"catalog[{name}]",
                    f"dominated by {other_name!r} "
                    f"(power {other_power:g} >= {power:g}, "
                    f"rate {other_rate:g} <= {rate:g})",
                    f"remove {name!r}; {other_name!r} is at least as fast "
                    "and no more expensive",
                )
                break


# --------------------------------------------------------------------- #
# Problem facts + rules (RP3xx)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProblemFacts:
    """A constructed problem instance plus the (optional) budget to check."""

    problem: "MedCCProblem"
    budget: float | None = None


def _budget_tol(budget: float) -> float:
    return BUDGET_RTOL * max(1.0, abs(budget))


@domain_rule(
    "RP301",
    scope="problem",
    severity=Severity.ERROR,
    summary="budget below the least-cost feasible point",
    rationale="When B < Cmin no schedule satisfies the budget constraint; "
    "Algorithm 1 (line 5) returns an error in exactly this case.",
)
def _rp301_feasible(facts: ProblemFacts) -> Iterator[tuple[str, str, str]]:
    if facts.budget is None:
        return
    cmin = facts.problem.cmin
    if facts.budget < cmin - _budget_tol(facts.budget):
        yield (
            "problem.budget",
            f"budget {facts.budget:g} is below the least-cost schedule cost "
            f"Cmin={cmin:g}; no feasible schedule exists",
            f"raise the budget to at least {cmin:g}",
        )


@domain_rule(
    "RP302",
    scope="problem",
    severity=Severity.INFO,
    summary="budget above the fastest-schedule cost",
    rationale="Budgets above Cmax are 'a waste of monetary expenses' "
    "(Section V-B): the fastest schedule is already affordable.",
)
def _rp302_excess(facts: ProblemFacts) -> Iterator[tuple[str, str]]:
    if facts.budget is None:
        return
    cmax = facts.problem.cmax
    if facts.budget > cmax + _budget_tol(facts.budget):
        yield (
            "problem.budget",
            f"budget {facts.budget:g} exceeds the fastest schedule's cost "
            f"Cmax={cmax:g}; the excess buys nothing",
        )


@domain_rule(
    "RP303",
    scope="problem",
    severity=Severity.INFO,
    summary="degenerate budget range (Cmin == Cmax)",
    rationale="With a collapsed [Cmin, Cmax] interval every budget level "
    "yields the same schedule; budget sweeps are meaningless.",
)
def _rp303_degenerate(facts: ProblemFacts) -> Iterator[tuple[str, str]]:
    lo, hi = facts.problem.budget_range()
    if math.isclose(lo, hi, rel_tol=0.0, abs_tol=_budget_tol(hi)):
        yield (
            "problem",
            f"budget range is degenerate: Cmin == Cmax == {lo:g} "
            "(often a single VM type, or one dominating all others)",
        )


@domain_rule(
    "RP304",
    scope="problem",
    severity=Severity.INFO,
    summary="transfer pricing configured but all data sizes are zero",
    rationale="A non-zero per-unit transfer charge CR (Eq. 4) has no "
    "effect when no edge carries data; likely a misconfigured instance.",
)
def _rp304_inert_transfers(facts: ProblemFacts) -> Iterator[tuple[str, str]]:
    problem = facts.problem
    if problem.transfers.unit_cost > 0.0 and all(
        e.data_size == 0.0 for e in problem.workflow.edges()
    ):
        yield (
            "problem.transfers",
            f"unit transfer cost {problem.transfers.unit_cost:g} is configured "
            "but every dependency edge has zero data size",
        )


# --------------------------------------------------------------------- #
# Schedule facts + rules (RS4xx)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScheduleFacts:
    """A schedule under inspection, with optional deep-check artifacts.

    Attributes
    ----------
    problem:
        The instance the schedule targets.
    schedule:
        The candidate schedule.
    budget:
        Budget to check RS403 against (``None`` skips the rule).
    claimed_cost:
        A cost reported by whoever produced the schedule (e.g. a
        :class:`~repro.algorithms.base.SchedulerResult`); RS406 re-derives
        the cost and flags disagreement.  ``None`` skips the rule.
    sim:
        A DES execution of the schedule, when deep checks were requested
        (``None`` skips RS404/RS405).
    """

    problem: "MedCCProblem"
    schedule: "Schedule"
    budget: float | None = None
    claimed_cost: float | None = None
    sim: "SimulationResult | None" = None

    def coverage(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """(missing, extra) module names vs the problem's schedulable set."""
        expected = set(self.problem.workflow.schedulable_names)
        actual = set(self.schedule.assignment)
        return tuple(sorted(expected - actual)), tuple(sorted(actual - expected))

    def is_well_formed(self) -> bool:
        """True when coverage and every type index are valid."""
        missing, extra = self.coverage()
        if missing or extra:
            return False
        n = self.problem.num_types
        return all(
            isinstance(j, int) and 0 <= j < n
            for j in self.schedule.assignment.values()
        )


@domain_rule(
    "RS401",
    scope="schedule",
    severity=Severity.ERROR,
    summary="schedule does not cover exactly the schedulable modules",
    rationale="The mapping S : w_i -> VT_j must be total over schedulable "
    "modules and must not invent modules; otherwise cost and makespan are "
    "undefined.",
)
def _rs401_coverage(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    missing, extra = facts.coverage()
    for name in missing:
        yield (f"schedule[{name}]", "schedulable module has no VM-type assignment")
    for name in extra:
        yield (
            f"schedule[{name}]",
            "assignment references a module that is not schedulable in the problem",
        )


@domain_rule(
    "RS402",
    scope="schedule",
    severity=Severity.ERROR,
    summary="VM-type index out of catalog range",
    rationale="Type indices address columns of TE/CE; out-of-range indices "
    "would read garbage (or crash) during evaluation.",
)
def _rs402_type_range(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    n = facts.problem.num_types
    for module, j in sorted(facts.schedule.assignment.items()):
        if not isinstance(j, int) or not 0 <= j < n:
            yield (
                f"schedule[{module}]",
                f"VM-type index {j!r} outside catalog range [0, {n})",
            )


@domain_rule(
    "RS403",
    scope="schedule",
    severity=Severity.ERROR,
    summary="schedule cost exceeds the budget",
    rationale="The budget constraint C_Total <= B (Definition 1) is the "
    "problem's only hard constraint; violating it invalidates the result.",
)
def _rs403_budget(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    if facts.budget is None or not facts.is_well_formed():
        return
    cost = facts.problem.cost_of(facts.schedule)
    if cost > facts.budget + _budget_tol(facts.budget):
        yield (
            "schedule",
            f"total cost {cost:g} exceeds budget {facts.budget:g}",
        )


@domain_rule(
    "RS404",
    scope="schedule",
    severity=Severity.ERROR,
    summary="simulated execution violates a precedence constraint",
    rationale="'A computing module cannot start execution until all its "
    "required input data arrive' — a trace where a module starts before a "
    "predecessor finishes indicates a scheduler or simulator defect.",
)
def _rs404_precedence(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    if facts.sim is None:
        return
    finish: dict[str, float] = {}
    start: dict[str, float] = {}
    for record in facts.sim.trace.tasks:
        start[record.module] = record.start
        finish[record.module] = record.finish
    tol = 1e-9
    for edge in facts.problem.workflow.edges():
        if edge.src in finish and edge.dst in start:
            if start[edge.dst] + tol < finish[edge.src]:
                yield (
                    f"schedule[{edge.dst}]",
                    f"module started at t={start[edge.dst]:g} before its "
                    f"predecessor {edge.src!r} finished at t={finish[edge.src]:g}",
                )


@domain_rule(
    "RS405",
    scope="schedule",
    severity=Severity.ERROR,
    summary="analytic and simulated makespans disagree",
    rationale="Under the model's assumptions (free transfers, zero VM "
    "startup, one VM per module) the DES makespan must equal the "
    "critical-path makespan exactly; drift means one of the two is wrong.",
)
def _rs405_makespan_consistency(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    if facts.sim is None:
        return
    # Only meaningful when the analytical model's assumptions hold; with
    # startup latency or a non-free transfer model, drift is expected.
    if not facts.problem.transfers.is_free:
        return
    if any(t.startup_time > 0 for t in facts.problem.catalog):
        return
    analytic = facts.sim.analytical_makespan
    simulated = facts.sim.makespan
    if abs(simulated - analytic) > MAKESPAN_RTOL * max(1.0, abs(analytic)):
        yield (
            "schedule",
            f"simulated makespan {simulated:g} != analytic makespan "
            f"{analytic:g} under model assumptions",
        )


# --------------------------------------------------------------------- #
# Service-response facts + rules (RS6xx)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ServiceResponseFacts:
    """A decoded ``repro.service`` solve response under inspection.

    Attributes
    ----------
    problem:
        The instance the request targeted (the client has it: it built
        the request).
    response:
        The ``/v1/solve`` response payload (``status``/``cache_hit``/
        ``result`` shape).
    budget:
        The budget of the originating request.  ``None`` falls back to
        the ``budget`` field echoed in the response.
    """

    problem: "MedCCProblem"
    response: Mapping[str, Any]
    budget: float | None = None

    def effective_budget(self) -> float | None:
        if self.budget is not None:
            return self.budget
        value = self.response.get("budget")
        try:
            return None if value is None else float(value)
        except (TypeError, ValueError):
            return None

    def decoded_schedule(self) -> "Schedule | None":
        """The response's schedule decoded against the problem's catalog.

        Returns ``None`` for error responses or undecodable payloads —
        RS601 reports the latter rather than raising.
        """
        result = self.response.get("result")
        if not isinstance(result, Mapping):
            return None
        payload = result.get("schedule")
        if not isinstance(payload, Mapping):
            return None
        from repro.exceptions import ServiceError
        from repro.service.codec import decode_schedule

        try:
            return decode_schedule(payload, self.problem.catalog)
        except ServiceError:
            return None


@domain_rule(
    "RS601",
    scope="service",
    severity=Severity.ERROR,
    summary="service response schedule violates the request budget",
    rationale="A solve response is the service's contract that C_Total <= B "
    "held for the request; a violating (or undecodable) schedule coming "
    "back over the wire means the scheduler, the codec or the cache "
    "replayed a result for the wrong request.",
)
def _rs601_response_budget(facts: ServiceResponseFacts) -> Iterator[tuple[str, str]]:
    if facts.response.get("status") != "ok":
        return  # error responses carry no schedule to validate
    schedule = facts.decoded_schedule()
    if schedule is None:
        yield (
            "response.result.schedule",
            "response carries no decodable schedule payload for this problem",
        )
        return
    budget = facts.effective_budget()
    if budget is None:
        return
    # Same feasibility check as the scheduler validation hook (RS403):
    # recompute the cost from the instance's CE matrix and compare with
    # the shared budget tolerance.
    probe = ScheduleFacts(problem=facts.problem, schedule=schedule)
    if not probe.is_well_formed():
        yield (
            "response.result.schedule",
            "decoded schedule does not cover the problem's schedulable modules",
        )
        return
    cost = facts.problem.cost_of(schedule)
    if cost > budget + _budget_tol(budget):
        yield (
            "response.result.schedule",
            f"decoded schedule costs {cost:g}, exceeding the request "
            f"budget {budget:g}",
        )


@domain_rule(
    "RS406",
    scope="schedule",
    severity=Severity.ERROR,
    summary="reported cost disagrees with the recomputed cost",
    rationale="A result whose claimed C_Total differs from the cost "
    "re-derived from CE is internally inconsistent and would corrupt "
    "every table built from it.",
)
def _rs406_claimed_cost(facts: ScheduleFacts) -> Iterator[tuple[str, str]]:
    if facts.claimed_cost is None or not facts.is_well_formed():
        return
    actual = facts.problem.cost_of(facts.schedule)
    if abs(actual - facts.claimed_cost) > _budget_tol(max(actual, facts.claimed_cost)):
        yield (
            "schedule",
            f"reported cost {facts.claimed_cost:g} differs from recomputed "
            f"cost {actual:g}",
        )
