"""``repro.lint`` — unified static analysis & invariant checking.

Three layers, one diagnostic vocabulary (see ``docs/static_analysis.md``):

* **Domain rules** (``RW``/``RC``/``RP``/``RS`` ids) check model objects —
  workflows, VM catalogs, problem instances, schedules and service
  responses — for the invariants every algorithm in this library leans
  on: DAG structure, single entry/exit, positive magnitudes,
  non-dominated catalogs, budget feasibility, precedence and
  analytic-vs-DES consistency, and budget-honest service replies.
* **AST rules** (``RA`` ids) check the codebase itself, one file at a
  time, for library conventions: no float equality on billed quantities,
  rounding only in ``core/billing.py``, ``ReproError`` subclasses
  instead of builtins, no mutable defaults, ``__all__`` everywhere
  public (an *error* in ``core/``/``service/``).
* **Flow rules** (``RT``/``RN`` ids, ``--deep``) analyze the whole
  program at once over a project symbol table + call graph
  (:mod:`repro.lint.callgraph`): lock-discipline inference and
  lock-order cycles in the service fabric, blocking calls on HTTP
  handler paths, and float-reduction-order / seeding hazards in the
  bit-identity and experiment modules.

The delivery layer makes the deep pass cheap and adoptable: a
content-hash incremental cache (:mod:`repro.lint.cache`), a committed
suppression baseline with justifications (:mod:`repro.lint.baseline`,
stale entries are themselves findings), and SARIF 2.1.0 output
(:mod:`repro.lint.sarif`) for CI annotation.

Usage::

    from repro.lint import lint_problem, lint_schedule, self_lint

    report = lint_problem(problem, budget=42.0)
    if not report.ok:
        print(report.render())

or from the command line::

    repro lint --workload example --budget 40
    repro lint --self --format json
    repro lint --self --deep --baseline lint-baseline.json \\
        --cache .lint-cache.json --strict --format sarif
    python -m repro.lint --self
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    Rule,
    all_rules,
    ast_rules,
    domain_rules,
    flow_rules,
    get_rule,
    meta_rules,
)

# Importing the rule modules registers every rule exactly once.
from repro.lint import astrules as _astrules  # noqa: F401
from repro.lint import domain as _domain  # noqa: F401
from repro.lint import flow as _flow  # noqa: F401
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.callgraph import ProjectIndex, build_index
from repro.lint.cache import LintCache
from repro.lint.sarif import render_sarif, sarif_payload
from repro.lint.runner import (
    check_scheduler_result,
    lint_catalog,
    lint_paths,
    lint_problem,
    lint_schedule,
    lint_service_response,
    lint_source_tree,
    lint_workflow,
    self_lint,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "Rule",
    "all_rules",
    "ast_rules",
    "domain_rules",
    "flow_rules",
    "meta_rules",
    "get_rule",
    "Baseline",
    "BaselineEntry",
    "ProjectIndex",
    "build_index",
    "LintCache",
    "render_sarif",
    "sarif_payload",
    "lint_workflow",
    "lint_catalog",
    "lint_problem",
    "lint_schedule",
    "lint_service_response",
    "lint_paths",
    "lint_source_tree",
    "self_lint",
    "check_scheduler_result",
]
