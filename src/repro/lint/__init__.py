"""``repro.lint`` — unified static analysis & invariant checking.

Two layers, one diagnostic vocabulary (see ``docs/static_analysis.md``):

* **Domain rules** (``RW``/``RC``/``RP``/``RS`` ids) check model objects —
  workflows, VM catalogs, problem instances, schedules and service
  responses — for the invariants every algorithm in this library leans
  on: DAG structure, single entry/exit, positive magnitudes,
  non-dominated catalogs, budget feasibility, precedence and
  analytic-vs-DES consistency, and budget-honest service replies.
* **AST rules** (``RA`` ids) check the codebase itself for library
  conventions: no float equality on billed quantities, rounding only in
  ``core/billing.py``, ``ReproError`` subclasses instead of builtins,
  no mutable defaults, ``__all__`` everywhere public.

Usage::

    from repro.lint import lint_problem, lint_schedule, self_lint

    report = lint_problem(problem, budget=42.0)
    if not report.ok:
        print(report.render())

or from the command line::

    repro lint --workload example --budget 40
    repro lint --self --format json
    python -m repro.lint --self
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    Rule,
    all_rules,
    ast_rules,
    domain_rules,
    get_rule,
)

# Importing the rule modules registers every rule exactly once.
from repro.lint import astrules as _astrules  # noqa: F401
from repro.lint import domain as _domain  # noqa: F401
from repro.lint.runner import (
    check_scheduler_result,
    lint_catalog,
    lint_paths,
    lint_problem,
    lint_schedule,
    lint_service_response,
    lint_workflow,
    self_lint,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "Rule",
    "all_rules",
    "ast_rules",
    "domain_rules",
    "get_rule",
    "lint_workflow",
    "lint_catalog",
    "lint_problem",
    "lint_schedule",
    "lint_service_response",
    "lint_paths",
    "self_lint",
    "check_scheduler_result",
]
