"""Structured diagnostics shared by the domain and AST lint layers.

A :class:`Diagnostic` is one finding: a stable rule id (``RW101``), a
severity, the path of the offending object (``workflow.module[w3]`` for
domain rules, ``src/repro/foo.py:42`` for AST rules), a human-readable
message and an optional suggested fix.  A :class:`LintReport` is an ordered,
immutable collection of diagnostics with text/JSON rendering and the exit
semantics used by the CLI (non-zero only on error severity).
"""

from __future__ import annotations

import enum
import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

__all__ = ["Severity", "Diagnostic", "LintReport"]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering follows urgency (``ERROR`` highest)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding produced by a lint rule.

    Attributes
    ----------
    rule:
        Stable rule identifier, e.g. ``"RW101"``.
    severity:
        :class:`Severity` of the finding.
    path:
        Location of the offending object — a dotted object path for domain
        rules (``"catalog[VT2]"``) or ``file:line`` for AST rules.
    message:
        Human-readable description of the violation.
    suggestion:
        Optional suggested fix, rendered after the message.
    """

    rule: str
    severity: Severity
    path: str
    message: str
    suggestion: str | None = None

    def render(self) -> str:
        """One-line text rendering, e.g. ``RW101 error workflow: …``."""
        line = f"{self.rule} {self.severity} {self.path}: {self.message}"
        if self.suggestion:
            line += f" (fix: {self.suggestion})"
        return line

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "message": self.message,
            "suggestion": self.suggestion,
        }


@dataclass(frozen=True)
class LintReport:
    """An immutable, ordered collection of diagnostics for one target.

    Attributes
    ----------
    diagnostics:
        The findings, in rule-execution order.
    target:
        Short description of what was linted (shown in renderings).
    """

    diagnostics: tuple[Diagnostic, ...] = ()
    target: str = ""

    @classmethod
    def collect(
        cls, diagnostics: Iterable[Diagnostic], *, target: str = ""
    ) -> "LintReport":
        """Build a report from any iterable of diagnostics."""
        return cls(diagnostics=tuple(diagnostics), target=target)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """Error-severity diagnostics only."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """Warning-severity diagnostics only."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were produced."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        """The set of rule ids that fired (handy for tests)."""
        return {d.rule for d in self.diagnostics}

    def merged(self, other: "LintReport") -> "LintReport":
        """Concatenate two reports, keeping the first non-empty target."""
        return LintReport(
            diagnostics=self.diagnostics + other.diagnostics,
            target=self.target or other.target,
        )

    def exit_code(self) -> int:
        """Process exit code: 1 if any error-severity diagnostic, else 0."""
        return 1 if self.errors else 0

    def summary(self) -> dict[str, int]:
        """Counts per severity name."""
        counts = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            counts[str(diag.severity)] += 1
        return counts

    def render(self, fmt: str = "text") -> str:
        """Render the report as ``"text"`` or ``"json"``."""
        if fmt == "json":
            return json.dumps(
                {
                    "target": self.target,
                    "summary": self.summary(),
                    "diagnostics": [d.to_dict() for d in self.diagnostics],
                },
                indent=2,
            )
        header = f"lint: {self.target}" if self.target else "lint:"
        if not self.diagnostics:
            return f"{header} clean"
        lines = [header]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        counts = self.summary()
        lines.append(
            f"  -- {counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)
