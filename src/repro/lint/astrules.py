"""Layer 2 — codebase AST rules (``repro lint --self`` / ``python -m repro.lint``).

These rules enforce library-wide conventions that ordinary linters cannot
know about, using nothing but :mod:`ast`:

* ``RA901`` — no float ``==``/``!=`` on cost/makespan-like quantities,
  including through reduction calls (``costs.max(axis=1) == best``);
* ``RA902`` — no ``round()``/``floor()``/``ceil()`` (scalar or numpy,
  i.e. array billing included) on billing values outside
  ``core/billing.py`` (Eq. 7's ceil semantics live there and only there,
  in ``BillingPolicy.billed_units`` and ``billed_units_array``);
* ``RA903`` — no bare ``ValueError``/``RuntimeError``/``Exception`` raises
  where a :class:`~repro.exceptions.ReproError` subclass exists;
* ``RA904`` — no mutable default arguments;
* ``RA905`` — every public module declares ``__all__``;
* ``RS602`` — (scope: ``repro.service``) no broad ``except Exception`` /
  bare ``except`` handler that neither re-raises nor records the failure
  through the service error machinery — silent swallows turn node faults
  into wrong answers instead of retryable 5xx responses.

Suppression: a trailing ``# lint: ignore[RA901]`` comment silences the
listed rules on that line; a bare ``# lint: ignore`` silences all rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.lint.diagnostics import Severity
from repro.lint.registry import ast_rule

__all__ = [
    "SourceModule",
    "iter_source_modules",
    "extract_pragmas",
    "MONEY_TOKENS",
]

#: Identifier tokens that mark a quantity as a billed/objective value.
MONEY_TOKENS = frozenset(
    {
        "cost",
        "costs",
        "makespan",
        "makespans",
        "cmin",
        "cmax",
        "budget",
        "budgets",
        "billed",
        "bill",
        "charge",
        "charges",
        "price",
        "prices",
    }
)

_IGNORE_PRAGMA = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9,\s]+)\])?")


def _parse_pragma(comment: str) -> tuple[bool, frozenset[str] | None]:
    """``(found, rules)`` — ``rules`` is ``None`` for a bare all-rule pragma."""
    match = _IGNORE_PRAGMA.search(comment)
    if not match:
        return (False, None)
    listed = match.group(1)
    if not listed:
        return (True, None)
    return (True, frozenset(r.strip() for r in listed.split(",") if r.strip()))


def extract_pragmas(text: str) -> dict[int, frozenset[str] | None]:
    """Line number → suppressed rule ids from ``# lint: ignore[...]``.

    Tokenize-based, so pragma text quoted inside strings or docstrings
    (like the example in this module's own docstring) is not mistaken
    for a live suppression.  Falls back to a raw line scan when the file
    does not tokenize — those files produce an RL003 parse finding, and
    a best-effort pragma map keeps suppression behaviour predictable.
    """
    ignores: dict[int, frozenset[str] | None] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            found, rules = _parse_pragma(tok.string)
            if found:
                ignores[tok.start[0]] = rules
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        ignores = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            found, rules = _parse_pragma(line)
            if found:
                ignores[lineno] = rules
    return ignores


@dataclass(frozen=True)
class SourceModule:
    """One parsed Python source file, ready for AST rules.

    Attributes
    ----------
    path:
        Absolute path of the file.
    relpath:
        Display path (relative to the lint root, POSIX separators).
    tree:
        Parsed module AST.
    ignores:
        Line number → suppressed rule ids (``None`` = all rules) parsed
        from ``# lint: ignore[...]`` pragmas.
    """

    path: Path
    relpath: str
    tree: ast.Module
    ignores: dict[int, frozenset[str] | None]

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "SourceModule":
        """Read and parse one source file, collecting ignore pragmas."""
        text = path.read_text(encoding="utf-8")
        try:
            rel = str(path.relative_to(root).as_posix()) if root else path.name
        except ValueError:
            rel = path.name
        return cls(
            path=path,
            relpath=rel,
            tree=ast.parse(text, filename=str(path)),
            ignores=extract_pragmas(text),
        )

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether a pragma on ``lineno`` silences ``rule_id``."""
        if lineno not in self.ignores:
            return False
        listed = self.ignores[lineno]
        return listed is None or rule_id in listed

    @property
    def stem(self) -> str:
        """File name without extension."""
        return self.path.stem

    def in_core_package(self) -> bool:
        """Whether the file lives in a ``core/`` package directory."""
        return "core" in Path(self.relpath).parts[:-1]

    def in_service_package(self) -> bool:
        """Whether the file lives in the service fabric.

        Covers both ``service/`` and ``live/``: the live-workflow
        subsystem runs on the same thread-per-request handler path and is
        held to the same concurrency and error-surfacing discipline.
        """
        parts = Path(self.relpath).parts[:-1]
        return "service" in parts or "live" in parts

    def is_billing_module(self) -> bool:
        """Whether this is ``core/billing.py`` (the rounding authority)."""
        return self.stem == "billing" and self.in_core_package()


def iter_source_modules(paths: Sequence[Path | str]) -> Iterator[SourceModule]:
    """Yield parsed source modules for the given files/directories.

    Directories are walked recursively for ``*.py`` files in sorted order,
    so diagnostics are deterministic across runs.
    """
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                yield SourceModule.parse(file, root=base)
        else:
            yield SourceModule.parse(base, root=base.parent)


# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def _identifier_of(node: ast.expr) -> str | None:
    """Terminal identifier of a Name/Attribute expression, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_money_name(node: ast.expr) -> str | None:
    """The identifier when the expression names a billed quantity."""
    ident = _identifier_of(node)
    if ident is None:
        return None
    tokens = set(ident.lower().split("_"))
    return ident if tokens & MONEY_TOKENS else None


def _mentions_money(node: ast.expr) -> str | None:
    """First billed-quantity identifier mentioned anywhere in a subtree."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Name, ast.Attribute)):
            ident = _is_money_name(child)
            if ident:
                return ident
    return None


#: Numpy folds an equality check may hide a billed quantity behind:
#: ``costs.max(axis=1) == best`` compares floats drawn from ``costs``
#: just as directly as ``costs == best`` would.
_REDUCTION_ATTRS = frozenset(
    {
        "sum",
        "nansum",
        "prod",
        "nanprod",
        "mean",
        "nanmean",
        "average",
        "std",
        "var",
        "max",
        "min",
        "nanmax",
        "nanmin",
        "amax",
        "amin",
        "cumsum",
        "cumprod",
    }
)


def _reduced_money_operand(node: ast.expr) -> str | None:
    """Money identifier hidden behind a reduction call operand.

    Looks through ``costs.max(axis=1)`` / ``np.min(budgets, axis=0)``
    style folds — the 2-D batched grids reduce whole budget rows into
    the compared value, so the equality is still on billed floats.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _REDUCTION_ATTRS):
        return None
    if isinstance(func.value, ast.Name) and func.value.id in ("np", "numpy"):
        targets: list[ast.expr] = list(node.args)
    else:
        targets = [func.value, *node.args]
    for target in targets:
        ident = _mentions_money(target)
        if ident:
            return ident
    return None


def _is_zero_literal(node: ast.expr) -> bool:
    """Whether a node is the literal ``0``/``0.0`` (or negated zero)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) == 0.0
    )


def _is_exempt_compare_operand(node: ast.expr) -> bool:
    """Operands that make an equality comparison legitimate.

    Comparing against the exact ``0``/``0.0`` sentinel, ``None``, strings
    or booleans is not a float-tolerance bug.
    """
    if _is_zero_literal(node):
        return True
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (str, bool, type(None))
    )


# --------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------- #


@ast_rule(
    "RA901",
    severity=Severity.ERROR,
    summary="float equality on a cost/makespan quantity",
    rationale="Costs, makespans and budgets are floats built from division "
    "and summation; exact == / != comparisons are order-sensitive and flip "
    "on harmless refactors.  A reduction of such a quantity "
    "(costs.max(axis=1), np.min(budgets, ...)) is the quantity — the 2-D "
    "batched grids fold whole budget rows into the compared value.  "
    "Compare with math.isclose or an explicit tolerance.  (Comparisons "
    "against the exact 0 sentinel are exempt.)",
)
def _ra901_float_equality(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_is_exempt_compare_operand(op) for op in operands):
            continue
        for operand in operands:
            ident = _is_money_name(operand)
            reduced = None if ident else _reduced_money_operand(operand)
            if ident:
                yield (
                    node.lineno,
                    f"float equality comparison on billed quantity {ident!r}",
                    "use math.isclose(...) or an explicit tolerance",
                )
                break
            if reduced:
                yield (
                    node.lineno,
                    "float equality comparison on a reduction of billed "
                    f"quantity {reduced!r}",
                    "use math.isclose(...) or an explicit tolerance",
                )
                break


@ast_rule(
    "RA902",
    severity=Severity.ERROR,
    summary="round()/floor()/ceil() on a billing value outside core/billing.py",
    rationale="Eq. 7 bills partial units by *rounding up*; every rounding "
    "decision — scalar or vectorized (math.ceil, np.ceil, np.floor on whole "
    "TE matrices) — must flow through BillingPolicy.billed_units / "
    ".billed_units_array so the ceil semantics (and its float-noise "
    "tolerance) live in exactly one place.",
)
def _ra902_rounding(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    if module.is_billing_module():
        return
    in_core = module.in_core_package()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_round = isinstance(func, ast.Name) and func.id in (
            "round",
            "floor",
            "ceil",
        )
        is_module_rounding = (
            isinstance(func, ast.Attribute)
            and func.attr in ("floor", "ceil")
            and isinstance(func.value, ast.Name)
            and func.value.id in ("math", "np", "numpy")
        )
        if not (is_round or is_module_rounding):
            continue
        money = None
        for arg in node.args:
            money = _mentions_money(arg)
            if money:
                break
        if money is None and not in_core:
            continue
        subject = (
            f"billing quantity {money!r}" if money else "a value in repro.core"
        )
        yield (
            node.lineno,
            f"round()/floor()/ceil() applied to {subject} outside core/billing.py",
            "route the value through BillingPolicy.billed_units or "
            "billed_units_array (Eq. 7)",
        )


@ast_rule(
    "RA903",
    severity=Severity.ERROR,
    summary="raises a builtin exception where a ReproError subclass exists",
    rationale="All library failures derive from ReproError so callers can "
    "catch repro errors uniformly (and the CLI can report them cleanly); "
    "bare ValueError/RuntimeError/Exception escape that contract.",
)
def _ra903_builtin_raise(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    if module.stem == "exceptions":
        return
    banned = {"ValueError", "RuntimeError", "Exception"}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        ident = _identifier_of(target)
        if ident in banned:
            yield (
                node.lineno,
                f"raises builtin {ident} directly",
                "raise a ReproError subclass instead (e.g. ConfigurationError, "
                "ScheduleError, CatalogError)",
            )


@ast_rule(
    "RA904",
    severity=Severity.ERROR,
    summary="mutable default argument",
    rationale="A list/dict/set default is shared across every call of the "
    "function; mutating it leaks state between schedulers and experiments.",
)
def _ra904_mutable_defaults(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    mutable_calls = {"list", "dict", "set"}
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            is_mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_calls
            )
            if is_mutable:
                yield (
                    default.lineno,
                    f"function {node.name!r} has a mutable default argument",
                    "default to None and create the object inside the function",
                )


@ast_rule(
    "RA905",
    severity=Severity.WARNING,
    summary="public module does not declare __all__",
    rationale="__all__ is the library's public-API contract; without it, "
    "star imports and documentation tooling guess the surface.",
)
def _ra905_missing_all(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    stem = module.stem
    if stem == "__main__" or (stem.startswith("_") and stem != "__init__"):
        return
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return
    yield (
        1,
        "public module defines no __all__",
        "declare __all__ with the module's exported names",
    )


#: Calls that count as "recording the failure" for RS602: converting the
#: exception into the canonical error body, or feeding a breaker/stats
#: counter that surfaces it in ``/v1/stats``.
_RS602_RECORDERS = frozenset(
    {"error_payload", "_send_error_payload", "record_failure", "record_error"}
)


def _rs602_handler_is_broad(node: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or a clause naming Exception/BaseException."""
    if node.type is None:
        return True
    clauses = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    return any(
        _identifier_of(clause) in ("Exception", "BaseException")
        for clause in clauses
    )


def _rs602_handler_complies(node: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records through the error machinery."""
    for child in ast.walk(node):
        if isinstance(child, ast.Raise):
            return True
        if isinstance(child, ast.Call):
            ident = _identifier_of(child.func)
            if ident in _RS602_RECORDERS:
                return True
    return False


@ast_rule(
    "RS602",
    scope="service",
    severity=Severity.ERROR,
    summary="service code swallows a broad exception without recording it",
    rationale="In repro.service, an `except Exception` (or bare `except`) "
    "that neither re-raises a typed ReproError nor records the failure "
    "(error_payload, _send_error_payload, CircuitBreaker.record_failure) "
    "silently converts a node fault into a wrong or missing answer.  The "
    "resilience layer can only retry, fail over or open a breaker for "
    "failures it can see.",
)
def _rs602_swallowed_exception(module: SourceModule) -> Iterator[tuple[int, str, str]]:
    if not module.in_service_package():
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _rs602_handler_is_broad(node):
            continue
        if _rs602_handler_complies(node):
            continue
        clause = "bare except" if node.type is None else "except Exception"
        yield (
            node.lineno,
            f"{clause} handler in service code neither re-raises nor "
            "records the failure",
            "re-raise a typed ReproError, or route the exception through "
            "error_payload/_send_error_payload/record_failure so it is "
            "visible to retries, breakers and /v1/stats",
        )
