"""Lint entry points: object linting, codebase linting, and the CLI.

High-level API
--------------
:func:`lint_workflow`, :func:`lint_catalog`
    Run the RW1xx / RC2xx rules over a constructed object *or* a raw
    payload mapping (broken payloads the constructors would reject are
    still linted).
:func:`lint_problem`
    Lint a full instance: workflow + catalog rules, plus the RP3xx budget
    rules when the instance is constructible.
:func:`lint_schedule`
    Lint a candidate schedule against its problem (RS4xx); ``deep=True``
    additionally executes the schedule on the DES simulator and checks
    precedence and analytic-vs-simulated makespan consistency.
:func:`lint_paths` / :func:`self_lint`
    Run the RA9xx AST rules over source files (``--self`` lints the
    installed ``repro`` package itself).
:func:`check_scheduler_result`
    The debug hook used by :mod:`repro.algorithms.base`: raises
    :class:`~repro.exceptions.LintError` when a scheduler result carries
    error-severity diagnostics.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.exceptions import LintError, ReproError
from repro.lint.astrules import SourceModule, iter_source_modules
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.domain import (
    CatalogFacts,
    ProblemFacts,
    ScheduleFacts,
    ServiceResponseFacts,
    WorkflowFacts,
)
from repro.lint.registry import ast_rules, domain_rules, run_rule

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.problem import MedCCProblem
    from repro.core.schedule import Schedule
    from repro.core.vm import VMTypeCatalog
    from repro.core.workflow import Workflow

__all__ = [
    "lint_workflow",
    "lint_catalog",
    "lint_problem",
    "lint_schedule",
    "lint_service_response",
    "lint_paths",
    "self_lint",
    "check_scheduler_result",
    "add_lint_arguments",
    "run",
    "main",
]


def _workflow_payload(target: "Workflow | Mapping[str, Any]") -> Mapping[str, Any]:
    if isinstance(target, Mapping):
        return target
    return target.to_dict()


def _catalog_payload(
    target: "VMTypeCatalog | Sequence[Mapping[str, Any]]",
) -> Sequence[Mapping[str, Any]]:
    if isinstance(target, Sequence):
        return target
    return [
        {
            "name": t.name,
            "power": t.power,
            "rate": t.rate,
            "startup_time": t.startup_time,
            "startup_cost": t.startup_cost,
        }
        for t in target
    ]


def lint_workflow(
    target: "Workflow | Mapping[str, Any]", *, name: str = ""
) -> LintReport:
    """Run all workflow (RW1xx) rules over an object or payload."""
    facts = WorkflowFacts.from_payload(_workflow_payload(target))
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("workflow"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "workflow")


def lint_catalog(
    target: "VMTypeCatalog | Sequence[Mapping[str, Any]]", *, name: str = ""
) -> LintReport:
    """Run all catalog (RC2xx) rules over an object or payload."""
    facts = CatalogFacts.from_payload(_catalog_payload(target))
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("catalog"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "catalog")


def lint_problem(
    target: "MedCCProblem | Mapping[str, Any]",
    *,
    budget: float | None = None,
    name: str = "",
) -> LintReport:
    """Lint a full MED-CC instance (workflow + catalog + budget rules).

    Accepts either a constructed :class:`~repro.core.problem.MedCCProblem`
    or a ``problem_to_dict()``-shaped payload.  Structural rules always
    run; the RP3xx rules need derived quantities (:math:`C_{min}`,
    :math:`C_{max}`) and run only when the instance is constructible.
    """
    problem: "MedCCProblem | None"
    if isinstance(target, Mapping):
        workflow_payload: Mapping[str, Any] = target.get("workflow", {})
        catalog_payload: Sequence[Mapping[str, Any]] = target.get("catalog", [])
        try:
            from repro.core.serialize import problem_from_dict

            problem = problem_from_dict(dict(target))
        except (ReproError, KeyError, TypeError, ValueError):
            problem = None
    else:
        problem = target
        workflow_payload = target.workflow.to_dict()
        catalog_payload = _catalog_payload(target.catalog)

    label = name or (
        f"problem[{problem.workflow.name}]" if problem is not None else "problem"
    )
    report = lint_workflow(workflow_payload, name=label).merged(
        lint_catalog(catalog_payload)
    )
    if problem is not None:
        facts = ProblemFacts(problem=problem, budget=budget)
        diagnostics: list[Diagnostic] = []
        for rule in domain_rules("problem"):
            diagnostics.extend(run_rule(rule, facts))
        report = report.merged(LintReport.collect(diagnostics))
    return LintReport(diagnostics=report.diagnostics, target=label)


def lint_schedule(
    problem: "MedCCProblem",
    schedule: "Schedule",
    *,
    budget: float | None = None,
    claimed_cost: float | None = None,
    deep: bool = False,
    name: str = "",
) -> LintReport:
    """Run the schedule (RS4xx) rules over a candidate schedule.

    With ``deep=True`` the schedule is additionally executed on the DES
    simulator (one VM per module, no packing) so the precedence (RS404)
    and makespan-consistency (RS405) rules can compare the trace against
    the analytical model.  Deep checks are skipped when the schedule is
    not even well-formed — executing it would raise.
    """
    sim = None
    probe = ScheduleFacts(problem=problem, schedule=schedule)
    if deep and probe.is_well_formed():
        from repro.sim.broker import WorkflowBroker

        sim = WorkflowBroker(problem=problem, schedule=schedule).run()
    facts = ScheduleFacts(
        problem=problem,
        schedule=schedule,
        budget=budget,
        claimed_cost=claimed_cost,
        sim=sim,
    )
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("schedule"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "schedule")


def lint_service_response(
    problem: "MedCCProblem",
    response: Mapping[str, Any],
    *,
    budget: float | None = None,
    name: str = "",
) -> LintReport:
    """Run the service-response (RS6xx) rules over a ``/v1/solve`` reply.

    ``response`` is the decoded JSON body returned by the service (or by
    :meth:`SchedulingService.solve`); ``budget`` is the budget of the
    originating request and defaults to the ``budget`` field the service
    echoes back.  Used by ``repro submit --validate`` to verify, client
    side, that a (possibly cache-replayed) schedule still satisfies the
    request's budget.
    """
    facts = ServiceResponseFacts(problem=problem, response=response, budget=budget)
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("service"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "service-response")


def lint_paths(paths: Sequence[Path | str], *, name: str = "") -> LintReport:
    """Run the AST (RA9xx) rules over source files and directories."""
    diagnostics: list[Diagnostic] = []
    rules = ast_rules()
    for module in iter_source_modules(paths):
        for rule in rules:
            for diag in run_rule(rule, module):
                lineno = int(diag.path)
                if module.is_suppressed(rule.id, lineno):
                    continue
                diagnostics.append(
                    Diagnostic(
                        rule=diag.rule,
                        severity=diag.severity,
                        path=f"{module.relpath}:{lineno}",
                        message=diag.message,
                        suggestion=diag.suggestion,
                    )
                )
    return LintReport.collect(
        diagnostics, target=name or ", ".join(str(p) for p in paths)
    )


def self_lint() -> LintReport:
    """AST-lint the installed ``repro`` package itself."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    return lint_paths([package_dir], name=f"self ({package_dir})")


def check_scheduler_result(
    problem: "MedCCProblem",
    result: Any,
    *,
    deep: bool = False,
    respects_budget: bool = True,
) -> None:
    """Debug hook: raise :class:`LintError` on a bad scheduler result.

    ``result`` is a :class:`~repro.algorithms.base.SchedulerResult` (typed
    loosely to avoid an import cycle: base wraps every registered
    scheduler's ``solve`` with this check).  Only error-severity
    diagnostics raise; warnings and info are ignored here.

    ``respects_budget=False`` skips the budget-feasibility rule (RS403):
    delay-optimal baselines like ``fastest``/``heft`` document that their
    output may exceed the budget.  Coverage, type-range and cost
    consistency are still enforced.
    """
    report = lint_schedule(
        problem,
        result.schedule,
        budget=result.budget if respects_budget else None,
        claimed_cost=result.total_cost,
        deep=deep,
        name=f"result[{result.algorithm}]",
    )
    if not report.ok:
        rendered = "; ".join(d.render() for d in report.errors)
        raise LintError(
            f"scheduler {result.algorithm!r} produced an invalid result: "
            f"{rendered}",
            diagnostics=report.errors,
        )


# --------------------------------------------------------------------- #
# CLI (shared by `repro lint` and `python -m repro.lint`)
# --------------------------------------------------------------------- #


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an argparse parser (CLI + ``-m`` entry)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="source files or directories to AST-lint",
    )
    parser.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="AST-lint the repro package itself (RA9xx rules)",
    )
    parser.add_argument(
        "--workload",
        default=None,
        choices=("example", "wrf"),
        help="domain-lint a built-in instance",
    )
    parser.add_argument(
        "--file",
        default=None,
        help="domain-lint a JSON instance file (overrides --workload)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="also check budget-dependent rules (RP301/RP302)",
    )
    parser.add_argument(
        "--algorithm",
        default=None,
        help="schedule the instance with this algorithm and lint the result "
        "(requires --budget)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="with --algorithm: execute the schedule on the DES simulator "
        "and check precedence/makespan consistency (RS404/RS405)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _render_rule_catalog() -> str:
    from repro.lint.registry import all_rules

    lines = ["id     scope     severity  summary"]
    for rule in all_rules():
        lines.append(
            f"{rule.id:<6} {rule.scope:<9} {str(rule.severity):<9} {rule.summary}"
        )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(_render_rule_catalog())
        return 0

    reports: list[LintReport] = []

    wants_instance = args.workload or args.file
    if not (wants_instance or args.self_lint or args.paths):
        print(
            "error: nothing to lint (pass --workload/--file, --self, or paths)",
            file=sys.stderr,
        )
        return 2
    if args.algorithm and args.budget is None:
        print("error: --algorithm requires --budget", file=sys.stderr)
        return 2

    if wants_instance:
        if args.file:
            import json

            try:
                payload = json.loads(Path(args.file).read_text())
            except (OSError, ValueError) as exc:
                print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
                return 2
            reports.append(
                lint_problem(payload, budget=args.budget, name=str(args.file))
            )
            target: "MedCCProblem | Mapping[str, Any]" = payload
        else:
            from repro.workloads import example_problem, wrf_problem

            problem = example_problem() if args.workload == "example" else wrf_problem()
            reports.append(
                lint_problem(problem, budget=args.budget, name=args.workload)
            )
            target = problem
        if args.algorithm:
            from repro.algorithms import get_scheduler

            if isinstance(target, Mapping):
                from repro.core.serialize import problem_from_dict

                problem = problem_from_dict(dict(target))
            else:
                problem = target
            assert args.budget is not None
            result = get_scheduler(args.algorithm).solve(problem, args.budget)
            reports.append(
                lint_schedule(
                    problem,
                    result.schedule,
                    budget=args.budget,
                    claimed_cost=result.total_cost,
                    deep=args.deep,
                    name=f"schedule[{args.algorithm}]",
                )
            )

    if args.self_lint:
        reports.append(self_lint())
    if args.paths:
        reports.append(lint_paths(args.paths))

    merged = reports[0]
    for extra in reports[1:]:
        merged = merged.merged(extra)
    print(merged.render(args.fmt))
    return merged.exit_code()


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static analysis and invariant checking for the MED-CC "
        "reproduction (domain rules RW/RC/RP/RS + codebase AST rules RA).",
    )
    add_lint_arguments(parser)
    try:
        return run(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
