"""Lint entry points: object linting, codebase linting, and the CLI.

High-level API
--------------
:func:`lint_workflow`, :func:`lint_catalog`
    Run the RW1xx / RC2xx rules over a constructed object *or* a raw
    payload mapping (broken payloads the constructors would reject are
    still linted).
:func:`lint_problem`
    Lint a full instance: workflow + catalog rules, plus the RP3xx budget
    rules when the instance is constructible.
:func:`lint_schedule`
    Lint a candidate schedule against its problem (RS4xx); ``deep=True``
    additionally executes the schedule on the DES simulator and checks
    precedence and analytic-vs-simulated makespan consistency.
:func:`lint_paths` / :func:`self_lint` / :func:`lint_source_tree`
    Run the RA9xx AST rules over source files (``--self`` lints the
    installed ``repro`` package itself).  ``deep=True`` additionally
    builds the project index and runs the RT7xx/RN8xx flow rules; the
    full pipeline supports a content-hash incremental cache
    (``--cache``), a committed suppression baseline (``--baseline`` /
    ``--update-baseline``) and SARIF output (``--format sarif``).
:func:`check_scheduler_result`
    The debug hook used by :mod:`repro.algorithms.base`: raises
    :class:`~repro.exceptions.LintError` when a scheduler result carries
    error-severity diagnostics.

The runner also owns the RL0xx *meta* findings — failures of the lint
pipeline itself rather than of any one rule:

* ``RL001`` — a ``# lint: ignore[...]`` pragma that no longer suppresses
  anything (deep runs only, where every rule family is active);
* ``RL002`` — a baseline entry that no longer matches any finding;
* ``RL003`` — a source file the pipeline cannot analyze (unreadable,
  non-UTF-8, or a syntax error).  Error severity: lint cannot vouch for
  what it cannot parse.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.exceptions import LintError, ReproError
from repro.lint.astrules import SourceModule, extract_pragmas
from repro.lint.baseline import Baseline
from repro.lint.cache import (
    CACHE_FORMAT_VERSION,
    FileFinding,
    FlowFinding,
    LintCache,
    PragmaMap,
    file_digest,
    project_digest,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.domain import (
    CatalogFacts,
    ProblemFacts,
    ScheduleFacts,
    ServiceResponseFacts,
    WorkflowFacts,
)
from repro.lint.registry import (
    all_rules,
    ast_rules,
    domain_rules,
    flow_rules,
    get_rule,
    meta_rule,
    run_rule,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.problem import MedCCProblem
    from repro.core.schedule import Schedule
    from repro.core.vm import VMTypeCatalog
    from repro.core.workflow import Workflow

__all__ = [
    "lint_workflow",
    "lint_catalog",
    "lint_problem",
    "lint_schedule",
    "lint_service_response",
    "lint_paths",
    "lint_source_tree",
    "self_lint",
    "check_scheduler_result",
    "add_lint_arguments",
    "run",
    "main",
]

# ------------------------------------------------------------------ #
# Meta rules (emitted by this runner, registered for the catalog)
# ------------------------------------------------------------------ #

meta_rule(
    "RL001",
    severity=Severity.WARNING,
    summary="suppression pragma never fires",
    rationale="A `# lint: ignore[...]` that no longer suppresses anything "
    "is a stale exemption: the code it excused has moved or been fixed, "
    "and leaving it around re-opens the hole for the next edit.  Only "
    "reported on deep runs, where every rule family is active.",
)
meta_rule(
    "RL002",
    severity=Severity.WARNING,
    summary="baseline entry no longer matches any finding",
    rationale="Baselines exist to shrink.  An entry matching nothing "
    "means the debt was paid; deleting it locks in the fix.",
)
meta_rule(
    "RL003",
    severity=Severity.ERROR,
    summary="source file could not be analyzed",
    rationale="A file that is unreadable, not UTF-8, or has a syntax "
    "error is invisible to every rule; treating it as anything but an "
    "error would let a broken file turn the lint gate green.",
)


def _workflow_payload(target: "Workflow | Mapping[str, Any]") -> Mapping[str, Any]:
    if isinstance(target, Mapping):
        return target
    return target.to_dict()


def _catalog_payload(
    target: "VMTypeCatalog | Sequence[Mapping[str, Any]]",
) -> Sequence[Mapping[str, Any]]:
    if isinstance(target, Sequence):
        return target
    return [
        {
            "name": t.name,
            "power": t.power,
            "rate": t.rate,
            "startup_time": t.startup_time,
            "startup_cost": t.startup_cost,
        }
        for t in target
    ]


def lint_workflow(
    target: "Workflow | Mapping[str, Any]", *, name: str = ""
) -> LintReport:
    """Run all workflow (RW1xx) rules over an object or payload."""
    facts = WorkflowFacts.from_payload(_workflow_payload(target))
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("workflow"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "workflow")


def lint_catalog(
    target: "VMTypeCatalog | Sequence[Mapping[str, Any]]", *, name: str = ""
) -> LintReport:
    """Run all catalog (RC2xx) rules over an object or payload."""
    facts = CatalogFacts.from_payload(_catalog_payload(target))
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("catalog"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "catalog")


def lint_problem(
    target: "MedCCProblem | Mapping[str, Any]",
    *,
    budget: float | None = None,
    name: str = "",
) -> LintReport:
    """Lint a full MED-CC instance (workflow + catalog + budget rules).

    Accepts either a constructed :class:`~repro.core.problem.MedCCProblem`
    or a ``problem_to_dict()``-shaped payload.  Structural rules always
    run; the RP3xx rules need derived quantities (:math:`C_{min}`,
    :math:`C_{max}`) and run only when the instance is constructible.
    """
    problem: "MedCCProblem | None"
    if isinstance(target, Mapping):
        workflow_payload: Mapping[str, Any] = target.get("workflow", {})
        catalog_payload: Sequence[Mapping[str, Any]] = target.get("catalog", [])
        try:
            from repro.core.serialize import problem_from_dict

            problem = problem_from_dict(dict(target))
        except (ReproError, KeyError, TypeError, ValueError):
            problem = None
    else:
        problem = target
        workflow_payload = target.workflow.to_dict()
        catalog_payload = _catalog_payload(target.catalog)

    label = name or (
        f"problem[{problem.workflow.name}]" if problem is not None else "problem"
    )
    report = lint_workflow(workflow_payload, name=label).merged(
        lint_catalog(catalog_payload)
    )
    if problem is not None:
        facts = ProblemFacts(problem=problem, budget=budget)
        diagnostics: list[Diagnostic] = []
        for rule in domain_rules("problem"):
            diagnostics.extend(run_rule(rule, facts))
        report = report.merged(LintReport.collect(diagnostics))
    return LintReport(diagnostics=report.diagnostics, target=label)


def lint_schedule(
    problem: "MedCCProblem",
    schedule: "Schedule",
    *,
    budget: float | None = None,
    claimed_cost: float | None = None,
    deep: bool = False,
    name: str = "",
) -> LintReport:
    """Run the schedule (RS4xx) rules over a candidate schedule.

    With ``deep=True`` the schedule is additionally executed on the DES
    simulator (one VM per module, no packing) so the precedence (RS404)
    and makespan-consistency (RS405) rules can compare the trace against
    the analytical model.  Deep checks are skipped when the schedule is
    not even well-formed — executing it would raise.
    """
    sim = None
    probe = ScheduleFacts(problem=problem, schedule=schedule)
    if deep and probe.is_well_formed():
        from repro.sim.broker import WorkflowBroker

        sim = WorkflowBroker(problem=problem, schedule=schedule).run()
    facts = ScheduleFacts(
        problem=problem,
        schedule=schedule,
        budget=budget,
        claimed_cost=claimed_cost,
        sim=sim,
    )
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("schedule"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "schedule")


def lint_service_response(
    problem: "MedCCProblem",
    response: Mapping[str, Any],
    *,
    budget: float | None = None,
    name: str = "",
) -> LintReport:
    """Run the service-response (RS6xx) rules over a ``/v1/solve`` reply.

    ``response`` is the decoded JSON body returned by the service (or by
    :meth:`SchedulingService.solve`); ``budget`` is the budget of the
    originating request and defaults to the ``budget`` field the service
    echoes back.  Used by ``repro submit --validate`` to verify, client
    side, that a (possibly cache-replayed) schedule still satisfies the
    request's budget.
    """
    facts = ServiceResponseFacts(problem=problem, response=response, budget=budget)
    diagnostics: list[Diagnostic] = []
    for rule in domain_rules("service"):
        diagnostics.extend(run_rule(rule, facts))
    return LintReport.collect(diagnostics, target=name or "service-response")


def _discover_files(paths: Sequence[Path | str]) -> list[tuple[Path, str]]:
    """``(path, relpath)`` for every ``*.py`` under the given paths.

    Directories are walked recursively in sorted order so diagnostics,
    cache layout and the project digest are deterministic across runs.
    """
    out: list[tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for file in sorted(base.rglob("*.py")):
                out.append((file, file.relative_to(base).as_posix()))
        else:
            out.append((base, base.name))
    return out


def _rules_signature() -> str:
    """Cache signature: changes when the rule set or cache format does."""
    ids = ",".join(rule.id for rule in all_rules())
    return hashlib.sha256(
        f"{CACHE_FORMAT_VERSION}|{ids}".encode("utf-8")
    ).hexdigest()


def _effective_severity(rule_id: str, relpath: str) -> Severity:
    """Per-location severity escalation for contract-critical packages.

    * RA905 (missing ``__all__``) escalates to error in core/ + service/:
      those packages are the library's public contract and the concurrent
      fabric.
    * RT703 (blocking call on a handler path) escalates to error under
      service/aio/: a blocking primitive there stalls the event loop for
      every in-flight request at once, so it fails the gate instead of
      warning.
    """
    severity = get_rule(rule_id).severity
    parts = Path(relpath).parts[:-1]
    if rule_id == "RA905" and ("core" in parts or "service" in parts):
        return Severity.ERROR
    if rule_id == "RT703" and "aio" in parts and "service" in parts:
        return Severity.ERROR
    return severity


def lint_source_tree(
    paths: Sequence[Path | str],
    *,
    deep: bool = False,
    cache_path: Path | str | None = None,
    baseline_path: Path | str | None = None,
    update_baseline: bool = False,
    name: str = "",
) -> LintReport:
    """The full source-tree lint pipeline (RA9xx, and with ``deep`` the
    RT7xx/RN8xx flow rules), with incremental caching and baselining.

    Stages:

    1. discover files, hash contents; per file either reuse the cached
       raw findings + pragma map (content unchanged) or parse and run the
       AST rules.  Unreadable / non-UTF-8 / syntactically broken files
       become ``RL003`` errors instead of crashes.
    2. with ``deep=True``: reuse the cached flow findings when *no* file
       changed (project digest), else build the
       :class:`~repro.lint.callgraph.ProjectIndex` and run every
       registered flow rule.
    3. apply ``# lint: ignore[...]`` pragmas (stale ones become ``RL001``
       on deep runs), escalate RA905 in ``core/``/``service/``, then
       filter through the baseline (stale entries become ``RL002``;
       ``update_baseline=True`` rewrites the file first, carrying
       justifications forward).
    """
    files = _discover_files(paths)
    cache = (
        LintCache.load(Path(cache_path), _rules_signature())
        if cache_path is not None
        else None
    )
    ast_rule_list = ast_rules()

    digests: dict[str, str] = {}
    raw_findings: dict[str, list[FileFinding]] = {}
    pragmas: dict[str, PragmaMap] = {}
    parsed: dict[str, SourceModule] = {}
    failures: dict[str, tuple[int, str]] = {}

    for path, relpath in files:
        raw_findings[relpath] = []
        pragmas[relpath] = {}
        try:
            data = path.read_bytes()
        except OSError as exc:
            failures[relpath] = (1, f"cannot read file: {exc}")
            digests[relpath] = f"unreadable:{relpath}"
            continue
        digest = file_digest(data)
        digests[relpath] = digest
        if cache is not None:
            hit = cache.lookup_file(relpath, digest)
            if hit is not None:
                raw_findings[relpath], pragmas[relpath] = hit
                continue
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            failures[relpath] = (
                1,
                f"file is not valid UTF-8 ({exc.reason} at byte {exc.start})",
            )
            continue
        pragmas[relpath] = extract_pragmas(text)
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            failures[relpath] = (exc.lineno or 1, f"syntax error: {exc.msg}")
            continue
        module = SourceModule(
            path=path, relpath=relpath, tree=tree, ignores=pragmas[relpath]
        )
        parsed[relpath] = module
        findings: list[FileFinding] = []
        for rule in ast_rule_list:
            for finding in rule.check(module):
                suggestion = finding[2] if len(finding) > 2 else None
                findings.append(
                    (rule.id, int(finding[0]), str(finding[1]), suggestion)
                )
        raw_findings[relpath] = findings
        if cache is not None:
            cache.store_file(relpath, digest, findings, pragmas[relpath])

    flow_findings: list[FlowFinding] = []
    if deep:
        tree_digest = project_digest(digests)
        cached_flow = (
            cache.lookup_flow(tree_digest) if cache is not None else None
        )
        if cached_flow is not None:
            flow_findings = cached_flow
        else:
            # The flow pass needs every module's AST, including the ones
            # the per-file cache let us skip parsing.
            for path, relpath in files:
                if relpath in parsed or relpath in failures:
                    continue
                try:
                    text = path.read_text(encoding="utf-8")
                    tree = ast.parse(text, filename=str(path))
                except (OSError, UnicodeDecodeError, SyntaxError):
                    continue
                parsed[relpath] = SourceModule(
                    path=path,
                    relpath=relpath,
                    tree=tree,
                    ignores=pragmas[relpath],
                )
            from repro.lint.callgraph import build_index

            index = build_index([parsed[rp] for rp in sorted(parsed)])
            for rule in flow_rules():
                for flow_finding in rule.check(index):
                    relpath, lineno, message, suggestion = flow_finding
                    flow_findings.append(
                        (rule.id, str(relpath), int(lineno), str(message), suggestion)
                    )
            if cache is not None:
                cache.store_flow(tree_digest, flow_findings)

    # ---- assemble diagnostics: pragmas, escalation, meta findings ---- #
    diagnostics: list[Diagnostic] = []
    used_pragmas: dict[str, set[int]] = {rp: set() for rp in pragmas}

    def suppressed(relpath: str, rule_id: str, lineno: int) -> bool:
        file_pragmas = pragmas.get(relpath, {})
        if lineno not in file_pragmas:
            return False
        listed = file_pragmas[lineno]
        if listed is None or rule_id in listed:
            used_pragmas[relpath].add(lineno)
            return True
        return False

    for relpath in sorted(failures):
        lineno, message = failures[relpath]
        diagnostics.append(
            Diagnostic(
                rule="RL003",
                severity=get_rule("RL003").severity,
                path=f"{relpath}:{lineno}",
                message=message,
                suggestion="fix the file so it parses as UTF-8 Python; lint "
                "cannot vouch for what it cannot read",
            )
        )
    for relpath in sorted(raw_findings):
        for rule_id, lineno, message, suggestion in raw_findings[relpath]:
            if suppressed(relpath, rule_id, lineno):
                continue
            diagnostics.append(
                Diagnostic(
                    rule=rule_id,
                    severity=_effective_severity(rule_id, relpath),
                    path=f"{relpath}:{lineno}",
                    message=message,
                    suggestion=suggestion,
                )
            )
    for rule_id, relpath, lineno, message, suggestion in flow_findings:
        if suppressed(relpath, rule_id, lineno):
            continue
        diagnostics.append(
            Diagnostic(
                rule=rule_id,
                severity=_effective_severity(rule_id, relpath),
                path=f"{relpath}:{lineno}",
                message=message,
                suggestion=suggestion,
            )
        )
    if deep:
        # Stale-pragma detection is only sound when every rule family ran.
        for relpath in sorted(pragmas):
            for lineno in sorted(pragmas[relpath]):
                if lineno in used_pragmas[relpath]:
                    continue
                listed = pragmas[relpath][lineno]
                label = (
                    "all rules" if listed is None else ", ".join(sorted(listed))
                )
                diagnostics.append(
                    Diagnostic(
                        rule="RL001",
                        severity=get_rule("RL001").severity,
                        path=f"{relpath}:{lineno}",
                        message=f"suppression pragma for {label} never fires",
                        suggestion="delete the stale `# lint: ignore` pragma",
                    )
                )

    # ---- baseline ---- #
    if baseline_path is not None:
        blpath = Path(baseline_path)
        if blpath.exists():
            baseline = Baseline.load(blpath)
        elif update_baseline:
            baseline = Baseline()
        else:
            raise LintError(
                f"baseline file {blpath} not found "
                "(pass --update-baseline to create it)"
            )
        if update_baseline:
            candidates = [
                d for d in diagnostics if not d.rule.startswith("RL")
            ]
            baseline = Baseline.from_diagnostics(candidates, previous=baseline)
            baseline.save(blpath)
        kept, _suppressed_count, stale = baseline.apply(diagnostics)
        diagnostics = kept
        for entry in stale:
            diagnostics.append(
                Diagnostic(
                    rule="RL002",
                    severity=get_rule("RL002").severity,
                    path=entry.file,
                    message=f"baseline entry for {entry.rule} no longer "
                    f"matches {entry.count} of its finding(s): "
                    f"{entry.message!r}",
                    suggestion="the debt was paid — remove the entry "
                    "(re-run with --update-baseline)",
                )
            )

    if cache is not None:
        cache.save()
    return LintReport.collect(
        diagnostics, target=name or ", ".join(str(p) for p in paths)
    )


def lint_paths(
    paths: Sequence[Path | str], *, name: str = "", deep: bool = False
) -> LintReport:
    """Run the AST (RA9xx) rules — plus flow rules with ``deep`` — over
    source files and directories (no cache, no baseline)."""
    return lint_source_tree(paths, deep=deep, name=name)


def self_lint(
    *,
    deep: bool = False,
    cache_path: Path | str | None = None,
    baseline_path: Path | str | None = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint the installed ``repro`` package itself."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    return lint_source_tree(
        [package_dir],
        deep=deep,
        cache_path=cache_path,
        baseline_path=baseline_path,
        update_baseline=update_baseline,
        name=f"self ({package_dir})",
    )


def check_scheduler_result(
    problem: "MedCCProblem",
    result: Any,
    *,
    deep: bool = False,
    respects_budget: bool = True,
) -> None:
    """Debug hook: raise :class:`LintError` on a bad scheduler result.

    ``result`` is a :class:`~repro.algorithms.base.SchedulerResult` (typed
    loosely to avoid an import cycle: base wraps every registered
    scheduler's ``solve`` with this check).  Only error-severity
    diagnostics raise; warnings and info are ignored here.

    ``respects_budget=False`` skips the budget-feasibility rule (RS403):
    delay-optimal baselines like ``fastest``/``heft`` document that their
    output may exceed the budget.  Coverage, type-range and cost
    consistency are still enforced.
    """
    report = lint_schedule(
        problem,
        result.schedule,
        budget=result.budget if respects_budget else None,
        claimed_cost=result.total_cost,
        deep=deep,
        name=f"result[{result.algorithm}]",
    )
    if not report.ok:
        rendered = "; ".join(d.render() for d in report.errors)
        raise LintError(
            f"scheduler {result.algorithm!r} produced an invalid result: "
            f"{rendered}",
            diagnostics=report.errors,
        )


# --------------------------------------------------------------------- #
# CLI (shared by `repro lint` and `python -m repro.lint`)
# --------------------------------------------------------------------- #


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an argparse parser (CLI + ``-m`` entry)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="source files or directories to AST-lint",
    )
    parser.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="AST-lint the repro package itself (RA9xx rules)",
    )
    parser.add_argument(
        "--workload",
        default=None,
        choices=("example", "wrf"),
        help="domain-lint a built-in instance",
    )
    parser.add_argument(
        "--file",
        default=None,
        help="domain-lint a JSON instance file (overrides --workload)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="also check budget-dependent rules (RP301/RP302)",
    )
    parser.add_argument(
        "--algorithm",
        default=None,
        help="schedule the instance with this algorithm and lint the result "
        "(requires --budget)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="with --self/paths: build the project call graph and run the "
        "RT7xx/RN8xx flow rules; with --algorithm: execute the schedule on "
        "the DES simulator and check precedence/makespan consistency "
        "(RS404/RS405)",
    )
    parser.add_argument(
        "--cache",
        dest="cache_path",
        default=None,
        metavar="FILE",
        help="content-hash incremental cache for --self/paths runs; "
        "unchanged files (and, with --deep, an unchanged tree) skip "
        "re-analysis",
    )
    parser.add_argument(
        "--baseline",
        dest="baseline_path",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this baseline file; stale "
        "entries are reported as RL002",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings "
        "(carrying justifications forward), then exit clean",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (CI gate mode)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json", "sarif"),
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _render_rule_catalog() -> str:
    lines = ["id     scope     severity  summary"]
    for rule in all_rules():
        lines.append(
            f"{rule.id:<6} {rule.scope:<9} {str(rule.severity):<9} {rule.summary}"
        )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(_render_rule_catalog())
        return 0

    reports: list[LintReport] = []

    wants_instance = args.workload or args.file
    if not (wants_instance or args.self_lint or args.paths):
        print(
            "error: nothing to lint (pass --workload/--file, --self, or paths)",
            file=sys.stderr,
        )
        return 2
    if args.algorithm and args.budget is None:
        print("error: --algorithm requires --budget", file=sys.stderr)
        return 2
    if (args.baseline_path or args.cache_path or args.update_baseline) and not (
        args.self_lint or args.paths
    ):
        print(
            "error: --baseline/--cache/--update-baseline apply to "
            "--self/paths runs",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and not args.baseline_path:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    if wants_instance:
        if args.file:
            import json

            try:
                payload = json.loads(Path(args.file).read_text())
            except (OSError, ValueError) as exc:
                print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
                return 2
            reports.append(
                lint_problem(payload, budget=args.budget, name=str(args.file))
            )
            target: "MedCCProblem | Mapping[str, Any]" = payload
        else:
            from repro.workloads import example_problem, wrf_problem

            problem = example_problem() if args.workload == "example" else wrf_problem()
            reports.append(
                lint_problem(problem, budget=args.budget, name=args.workload)
            )
            target = problem
        if args.algorithm:
            from repro.algorithms import get_scheduler

            if isinstance(target, Mapping):
                from repro.core.serialize import problem_from_dict

                problem = problem_from_dict(dict(target))
            else:
                problem = target
            assert args.budget is not None
            result = get_scheduler(args.algorithm).solve(problem, args.budget)
            reports.append(
                lint_schedule(
                    problem,
                    result.schedule,
                    budget=args.budget,
                    claimed_cost=result.total_cost,
                    deep=args.deep,
                    name=f"schedule[{args.algorithm}]",
                )
            )

    if args.self_lint:
        reports.append(
            self_lint(
                deep=args.deep,
                cache_path=args.cache_path,
                baseline_path=args.baseline_path,
                update_baseline=args.update_baseline,
            )
        )
    if args.paths:
        reports.append(
            lint_source_tree(
                args.paths,
                deep=args.deep,
                cache_path=args.cache_path,
                baseline_path=args.baseline_path,
                update_baseline=args.update_baseline,
            )
        )

    merged = reports[0]
    for extra in reports[1:]:
        merged = merged.merged(extra)
    if args.fmt == "sarif":
        from repro.lint.sarif import render_sarif

        print(render_sarif(merged, all_rules()))
    else:
        print(merged.render(args.fmt))
    code = merged.exit_code()
    if args.strict and code == 0 and len(merged):
        code = 1
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static analysis and invariant checking for the MED-CC "
        "reproduction (domain rules RW/RC/RP/RS, codebase AST rules RA, and "
        "with --deep the whole-program concurrency/determinism flow rules "
        "RT/RN).",
    )
    add_lint_arguments(parser)
    try:
        return run(parser.parse_args(argv))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
