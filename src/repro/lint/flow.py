"""Pass 2 — whole-program flow rules: RT7xx concurrency, RN8xx determinism.

These rules run over the :class:`~repro.lint.callgraph.ProjectIndex`
(symbol table + call graph built by pass 1) instead of one file at a
time, which is what lets them reason about *paths*:

* ``RT701`` — **lock-discipline inference.**  For every class in
  ``repro.service`` owning a ``threading.Lock``/``RLock``/``Condition``
  attribute, infer which instance attributes are *guarded* (at least one
  access happens under ``with self._lock:`` — or inside a
  ``*_locked``-suffixed method, the caller-holds-the-lock convention —
  and the attribute is written outside ``__init__``) and report every
  access to a guarded attribute made without the lock.
* ``RT702`` — **lock-order cycles.**  Build the lock-acquisition
  ordering graph (lock *L* → lock *M* when some path acquires *M* while
  holding *L*, following calls through the call graph) and report
  cycles; re-acquiring a non-reentrant ``Lock`` on a path that already
  holds it is reported as a self-deadlock.
* ``RT703`` — **blocking calls on HTTP handler paths.**  Flag
  ``time.sleep``, ``urlopen``/``create_connection``, file I/O
  (``open``, ``read_text``/``write_text``/...), and un-timeouted
  ``Queue.get()``/``Future.result()`` reachable from ``do_GET``/
  ``do_POST``-style entry points of ``BaseHTTPRequestHandler``
  subclasses.  Warning severity today (the thread-per-request fabric
  tolerates them, each is baselined with a justification); this is the
  rule that will gate the planned asyncio core against sync-in-async
  regressions.
* ``RN801``/``RN802`` — **bit-identity float order.**  Inside the
  modules that declare the bit-identity contract (``core/fastpath.py``,
  ``core/critical_path.py``, ``algorithms/``), flag float reductions
  whose order is an *implicit* property: ``sum()`` over dict views or
  sets (insertion/hash order), ``np.sum`` over strided slices (pairwise
  blocking differs from the contiguous path), axis-wise ``sum``/
  ``mean``/``prod``-family folds over the 2-D batched grids the SoA
  kernel stacks (the fold order along the batch axis is a layout
  property; only exact ``max``/``min``/``any``/``all``/``argmax``
  reductions may cross it), and ``+=`` accumulation inside ``for ... in
  d.items()`` loops.  The results may be deterministic *today*, but
  their order is not part of any contract — the exact refactor hazard
  the fastpath's frontier-equality tests exist to catch.
* ``RN803`` — **unseeded randomness** in ``experiments/`` and ``sim/``:
  ``np.random.default_rng()`` with no seed, legacy global
  ``np.random.<fn>`` sampling, module-level ``random.<fn>`` calls, and
  seedless ``random.Random()``.

Known soft spots, by construction: lock state inside nested functions /
lambdas is unknown (their bodies are skipped entirely — no findings, no
evidence), ``lock.acquire()``/``release()`` pairs are not tracked (the
codebase uses ``with``), and call resolution is first-order (no locals
dataflow, no callbacks through ``target=``/``submit``).
"""

from __future__ import annotations

import ast
from collections import Counter
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.astrules import SourceModule
from repro.lint.callgraph import ClassInfo, FunctionInfo, ProjectIndex
from repro.lint.diagnostics import Severity
from repro.lint.registry import flow_rule

__all__ = ["Finding"]

#: Flow findings: ``(relpath, lineno, message, suggestion)``.
Finding = tuple[str, int, str, str]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Method calls on an attribute that mutate it in place (count as writes).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "remove",
        "discard",
        "extend",
        "insert",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
    }
)

_HANDLER_ENTRY_NAMES = (
    "do_GET",
    "do_POST",
    "do_PUT",
    "do_DELETE",
    "do_HEAD",
    "do_PATCH",
)

_UNORDERED_ITERATORS = frozenset({"values", "keys", "items"})

#: Legacy global-state samplers on ``np.random``.
_NP_SAMPLERS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "beta",
        "gamma",
    }
)

#: Module-level samplers on the stdlib ``random`` module.
_PY_SAMPLERS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
    }
)


def _tail(expr: ast.expr) -> str | None:
    """Terminal identifier of a Name/Attribute expression, else ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _self_attr(expr: ast.expr) -> str | None:
    """``X`` when the expression is exactly ``self.X``, else ``None``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _sorted_classes(index: ProjectIndex) -> list[ClassInfo]:
    return [index.classes[qual] for qual in sorted(index.classes)]


# --------------------------------------------------------------------- #
# Lock modelling (shared by RT701 / RT702)
# --------------------------------------------------------------------- #


def _lock_kind(expr: ast.expr) -> str | None:
    """``Lock``/``RLock``/``Condition`` when ``expr`` builds one.

    Handles direct construction (``threading.Lock()``) and the dataclass
    idiom ``field(default_factory=threading.Lock)``.
    """
    if not isinstance(expr, ast.Call):
        return None
    tail = _tail(expr.func)
    if tail in _LOCK_FACTORIES:
        return tail
    if tail == "field":
        for kw in expr.keywords:
            if kw.arg == "default_factory":
                factory = _tail(kw.value)
                if factory in _LOCK_FACTORIES:
                    return factory
    return None


def _lock_attrs(cls: ClassInfo) -> dict[str, str]:
    """``self.<attr>`` lock attributes of a class → lock kind."""
    out: dict[str, str] = {}
    for item in cls.node.body:
        if (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.value is not None
        ):
            kind = _lock_kind(item.value)
            if kind is not None:
                out[item.target.id] = kind
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            kind = _lock_kind(node.value)
            if kind is None:
                continue
            for tgt in node.targets:
                attr = _self_attr(tgt)
                if attr is not None:
                    out[attr] = kind
    return out


@dataclass
class _Access:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    lineno: int
    write: bool
    held: tuple[str, ...]  #: lock attrs held at the access site


@dataclass
class _MethodFacts:
    """Everything RT701/RT702 need to know about one method body."""

    accesses: list[_Access] = field(default_factory=list)
    #: ``(lock attr, lineno, locks already held when acquiring)``.
    acquires: list[tuple[str, int, tuple[str, ...]]] = field(default_factory=list)
    #: ``(locks held, call node)`` for every call made under a lock.
    calls_holding: list[tuple[tuple[str, ...], ast.Call]] = field(
        default_factory=list
    )


def _scan_method(
    method: FunctionInfo, lock_attrs: Mapping[str, str]
) -> _MethodFacts:
    """Single AST pass over a method tracking the held-lock set.

    Nested function/lambda bodies are skipped outright: they execute at
    an unknown time, so the lexical lock state says nothing about them.
    """
    facts = _MethodFacts()
    consumed: set[int] = set()  # inner Attribute nodes already classified

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not method.node
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            newly: list[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in lock_attrs:
                    facts.acquires.append((attr, item.context_expr.lineno, held))
                    if attr not in held:
                        newly.append(attr)
                else:
                    visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
            inner = held + tuple(newly)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Call):
            if held:
                facts.calls_holding.append((held, node))
            if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
                recv = _self_attr(node.func.value)
                if recv is not None:
                    facts.accesses.append(
                        _Access(recv, node.func.value.lineno, True, held)
                    )
                    consumed.add(id(node.func.value))
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # `self._counts[k] += 1` / `del self._entries[key]`: the inner
            # `self._counts` Attribute is a Load, but the effect is a write.
            base: ast.expr = node.value
            while isinstance(base, ast.Subscript):
                base = base.value
            attr = _self_attr(base)
            if attr is not None:
                facts.accesses.append(_Access(attr, base.lineno, True, held))
                consumed.add(id(base))
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and id(node) not in consumed:
                facts.accesses.append(
                    _Access(
                        attr,
                        node.lineno,
                        isinstance(node.ctx, (ast.Store, ast.Del)),
                        held,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit(method.node, ())
    return facts


def _caller_holds_lock(method_name: str) -> bool:
    """The ``*_locked`` naming convention: caller is assumed to hold it."""
    return method_name.endswith("_locked")


# --------------------------------------------------------------------- #
# RT701 — lock-discipline inference
# --------------------------------------------------------------------- #


@flow_rule(
    "RT701",
    severity=Severity.ERROR,
    summary="lock-guarded attribute accessed without holding the lock",
    rationale="The service fabric is thread-per-request with hand-rolled "
    "locks.  An attribute that is accessed under `with self._lock:` "
    "somewhere and mutated after __init__ is shared mutable state under a "
    "lock discipline; any access outside the lock (and outside *_locked "
    "caller-holds-it methods) is a data race waiting for a refactor to "
    "expose it.",
)
def _rt701_unguarded_access(index: ProjectIndex) -> Iterator[Finding]:
    for cls in _sorted_classes(index):
        if not cls.module.in_service_package():
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        per_attr: dict[str, list[tuple[str, _Access]]] = {}
        for mname in sorted(cls.methods):
            facts = _scan_method(cls.methods[mname], locks)
            for acc in facts.accesses:
                if (
                    acc.attr in locks
                    or acc.attr in cls.methods
                    or acc.attr.startswith("__")
                ):
                    continue
                per_attr.setdefault(acc.attr, []).append((mname, acc))
        for attr in sorted(per_attr):
            records = per_attr[attr]
            has_locked = any(
                acc.held or _caller_holds_lock(mname) for mname, acc in records
            )
            written_after_init = any(
                acc.write and mname != "__init__" for mname, acc in records
            )
            if not (has_locked and written_after_init):
                continue
            evidence = Counter(
                acc.held[-1] for _, acc in records if acc.held
            )
            guard = (
                evidence.most_common(1)[0][0] if evidence else sorted(locks)[0]
            )
            for mname, acc in records:
                if mname == "__init__" or _caller_holds_lock(mname) or acc.held:
                    continue
                verb = "written" if acc.write else "read"
                yield (
                    cls.module.relpath,
                    acc.lineno,
                    f"{cls.name}.{attr} is guarded by self.{guard} elsewhere "
                    f"but {verb} without it in {mname}()",
                    f"wrap the access in `with self.{guard}:`, or add a "
                    "`_locked` suffix to the method if its callers hold the "
                    "lock",
                )


# --------------------------------------------------------------------- #
# RT702 — lock-acquisition ordering
# --------------------------------------------------------------------- #


def _lock_id(cls: ClassInfo, attr: str) -> str:
    return f"{cls.qualname}#{attr}"


def _lock_display(lock_id: str) -> str:
    qual, attr = lock_id.rsplit("#", 1)
    return f"{qual.rsplit('::', 1)[-1]}.{attr}"


@flow_rule(
    "RT702",
    severity=Severity.ERROR,
    summary="lock-order cycle or re-acquisition (potential deadlock)",
    rationale="When one code path acquires lock B while holding lock A and "
    "another acquires A while holding B, two threads can each hold one "
    "half and wait forever; re-acquiring a non-reentrant Lock on a path "
    "that already holds it deadlocks a single thread.  The acquisition "
    "graph is built across the call graph, so indirect orderings "
    "(method under lock calls helper that locks another object) count.",
)
def _rt702_lock_order(index: ProjectIndex) -> Iterator[Finding]:
    class_locks: dict[str, dict[str, str]] = {}
    lock_kinds: dict[str, str] = {}
    for cls in _sorted_classes(index):
        locks = _lock_attrs(cls)
        if locks:
            class_locks[cls.qualname] = locks
            for attr, kind in locks.items():
                lock_kinds[_lock_id(cls, attr)] = kind

    # One scan per method of a lock-owning class.
    scans: dict[str, tuple[ClassInfo, FunctionInfo, _MethodFacts]] = {}
    for cls in _sorted_classes(index):
        locks = class_locks.get(cls.qualname)
        if locks is None:
            continue
        for mname in sorted(cls.methods):
            method = cls.methods[mname]
            scans[method.qualname] = (cls, method, _scan_method(method, locks))

    #: L → M → (relpath, lineno, how the edge arises).
    edges: dict[str, dict[str, tuple[str, int, str]]] = {}
    reported_self: set[tuple[str, int, str]] = set()

    def add_edge(
        held_id: str, acquired_id: str, relpath: str, lineno: int, note: str
    ) -> None:
        edges.setdefault(held_id, {}).setdefault(
            acquired_id, (relpath, lineno, note)
        )

    self_findings: list[Finding] = []

    for qual in sorted(scans):
        cls, method, facts = scans[qual]
        relpath = cls.module.relpath
        # Direct nested acquisition in the same method body.
        for attr, lineno, held in facts.acquires:
            acquired = _lock_id(cls, attr)
            for held_attr in held:
                holding = _lock_id(cls, held_attr)
                if holding == acquired:
                    if lock_kinds.get(acquired) == "Lock":
                        key = (relpath, lineno, acquired)
                        if key not in reported_self:
                            reported_self.add(key)
                            self_findings.append(
                                (
                                    relpath,
                                    lineno,
                                    f"{method.display}() re-acquires "
                                    f"non-reentrant {_lock_display(acquired)} "
                                    "while already holding it "
                                    "(self-deadlock)",
                                    "use the *_locked helper convention or "
                                    "an RLock if re-entry is intended",
                                )
                            )
                else:
                    add_edge(
                        holding,
                        acquired,
                        relpath,
                        lineno,
                        f"{method.display} acquires "
                        f"{_lock_display(acquired)} under "
                        f"{_lock_display(holding)}",
                    )
        # Calls made while holding a lock: follow the call graph to any
        # function that acquires locks of its own.
        for held, call in facts.calls_holding:
            callee = index.resolve_call(method, call)
            if callee is None:
                continue
            reach = index.reachable([callee.qualname], max_depth=8)
            for target_qual in sorted(reach):
                entry = scans.get(target_qual)
                if entry is None:
                    continue
                tcls, tmethod, tfacts = entry
                for attr, _alineno, _aheld in tfacts.acquires:
                    acquired = _lock_id(tcls, attr)
                    for held_attr in held:
                        holding = _lock_id(cls, held_attr)
                        if holding == acquired:
                            if lock_kinds.get(acquired) == "Lock":
                                key = (relpath, call.lineno, acquired)
                                if key not in reported_self:
                                    reported_self.add(key)
                                    self_findings.append(
                                        (
                                            relpath,
                                            call.lineno,
                                            f"{method.display}() calls "
                                            f"{tmethod.display}() while "
                                            f"holding "
                                            f"{_lock_display(acquired)}, "
                                            "which re-acquires the same "
                                            "non-reentrant lock "
                                            "(self-deadlock)",
                                            "move the call outside the "
                                            "locked region or use a "
                                            "*_locked variant of the "
                                            "callee",
                                        )
                                    )
                        else:
                            add_edge(
                                holding,
                                acquired,
                                relpath,
                                call.lineno,
                                f"{method.display} -> {tmethod.display}",
                            )

    yield from self_findings

    # Cycle detection over the ordering graph (white/grey/black DFS).
    cycles: list[tuple[str, ...]] = []
    path: list[str] = []
    on_path: set[str] = set()
    visited: set[str] = set()

    def dfs(node: str) -> None:
        visited.add(node)
        on_path.add(node)
        path.append(node)
        for nxt in sorted(edges.get(node, {})):
            if nxt in on_path:
                cycles.append(tuple(path[path.index(nxt) :]))
            elif nxt not in visited:
                dfs(nxt)
        path.pop()
        on_path.discard(node)

    for node in sorted(edges):
        if node not in visited:
            dfs(node)

    seen: set[tuple[str, ...]] = set()
    for cycle in cycles:
        pivot = min(range(len(cycle)), key=lambda i: cycle[i])
        canon = cycle[pivot:] + cycle[:pivot]
        if canon in seen:
            continue
        seen.add(canon)
        relpath, lineno, note = edges[canon[0]][canon[1 % len(canon)]]
        chain = " -> ".join(_lock_display(l) for l in (*canon, canon[0]))
        yield (
            relpath,
            lineno,
            f"lock-order cycle (potential deadlock): {chain}; "
            f"this edge via {note}",
            "pick one global acquisition order, or stop holding a lock "
            "across the call that acquires the other",
        )


# --------------------------------------------------------------------- #
# RT703 — blocking calls on HTTP handler paths
# --------------------------------------------------------------------- #


def _handler_classes(index: ProjectIndex) -> list[ClassInfo]:
    """Classes (transitively) deriving from BaseHTTPRequestHandler."""
    handlers: dict[str, ClassInfo] = {}
    changed = True
    while changed:
        changed = False
        for cls in _sorted_classes(index):
            if cls.qualname in handlers:
                continue
            for base in cls.bases:
                if base == "BaseHTTPRequestHandler":
                    handlers[cls.qualname] = cls
                    changed = True
                    break
                resolved = index.resolve_symbol(cls.modkey, base)
                if (
                    isinstance(resolved, ClassInfo)
                    and resolved.qualname in handlers
                ):
                    handlers[cls.qualname] = cls
                    changed = True
                    break
    return [handlers[qual] for qual in sorted(handlers)]


def _blocking_call(
    call: ast.Call, fn: FunctionInfo, index: ProjectIndex
) -> tuple[str, str] | None:
    """``(description, suggestion)`` when the call site is blocking."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return (
                "file I/O via builtin open()",
                "move file access off the request path (or baseline with a "
                "justification if the latency is accepted)",
            )
        imported = index.symbol_imports.get(fn.modkey, {}).get(func.id)
        if func.id == "sleep" and imported is not None and imported[0] == "time":
            return (
                "time.sleep()",
                "replace with event/condition-based waiting off the handler "
                "thread",
            )
        if func.id == "urlopen" and imported is not None:
            return (
                "urlopen()",
                "do network I/O off the request path, with a timeout",
            )
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _tail(func.value)
    if receiver in ("rfile", "wfile"):
        return None  # reading/writing the request socket IS the handler's job
    attr = func.attr
    if (
        attr == "sleep"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return (
            "time.sleep()",
            "replace with event/condition-based waiting off the handler thread",
        )
    if attr == "urlopen":
        return (
            "urllib urlopen()",
            "do network I/O off the request path, with a timeout",
        )
    if attr == "create_connection":
        return (
            "socket.create_connection()",
            "do network I/O off the request path, with a timeout",
        )
    if attr in ("read_text", "write_text", "read_bytes", "write_bytes"):
        return (
            f"file I/O (.{attr}())",
            "move file access off the request path (or baseline with a "
            "justification if the latency is accepted)",
        )
    if attr == "get" and not call.args and not call.keywords:
        return (
            "un-timeouted queue .get()",
            "pass timeout=... so a wedged producer cannot hang the handler",
        )
    if attr == "result" and not call.args and not any(
        kw.arg == "timeout" for kw in call.keywords
    ):
        return (
            "un-timeouted Future.result()",
            "pass timeout=... and convert expiry into a 5xx/504-style error",
        )
    return None


def _own_calls(fn_node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes lexically in this function, excluding nested defs.

    Nested functions and lambdas run at an unknown later time (callbacks,
    worker targets), so their calls are not on the handler's own path.
    """
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _async_entries(index: ProjectIndex) -> list[str]:
    """Every ``async def`` in the project: each one runs on an event loop.

    A blocking primitive anywhere on a coroutine's synchronous call path
    stalls *every* request on that loop, not just its own — strictly
    worse than tying up one handler thread.  The gate escalates these to
    errors under ``service/aio/`` (see ``_effective_severity``).
    """
    return sorted(
        qual
        for qual, fn in index.functions.items()
        if isinstance(fn.node, ast.AsyncFunctionDef)
    )


def _rt703_scan(
    index: ProjectIndex,
    entries: list[str],
    path_kind: str,
    seen_sites: set[tuple[str, int, str]],
) -> Iterator[Finding]:
    if not entries:
        return
    reach = index.reachable(sorted(entries))
    for qual in sorted(reach):
        fn = index.functions.get(qual)
        if fn is None:
            continue
        chain = " -> ".join(
            index.functions[q].display for q in index.call_chain(qual, reach)
        )
        for node in _own_calls(fn.node):
            hit = _blocking_call(node, fn, index)
            if hit is None:
                continue
            description, suggestion = hit
            key = (fn.module.relpath, node.lineno, description)
            if key in seen_sites:
                continue
            seen_sites.add(key)
            yield (
                fn.module.relpath,
                node.lineno,
                f"blocking {description} on {path_kind} ({chain})",
                suggestion,
            )


@flow_rule(
    "RT703",
    severity=Severity.WARNING,
    summary="blocking call reachable from an HTTP or asyncio handler path",
    rationale="Every blocking call on a do_GET/do_POST path ties up a "
    "request thread for an unbounded time, and the same call on an "
    "``async def`` path stalls the event loop for every request at once "
    "(which is why asyncio-path findings gate as errors under "
    "service/aio/).  Each accepted occurrence must carry a baseline "
    "justification; new ones need an explicit decision.",
)
def _rt703_blocking_on_handler_path(index: ProjectIndex) -> Iterator[Finding]:
    entries: list[str] = []
    for cls in _handler_classes(index):
        for name in _HANDLER_ENTRY_NAMES:
            method = cls.methods.get(name)
            if method is not None:
                entries.append(method.qualname)
    # The threaded traversal runs first so a site on both paths keeps its
    # historical "HTTP handler path" message (baseline stability).
    seen_sites: set[tuple[str, int, str]] = set()
    yield from _rt703_scan(index, entries, "an HTTP handler path", seen_sites)
    yield from _rt703_scan(
        index, _async_entries(index), "an asyncio handler path", seen_sites
    )


# --------------------------------------------------------------------- #
# RN8xx — numeric determinism
# --------------------------------------------------------------------- #


def _bit_identity_module(module: SourceModule) -> bool:
    """Modules bound by the bit-identical-float contract."""
    parts = Path(module.relpath).parts
    if "algorithms" in parts[:-1]:
        return True
    return parts[-1] in ("fastpath.py", "critical_path.py") and "core" in parts[:-1]


def _contains_order_fix(expr: ast.expr) -> bool:
    """Whether a ``sorted(...)`` wrapper pins the iteration order."""
    return any(
        isinstance(node, ast.Call) and _tail(node.func) == "sorted"
        for node in ast.walk(expr)
    )


def _unordered_source(expr: ast.expr) -> str | None:
    """Description of an insertion/hash-ordered iterable in the subtree."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_ITERATORS
        ):
            return f"dict .{node.func.attr}()"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
    return None


def _stepped_slice(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.slice, ast.Slice)
        and expr.slice.step is not None
    )


#: Axis-taking numpy folds whose float result depends on accumulation
#: order.  Exact, order-independent reductions (``max``/``min``/``any``/
#: ``all``/``argmax``/``argmin``) are deliberately absent: they are the
#: folds the batched SoA kernel is allowed to run across budget rows.
_ORDER_SENSITIVE_REDUCERS = frozenset(
    {
        "sum",
        "nansum",
        "prod",
        "nanprod",
        "mean",
        "nanmean",
        "average",
        "std",
        "var",
        "cumsum",
        "cumprod",
    }
)


def _axis_argument(node: ast.Call) -> bool:
    """Whether a reduction call selects an ``axis`` (keyword or positional).

    Recognizes ``grid.sum(axis=1)``, ``np.mean(grid, axis=(0, 1))`` and
    the positional forms ``grid.sum(1)`` / ``np.sum(grid, 0)``.
    """
    if any(kw.arg == "axis" for kw in node.keywords):
        return True
    func = node.func
    positional = node.args
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        positional = node.args[1:]
    if not positional:
        return False
    head = positional[0]
    return isinstance(head, ast.Tuple) or (
        isinstance(head, ast.Constant)
        and isinstance(head.value, int)
        and not isinstance(head.value, bool)
    )


@flow_rule(
    "RN801",
    severity=Severity.ERROR,
    summary="order-implicit float reduction in a bit-identity module",
    rationale="core/fastpath.py, core/critical_path.py and algorithms/ "
    "promise bit-identical floats against the reference path.  sum() over "
    "dict views or sets reduces in insertion/hash order — deterministic "
    "today, but the order is an implicit property any refactor can "
    "change; np.sum over a strided slice uses different pairwise blocking "
    "than the contiguous path; an axis-wise sum/mean/prod over a 2-D "
    "batched grid folds each row in an order set by the array's layout "
    "(the batch dimension the SoA kernel stacks).  Reduction order must "
    "be explicit there — only exact folds (max/min/any/all/argmax) may "
    "cross the batch axis.",
)
def _rn801_order_sensitive_reduction(index: ProjectIndex) -> Iterator[Finding]:
    for modkey in sorted(index.modules):
        module = index.modules[modkey]
        if not _bit_identity_module(module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "sum" and node.args:
                arg = node.args[0]
                if _contains_order_fix(arg):
                    continue
                source = _unordered_source(arg)
                if source is not None:
                    yield (
                        module.relpath,
                        node.lineno,
                        f"sum() reduces over {source}: the float result "
                        "depends on insertion/hash order",
                        "iterate an explicitly ordered sequence (a list kept "
                        "in contract order, or sorted(...)) so the "
                        "reduction order is part of the API",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _ORDER_SENSITIVE_REDUCERS
            ):
                if _axis_argument(node):
                    yield (
                        module.relpath,
                        node.lineno,
                        f"axis-wise {func.attr}(): an order-sensitive float "
                        "fold across a batched reduction axis — the fold "
                        "order is an implicit property of the array layout",
                        "reduce with an exact order-independent fold "
                        "(max/min/any/all/argmax) or fold the batched axis "
                        "in explicit contract order",
                    )
                    continue
                if func.attr != "sum":
                    continue
                target: ast.expr | None = None
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                    and node.args
                ):
                    target = node.args[0]
                elif _stepped_slice(func.value):
                    target = func.value
                if target is not None and _stepped_slice(target):
                    yield (
                        module.relpath,
                        node.lineno,
                        "np sum over a strided (non-contiguous) slice: "
                        "pairwise-summation blocking differs from the "
                        "contiguous path",
                        "sum a contiguous array (np.ascontiguousarray or "
                        "restructure the slice) so the reduction matches "
                        "the bit-identity reference",
                    )


@flow_rule(
    "RN802",
    severity=Severity.ERROR,
    summary="dict-iteration-order-dependent accumulation in a bit-identity module",
    rationale="A `total += ...` inside `for ... in d.items()` folds floats "
    "in dict insertion order — an implicit property of whoever built the "
    "dict.  In bit-identity modules the fold order must be pinned by the "
    "code, not inherited from construction order.",
)
def _rn802_dict_order_accumulation(index: ProjectIndex) -> Iterator[Finding]:
    for modkey in sorted(index.modules):
        module = index.modules[modkey]
        if not _bit_identity_module(module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            if not (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr in _UNORDERED_ITERATORS
            ):
                continue
            for stmt in node.body:
                hit = next(
                    (
                        sub
                        for sub in ast.walk(stmt)
                        if isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, (ast.Add, ast.Sub, ast.Mult))
                    ),
                    None,
                )
                if hit is not None:
                    yield (
                        module.relpath,
                        hit.lineno,
                        f"accumulation inside `for ... in "
                        f"....{it.func.attr}()` depends on dict iteration "
                        "order",
                        "iterate sorted(...) or an explicitly ordered key "
                        "list so the fold order is deterministic by "
                        "contract",
                    )
                    break


@flow_rule(
    "RN803",
    severity=Severity.ERROR,
    summary="unseeded randomness in experiments/ or sim/",
    rationale="Experiments and the simulator feed reproduced frontiers; an "
    "unseeded Generator or global-state sampler makes runs "
    "unreproducible and CI flaky.  Every RNG must be an explicit "
    "Generator constructed from a recorded seed.",
)
def _rn803_unseeded_randomness(index: ProjectIndex) -> Iterator[Finding]:
    for modkey in sorted(index.modules):
        module = index.modules[modkey]
        parts = Path(module.relpath).parts
        if not any(part in ("experiments", "sim") for part in parts[:-1]):
            continue
        symbols = index.symbol_imports.get(modkey, {})
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                imported = symbols.get(func.id)
                if (
                    func.id == "default_rng"
                    and not node.args
                    and not node.keywords
                    and imported is not None
                    and imported[0].startswith("numpy")
                ):
                    yield (
                        module.relpath,
                        node.lineno,
                        "default_rng() constructed without a seed",
                        "pass an explicit recorded seed: default_rng(seed)",
                    )
                elif (
                    func.id == "Random"
                    and not node.args
                    and imported is not None
                    and imported[0] == "random"
                ):
                    yield (
                        module.relpath,
                        node.lineno,
                        "random.Random() constructed without a seed",
                        "pass an explicit recorded seed: Random(seed)",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            np_random = (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
            )
            if np_random and func.attr == "default_rng":
                if not node.args and not node.keywords:
                    yield (
                        module.relpath,
                        node.lineno,
                        "np.random.default_rng() constructed without a seed",
                        "pass an explicit recorded seed: default_rng(seed)",
                    )
            elif np_random and func.attr in _NP_SAMPLERS:
                yield (
                    module.relpath,
                    node.lineno,
                    f"legacy global np.random.{func.attr}() draws from "
                    "shared unseeded state",
                    "use an explicit np.random.default_rng(seed) Generator",
                )
            elif (
                isinstance(base, ast.Name)
                and base.id == "random"
                and func.attr in _PY_SAMPLERS
            ):
                yield (
                    module.relpath,
                    node.lineno,
                    f"module-level random.{func.attr}() draws from shared "
                    "unseeded state",
                    "use an explicit random.Random(seed) instance",
                )
            elif (
                isinstance(base, ast.Name)
                and base.id == "random"
                and func.attr == "Random"
                and not node.args
            ):
                yield (
                    module.relpath,
                    node.lineno,
                    "random.Random() constructed without a seed",
                    "pass an explicit recorded seed: Random(seed)",
                )
