"""``python -m repro.lint`` — standalone entry to the static analyzer."""

from __future__ import annotations

import sys

import repro.lint  # noqa: F401  (registers all rules)
from repro.lint.runner import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
