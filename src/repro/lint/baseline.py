"""Baseline suppression file for accepted pre-existing findings.

A baseline lets ``repro lint --self --deep`` exit cleanly on a tree with
*known, justified* findings while still failing on anything new.  The
file is committed JSON::

    {
      "version": 1,
      "entries": [
        {
          "rule": "RT703",
          "file": "repro/service/app.py",
          "message": "blocking un-timeouted Future.result() ...",
          "count": 1,
          "justification": "request thread intentionally waits for ..."
        }
      ]
    }

Entries are keyed on ``(rule, file, message)`` — deliberately **not** on
line numbers, so unrelated edits that shift code do not invalidate the
baseline.  ``count`` bounds how many identical findings the entry
absorbs: if the same (rule, file, message) starts firing *more* often
than baselined, the excess surfaces as a fresh finding.  An entry that
matches nothing is *stale* and is reported by the runner as ``RL002`` —
baselines only ever shrink.

``--update-baseline`` rewrites the file from the current findings,
carrying existing justifications forward; new entries get an empty
justification for a human to fill in before committing.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.exceptions import LintError
from repro.lint.diagnostics import Diagnostic

__all__ = ["BaselineEntry", "Baseline", "location_file"]

_FORMAT_VERSION = 1


def location_file(path: str) -> str:
    """The file part of a ``file:line`` diagnostic path (line dropped)."""
    file, sep, line = path.rpartition(":")
    if sep and line.isdigit():
        return file
    return path


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding shape (line numbers intentionally absent)."""

    rule: str
    file: str
    message: str
    count: int = 1
    justification: str = ""

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.file, self.message)


@dataclass(frozen=True)
class Baseline:
    """An immutable set of baseline entries keyed on (rule, file, message)."""

    entries: tuple[BaselineEntry, ...] = ()

    def __len__(self) -> int:
        return len(self.entries)

    def by_key(self) -> dict[tuple[str, str, str], BaselineEntry]:
        return {entry.key: entry for entry in self.entries}

    # ------------------------------------------------------------------ #
    # Construction / persistence
    # ------------------------------------------------------------------ #

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Baseline":
        """Validate and build from decoded JSON."""
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise LintError(
                f"unsupported baseline version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        raw_entries = payload.get("entries")
        if not isinstance(raw_entries, list):
            raise LintError("baseline 'entries' must be a list")
        entries: list[BaselineEntry] = []
        for i, raw in enumerate(raw_entries):
            if not isinstance(raw, Mapping):
                raise LintError(f"baseline entry #{i} is not an object")
            try:
                rule = str(raw["rule"])
                file = str(raw["file"])
                message = str(raw["message"])
            except KeyError as exc:
                raise LintError(
                    f"baseline entry #{i} is missing key {exc.args[0]!r}"
                ) from exc
            count = int(raw.get("count", 1))
            if count < 1:
                raise LintError(
                    f"baseline entry #{i} has non-positive count {count}"
                )
            entries.append(
                BaselineEntry(
                    rule=rule,
                    file=file,
                    message=message,
                    count=count,
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries=tuple(sorted(entries, key=lambda e: e.key)))

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file; malformed content raises ``LintError``."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except ValueError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise LintError(f"baseline {path} must be a JSON object")
        return cls.from_payload(payload)

    def to_payload(self) -> dict[str, Any]:
        """JSON-compatible representation (deterministically ordered)."""
        return {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "file": entry.file,
                    "message": entry.message,
                    "count": entry.count,
                    "justification": entry.justification,
                }
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }

    def save(self, path: Path | str) -> None:
        """Write the baseline (sorted, trailing newline, UTF-8)."""
        Path(path).write_text(
            json.dumps(self.to_payload(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_diagnostics(
        cls,
        diagnostics: Iterable[Diagnostic],
        *,
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """Baseline the given findings, carrying justifications forward."""
        counts: dict[tuple[str, str, str], int] = {}
        for diag in diagnostics:
            key = (diag.rule, location_file(diag.path), diag.message)
            counts[key] = counts.get(key, 0) + 1
        carried = previous.by_key() if previous is not None else {}
        entries = []
        for key in sorted(counts):
            rule, file, message = key
            old = carried.get(key)
            entries.append(
                BaselineEntry(
                    rule=rule,
                    file=file,
                    message=message,
                    count=counts[key],
                    justification=old.justification if old is not None else "",
                )
            )
        return cls(entries=tuple(entries))

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def apply(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], int, list[BaselineEntry]]:
        """Filter findings through the baseline.

        Returns ``(kept, suppressed_count, stale_entries)``: findings the
        baseline does not cover, how many it absorbed, and entries that
        matched nothing (or fewer findings than their ``count``) — the
        runner surfaces those as ``RL002``.
        """
        budget = {entry.key: entry.count for entry in self.entries}
        kept: list[Diagnostic] = []
        suppressed = 0
        for diag in diagnostics:
            key = (diag.rule, location_file(diag.path), diag.message)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                suppressed += 1
            else:
                kept.append(diag)
        stale = [
            replace(entry, count=budget[entry.key])
            for entry in self.entries
            if budget[entry.key] > 0
        ]
        return kept, suppressed, stale
