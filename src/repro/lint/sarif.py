"""SARIF 2.1.0 rendering of a lint report (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the
GitHub-ingestible interchange format: the CI ``lint-gate`` job uploads
the rendered file so findings annotate PR diffs.  One ``run`` is
emitted, with the full rule catalog in ``tool.driver.rules`` (so rule
metadata — summary, rationale, default severity — travels with the
results) and one ``result`` per diagnostic.

Severity mapping: ``error`` → ``error``, ``warning`` → ``warning``,
``info`` → ``note``.  Diagnostic paths of the ``file:line`` shape become
a physical location with a region; domain-rule object paths
(``catalog[VT2]``) become a logical location.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Any

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import Rule

__all__ = ["render_sarif", "sarif_payload"]

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _split_location(path: str) -> tuple[str | None, int | None]:
    """``(file, line)`` for a ``file:line`` path, ``(None, None)`` otherwise."""
    file, sep, line = path.rpartition(":")
    if sep and line.isdigit():
        return file, int(line)
    return None, None


def _result(diag: Diagnostic, rule_index: dict[str, int]) -> dict[str, Any]:
    text = diag.message
    if diag.suggestion:
        text += f" (fix: {diag.suggestion})"
    result: dict[str, Any] = {
        "ruleId": diag.rule,
        "level": _LEVELS[diag.severity],
        "message": {"text": text},
    }
    if diag.rule in rule_index:
        result["ruleIndex"] = rule_index[diag.rule]
    uri, line = _split_location(diag.path)
    if uri is not None:
        region: dict[str, Any] = {"startLine": line}
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": region,
                }
            }
        ]
    else:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": diag.path or "<target>"}
                ]
            }
        ]
    return result


def sarif_payload(
    report: LintReport, rules: Sequence[Rule] = ()
) -> dict[str, Any]:
    """The SARIF log as a JSON-compatible dict (for tests and rendering)."""
    catalog = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            "properties": {"kind": rule.kind, "scope": rule.scope},
        }
        for rule in rules
    ]
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": catalog,
                    }
                },
                "results": [_result(d, rule_index) for d in report],
                "properties": {
                    "target": report.target,
                    "summary": report.summary(),
                },
            }
        ],
    }


def render_sarif(report: LintReport, rules: Sequence[Rule] = ()) -> str:
    """Render the report as a SARIF 2.1.0 JSON string."""
    return json.dumps(sarif_payload(report, rules), indent=2)
