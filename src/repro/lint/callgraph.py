"""Pass 1 of the flow analyzer: project symbol table + call graph.

:class:`ProjectIndex` is built once per lint run from every parsed
module in the linted tree.  It resolves, with nothing but the ASTs:

* a **module table** keyed by dotted path relative to the lint root
  (``service/cache.py`` → ``service.cache``);
* per-module **import maps** (``import x as y`` module aliases and
  ``from m import f`` symbol aliases, including relative imports);
* every **class** (with its methods and base names) and every top-level
  **function**, addressed by qualified name ``modkey::Class.method`` /
  ``modkey::function``;
* per-class **instance-attribute types** for the first-order patterns
  ``self.x = SomeClass(...)`` (also through ``a or SomeClass(...)``
  defaults) and annotated properties / attributes whose annotation names
  a project class — this is what lets the call graph follow
  ``self.service.solve(...)`` from an HTTP handler into the service
  core;
* the **call graph** itself: for each function, the set of project
  functions it can call through direct names, ``self.`` method calls,
  imported-module attributes and first-order typed instance attributes.

The resolution is deliberately first-order (no dataflow through locals,
no higher-order functions): precise enough to carry the RT7xx/RN8xx
rules in :mod:`repro.lint.flow`, cheap enough to run on every deep lint.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.astrules import SourceModule

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProjectIndex",
    "module_key",
    "build_index",
]


def module_key(relpath: str) -> str:
    """Dotted module key for a lint-root-relative path.

    ``service/cache.py`` → ``service.cache``; package ``__init__.py``
    files collapse onto the package itself (``service/__init__.py`` →
    ``service``; the root ``__init__.py`` → ``""``).
    """
    parts = list(Path(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the project, addressed by qualname."""

    qualname: str  #: ``modkey::Class.method`` or ``modkey::function``
    modkey: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  #: owning class name, ``None`` for module level

    @property
    def name(self) -> str:
        """Bare function name (no class / module qualification)."""
        return self.node.name

    @property
    def display(self) -> str:
        """Human-oriented name used in diagnostics (``Class.method``)."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    """One class: methods, base names and first-order attribute types."""

    qualname: str  #: ``modkey::ClassName``
    name: str
    modkey: str
    module: SourceModule
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` → class qualname, for attrs assigned/annotated with
    #: a resolvable project class (includes annotated @property returns).
    attr_types: dict[str, str] = field(default_factory=dict)


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ProjectIndex:
    """The whole-program symbol table + call graph (see module docstring)."""

    modules: dict[str, SourceModule] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: modkey → alias → dotted module target (``import x.y as z``).
    module_imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: modkey → alias → (dotted module, symbol) (``from m import f as g``).
    symbol_imports: dict[str, dict[str, tuple[str, str]]] = field(
        default_factory=dict
    )
    #: caller qualname → callee qualnames (sorted for determinism).
    call_graph: dict[str, tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def resolve_module(self, dotted: str, *, current: str = "") -> str | None:
        """Map a dotted import target onto an indexed module key.

        Absolute imports inside the linted package carry the package's
        own name (``repro.service.codec``) which the lint-root-relative
        keys do not; leading components are stripped one at a time until
        a key matches (``service.codec``).
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidate = ".".join(parts[start:])
            if candidate in self.modules:
                return candidate
        del current
        return None

    def class_in_module(self, modkey: str, name: str) -> ClassInfo | None:
        """The class ``name`` defined in ``modkey``, if indexed."""
        return self.classes.get(f"{modkey}::{name}")

    def function_in_module(self, modkey: str, name: str) -> FunctionInfo | None:
        """The top-level function ``name`` defined in ``modkey``."""
        return self.functions.get(f"{modkey}::{name}")

    def resolve_symbol(
        self, modkey: str, name: str
    ) -> FunctionInfo | ClassInfo | None:
        """Resolve a bare name used inside ``modkey`` to a project object.

        Checks, in order: a function or class defined in the module
        itself, then the module's ``from … import`` symbol table.
        """
        local = self.function_in_module(modkey, name) or self.class_in_module(
            modkey, name
        )
        if local is not None:
            return local
        imported = self.symbol_imports.get(modkey, {}).get(name)
        if imported is None:
            return None
        source_mod, symbol = imported
        target = self.resolve_module(source_mod, current=modkey)
        if target is None:
            return None
        return self.function_in_module(target, symbol) or self.class_in_module(
            target, symbol
        )

    def method_of(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Look up a method on ``cls``, following project base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                resolved = self.resolve_symbol(current.modkey, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def callees(self, qualname: str) -> tuple[str, ...]:
        """Direct callees of one function (empty when unknown)."""
        return self.call_graph.get(qualname, ())

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> FunctionInfo | None:
        """Resolve one call site inside ``fn`` to a project function.

        Same first-order resolution the call graph is built from, exposed
        so flow rules can attribute *specific* call sites (e.g. "this call
        is made while holding the lock") rather than whole functions.
        """
        return _callee_of(self, fn, call)

    def reachable(
        self, roots: Iterable[str], *, max_depth: int | None = None
    ) -> dict[str, tuple[int, str | None]]:
        """BFS over the call graph: qualname → ``(depth, parent)``.

        Parent pointers reconstruct one shortest call chain for
        diagnostics; roots have ``parent=None``.  Roots are visited in
        the given order and neighbours in sorted order, so the chain
        chosen for any function is deterministic.
        """
        out: dict[str, tuple[int, str | None]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root not in out:
                out[root] = (0, None)
                queue.append(root)
        while queue:
            current = queue.popleft()
            depth = out[current][0]
            if max_depth is not None and depth >= max_depth:
                continue
            for callee in self.callees(current):
                if callee not in out:
                    out[callee] = (depth + 1, current)
                    queue.append(callee)
        return out

    def call_chain(
        self, target: str, reach: Mapping[str, tuple[int, str | None]]
    ) -> list[str]:
        """Root → … → ``target`` chain from :meth:`reachable` output."""
        chain = [target]
        parent = reach[target][1]
        while parent is not None:
            chain.append(parent)
            parent = reach[parent][1]
        return list(reversed(chain))


# --------------------------------------------------------------------- #
# Index construction
# --------------------------------------------------------------------- #


def _collect_imports(
    index: ProjectIndex, modkey: str, tree: ast.Module
) -> None:
    module_imports: dict[str, str] = {}
    symbol_imports: dict[str, tuple[str, str]] = {}
    package = modkey.rsplit(".", 1)[0] if "." in modkey else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                # `import a.b.c` binds `a`; only a full asname keeps the
                # dotted target addressable for first-order resolution.
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module_imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: `from .codec import x` inside
                # service.cache resolves against the package `service`.
                prefix_parts = modkey.split(".") if modkey else []
                # level 1 = current package; each extra level pops one.
                keep = len(prefix_parts) - (node.level - 1)
                if modkey and not _is_package(index, modkey):
                    keep -= 1
                prefix = ".".join(prefix_parts[: max(keep, 0)])
                base = f"{prefix}.{base}".strip(".") if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                symbol_imports[bound] = (base, alias.name)
    index.module_imports[modkey] = module_imports
    index.symbol_imports[modkey] = symbol_imports
    del package


def _is_package(index: ProjectIndex, modkey: str) -> bool:
    """Whether ``modkey`` names a package (``__init__``-backed key)."""
    module = index.modules.get(modkey)
    if module is None:
        return False
    return Path(module.relpath).name == "__init__.py"


def _collect_definitions(
    index: ProjectIndex, modkey: str, module: SourceModule
) -> None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname=f"{modkey}::{node.name}",
                modkey=modkey,
                module=module,
                node=node,
            )
            index.functions[info.qualname] = info
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                name
                for base in node.bases
                if (name := _dotted_name(base)) is not None
            )
            cls = ClassInfo(
                qualname=f"{modkey}::{node.name}",
                name=node.name,
                modkey=modkey,
                module=module,
                node=node,
                bases=tuple(base.split(".")[-1] for base in bases),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname=f"{modkey}::{node.name}.{item.name}",
                        modkey=modkey,
                        module=module,
                        node=item,
                        cls=node.name,
                    )
                    cls.methods[item.name] = info
                    index.functions[info.qualname] = info
            index.classes[cls.qualname] = cls


def _class_from_expr(
    index: ProjectIndex, modkey: str, expr: ast.expr
) -> ClassInfo | None:
    """The project class an expression instantiates or names, if any.

    Handles ``SomeClass(...)``, ``mod.SomeClass(...)``, the common
    ``given or SomeClass(...)`` default idiom, and bare annotations
    (``SomeClass`` / ``mod.SomeClass`` / ``"SomeClass"``).
    """
    if isinstance(expr, ast.BoolOp):
        for operand in expr.values:
            found = _class_from_expr(index, modkey, operand)
            if found is not None:
                return found
        return None
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        # String annotation: take the last dotted component.
        name = expr.value.strip().strip("'\"").split("|")[0].strip()
        name = name.split("[")[0].split(".")[-1]
        resolved = index.resolve_symbol(modkey, name)
        return resolved if isinstance(resolved, ClassInfo) else None
    if isinstance(expr, ast.Name):
        resolved = index.resolve_symbol(modkey, expr.id)
        return resolved if isinstance(resolved, ClassInfo) else None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        alias = expr.value.id
        target_mod = index.module_imports.get(modkey, {}).get(alias)
        if target_mod is None:
            return None
        resolved_mod = index.resolve_module(target_mod, current=modkey)
        if resolved_mod is None:
            return None
        return index.class_in_module(resolved_mod, expr.attr)
    return None


def _collect_attr_types(index: ProjectIndex, cls: ClassInfo) -> None:
    modkey = cls.modkey
    # Annotated properties / methods returning a project class: lets the
    # graph follow `self.service.solve(...)` through `-> SchedulingService`.
    for name, method in cls.methods.items():
        if method.node.returns is not None:
            target = _class_from_expr(index, modkey, method.node.returns)
            if target is not None and any(
                isinstance(deco, ast.Name)
                and deco.id in ("property", "cached_property")
                or isinstance(deco, ast.Attribute)
                and deco.attr == "cached_property"
                for deco in method.node.decorator_list
            ):
                cls.attr_types[name] = target.qualname
    # Class-level annotated attributes (dataclass fields).
    for item in cls.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            target = _class_from_expr(index, modkey, item.annotation)
            if target is not None:
                cls.attr_types[item.target.id] = target.qualname
    # `self.x = SomeClass(...)` in any method (usually __init__).
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    found = _class_from_expr(index, modkey, node.value)
                    if found is not None:
                        cls.attr_types.setdefault(tgt.attr, found.qualname)


def _callee_of(
    index: ProjectIndex, fn: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    """Resolve one call site to a project function, or ``None``."""
    func = call.func
    modkey = fn.modkey
    owner = index.classes.get(f"{modkey}::{fn.cls}") if fn.cls else None

    if isinstance(func, ast.Name):
        resolved = index.resolve_symbol(modkey, func.id)
        if isinstance(resolved, FunctionInfo):
            return resolved
        if isinstance(resolved, ClassInfo):
            return index.method_of(resolved, "__init__")
        return None

    if not isinstance(func, ast.Attribute):
        return None

    base = func.value
    # self.method(...)
    if isinstance(base, ast.Name):
        if base.id == "self" and owner is not None:
            return index.method_of(owner, func.attr)
        # module_alias.func(...)
        target_mod = index.module_imports.get(modkey, {}).get(base.id)
        if target_mod is not None:
            resolved_mod = index.resolve_module(target_mod, current=modkey)
            if resolved_mod is not None:
                found = index.function_in_module(resolved_mod, func.attr)
                if found is not None:
                    return found
                found_cls = index.class_in_module(resolved_mod, func.attr)
                if found_cls is not None:
                    return index.method_of(found_cls, "__init__")
        # ClassName.method(...) (unbound / classmethod style)
        resolved = index.resolve_symbol(modkey, base.id)
        if isinstance(resolved, ClassInfo):
            return index.method_of(resolved, func.attr)
        return None

    # self.attr.method(...) through a first-order typed attribute.
    if (
        isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
        and owner is not None
    ):
        attr_cls_qualname = owner.attr_types.get(base.attr)
        if attr_cls_qualname is not None:
            attr_cls = index.classes.get(attr_cls_qualname)
            if attr_cls is not None:
                return index.method_of(attr_cls, func.attr)
    return None


def _collect_calls(index: ProjectIndex) -> None:
    for fn in index.functions.values():
        callees: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = _callee_of(index, fn, node)
                if callee is not None and callee.qualname != fn.qualname:
                    callees.add(callee.qualname)
        index.call_graph[fn.qualname] = tuple(sorted(callees))


def build_index(modules: Sequence[SourceModule]) -> ProjectIndex:
    """Build the whole-program index over already-parsed modules."""
    index = ProjectIndex()
    for module in modules:
        index.modules[module_key(module.relpath)] = module
    for modkey, module in index.modules.items():
        _collect_imports(index, modkey, module.tree)
    for modkey, module in index.modules.items():
        _collect_definitions(index, modkey, module)
    for cls in index.classes.values():
        _collect_attr_types(index, cls)
    _collect_calls(index)
    return index
