"""Command-line interface: ``python -m repro …`` / the ``repro`` script.

Subcommands
-----------
``experiment <id> [--quick]``
    Run one of the registered paper experiments and print its report.
    ``--quick`` shrinks instance counts/sizes for a fast smoke run.
``experiments``
    List the available experiment ids.
``solve --workload {example,wrf} --algorithm <name> --budget <B>``
    Solve one built-in instance with one scheduler and print the schedule.
``schedulers``
    List the registered scheduling algorithms.
``simulate --workload {example,wrf} --budget <B> [--pack]``
    Schedule with Critical-Greedy, execute on the DES simulator and print
    the execution trace.
``lint [--workload … | --file … | --self | PATHS] [--format json]``
    Static analysis: domain-lint an instance (and optionally a scheduler's
    output) or AST-lint source code; see ``docs/static_analysis.md``.
``serve [--host H] [--port P] [--workers N] [--queue-size Q] …``
    Run one HTTP scheduling node (see ``docs/service.md``);
    ``--degrade-on-timeout`` answers deadline overruns with the least-cost
    fallback schedule (marked ``degraded``) instead of a 504.
``route NODE_URL [NODE_URL …] [--port P] [--hedge-delay S] …``
    Run the shard router in front of a fleet of nodes: consistent
    ``problem_hash``-prefix routing, retries with backoff, automatic
    failover, per-node circuit breakers, optional hedged requests.
``submit [--url U] --budget <B> [--max-retries N] [--deadline S] [--validate]``
    Submit one solve request to a running service (or router) and print
    the JSON response; retries 503s honouring ``Retry-After``;
    ``--validate`` lints the response client-side (RS601).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.algorithms import available_schedulers, get_scheduler
from repro.exceptions import ReproError
from repro.experiments import available_experiments, get_experiment

__all__ = ["main", "build_parser"]

#: Reduced parameter sets for ``experiment --quick`` runs.
_QUICK_PARAMS: dict[str, dict] = {
    "table2": {},
    "table3": {"instances_per_size": 2},
    "fig7": {"instances_per_size": 10},
    "table4": {"sizes": ((5, 6, 3), (10, 17, 4), (15, 65, 5), (20, 80, 5))},
    "fig9": {"sizes": ((5, 6, 3), (10, 17, 4), (15, 65, 5)), "instances": 3},
    "fig10": {"sizes": ((5, 6, 3), (10, 17, 4), (15, 65, 5)), "instances": 3},
    "fig11": {"sizes": ((5, 6, 3), (10, 17, 4), (15, 65, 5)), "instances": 3},
    "wrf": {},
    "complexity": {"trials": 4},
    "leaderboard": {"sizes": ((10, 17, 4),), "instances": 2, "levels": 4},
    "sensitivity": {"size": (10, 17, 4), "instances": 2, "levels": 4},
    "robustness": {"runs": 8},
    "frontier": {"sizes": ((5, 6, 3), (6, 11, 3)), "instances_per_size": 5},
}


def _problem_for(workload: str, file: str | None = None):
    if file is not None:
        from repro.core.serialize import load_problem

        return load_problem(file)
    from repro.workloads import example_problem, wrf_problem

    if workload == "example":
        return example_problem()
    if workload == "wrf":
        return wrf_problem()
    raise ReproError(f"unknown workload {workload!r}; use 'example' or 'wrf'")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MED-CC workflow scheduling (Lin & Wu, ICPP 2013) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("experiment_id", choices=available_experiments())
    p_exp.add_argument(
        "--quick", action="store_true", help="reduced-scale smoke run"
    )

    sub.add_parser("experiments", help="list available experiments")
    sub.add_parser("schedulers", help="list available scheduling algorithms")

    p_solve = sub.add_parser("solve", help="solve a built-in or saved instance")
    p_solve.add_argument("--workload", default="example", choices=("example", "wrf"))
    p_solve.add_argument(
        "--file", default=None, help="JSON instance file (overrides --workload)"
    )
    p_solve.add_argument("--algorithm", default="critical-greedy")
    p_solve.add_argument("--budget", type=float, required=True)
    p_solve.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print one machine-readable JSON document (the service wire "
        "format) instead of the human-readable listing",
    )

    p_sim = sub.add_parser("simulate", help="schedule + simulate a workload")
    p_sim.add_argument("--workload", default="example", choices=("example", "wrf"))
    p_sim.add_argument(
        "--file", default=None, help="JSON instance file (overrides --workload)"
    )
    p_sim.add_argument("--budget", type=float, required=True)
    p_sim.add_argument(
        "--pack", action="store_true", help="apply VM-reuse packing"
    )

    p_rep = sub.add_parser(
        "report", help="run every experiment and write one consolidated report"
    )
    p_rep.add_argument(
        "--quick", action="store_true", help="reduced-scale smoke run"
    )
    p_rep.add_argument(
        "--output",
        default="reproduction_report.txt",
        help="target text file",
    )

    p_vis = sub.add_parser(
        "visualize", help="render a workload as DOT or an execution Gantt"
    )
    p_vis.add_argument("--workload", default="example", choices=("example", "wrf"))
    p_vis.add_argument(
        "--file", default=None, help="JSON instance file (overrides --workload)"
    )
    p_vis.add_argument("--budget", type=float, required=True)
    p_vis.add_argument("--format", default="gantt", choices=("gantt", "dot"))

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: lint an instance, a schedule, or the codebase",
    )
    from repro.lint.runner import add_lint_arguments

    add_lint_arguments(p_lint)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP scheduling service (see docs/service.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8423, help="listen port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="worker threads solving jobs"
    )
    p_serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="pending-job bound; excess submissions get HTTP 503",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024, help="in-memory LRU capacity"
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="optional directory for the persistent disk cache tier",
    )
    p_serve.add_argument(
        "--live-dir",
        default=None,
        help="optional directory for live-workflow event logs; nodes sharing "
        "it can recover each other's running workflows on failover",
    )
    p_serve.add_argument(
        "--live-peer",
        action="append",
        default=[],
        metavar="URL",
        help="sibling node base URL to replicate live-workflow logs to "
        "(and heal a corrupt/missing local log from); repeatable",
    )
    p_serve.add_argument(
        "--live-fsync",
        choices=("on", "off"),
        default="on",
        help="fsync each live-log append before acknowledging (default on; "
        "'off' is UNSAFE — an acked event can vanish on power loss)",
    )
    p_serve.add_argument(
        "--live-checkpoint-interval",
        type=int,
        default=0,
        metavar="N",
        help="snapshot + compact a live log every N accepted events "
        "(0 = never)",
    )
    p_serve.add_argument(
        "--live-retention",
        type=float,
        default=None,
        metavar="SECONDS",
        help="archive a completed workflow's log after this many idle "
        "seconds, and expire archived logs after another window "
        "(default: keep forever)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (none by default)",
    )
    p_serve.add_argument(
        "--degrade-on-timeout",
        action="store_true",
        help="answer deadline overruns with the least-cost fallback schedule "
        "(marked degraded) instead of HTTP 504",
    )
    p_serve.add_argument(
        "--async",
        dest="async_core",
        action="store_true",
        help="run the asyncio core: event loop + bounded solver pool with "
        "single-flight request coalescing and micro-batched solving "
        "(docs/service.md 'Async core')",
    )
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="async core: how long a cache miss waits for same-workflow "
        "company before solving, in milliseconds (0 disables batching)",
    )
    p_serve.add_argument(
        "--batch-max",
        type=int,
        default=32,
        metavar="N",
        help="async core: close a micro-batch window early at N items",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )

    p_route = sub.add_parser(
        "route",
        help="run the shard router in front of repro serve nodes "
        "(see docs/service.md)",
    )
    p_route.add_argument(
        "nodes", nargs="+", help="node base URLs, e.g. http://127.0.0.1:8423"
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument(
        "--port", type=int, default=8433, help="listen port (0 = ephemeral)"
    )
    p_route.add_argument(
        "--prefix-len",
        type=int,
        default=2,
        help="problem_hash hex digits used for sharding (2 = 256 shards)",
    )
    p_route.add_argument(
        "--max-retries", type=int, default=3, help="retries per routed request"
    )
    p_route.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="total retry time budget per request, in seconds",
    )
    p_route.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        help="enable hedged requests for previously-seen keys: seconds of "
        "primary silence before a secondary node is also asked",
    )
    p_route.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive node failures that open its circuit breaker",
    )
    p_route.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        help="seconds an open breaker waits before half-opening",
    )
    p_route.add_argument(
        "--node-timeout",
        type=float,
        default=30.0,
        help="per-request timeout against each node, in seconds",
    )
    p_route.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )

    p_submit = sub.add_parser(
        "submit", help="submit one solve request to a running service"
    )
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8423", help="service base URL"
    )
    p_submit.add_argument(
        "--workload", default="example", choices=("example", "wrf")
    )
    p_submit.add_argument(
        "--file", default=None, help="JSON instance file (overrides --workload)"
    )
    p_submit.add_argument("--algorithm", default=None)
    p_submit.add_argument("--budget", type=float, required=True)
    p_submit.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    p_submit.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retry 503 responses (overloaded/draining service) this many "
        "times with exponential backoff, honouring Retry-After",
    )
    p_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="total retry time budget in seconds (with --max-retries)",
    )
    p_submit.add_argument(
        "--validate",
        action="store_true",
        help="lint the response client-side (RS601: replayed schedule must "
        "still satisfy the request budget)",
    )

    p_gen = sub.add_parser(
        "generate", help="generate a random instance and save it as JSON"
    )
    p_gen.add_argument("--modules", type=int, required=True, help="m (incl. entry/exit)")
    p_gen.add_argument("--edges", type=int, required=True, help="|Ew|")
    p_gen.add_argument("--types", type=int, required=True, help="n VM types")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--output", required=True, help="target JSON path")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "experiments":
            for experiment_id in available_experiments():
                print(experiment_id)
        elif args.command == "schedulers":
            for name in available_schedulers():
                print(name)
        elif args.command == "experiment":
            params = _QUICK_PARAMS.get(args.experiment_id, {}) if args.quick else {}
            report = get_experiment(args.experiment_id)(**params)
            print(report.render())
        elif args.command == "report":
            from pathlib import Path

            sections = []
            for experiment_id in available_experiments():
                params = (
                    _QUICK_PARAMS.get(experiment_id, {}) if args.quick else {}
                )
                print(f"running {experiment_id} ...", flush=True)
                report = get_experiment(experiment_id)(**params)
                sections.append(report.render())
            Path(args.output).write_text(
                "\n\n" + ("\n\n" + "=" * 78 + "\n\n").join(sections) + "\n"
            )
            print(f"wrote {args.output} ({len(sections)} experiments)")
        elif args.command == "lint":
            import repro.lint  # noqa: F401  (registers all rules)
            from repro.lint.runner import run as run_lint

            return run_lint(args)
        elif args.command == "generate":
            import numpy as np

            from repro.core.serialize import save_problem
            from repro.workloads.generator import generate_problem

            problem = generate_problem(
                (args.modules, args.edges, args.types),
                np.random.default_rng(args.seed),
            )
            path = save_problem(problem, args.output)
            lo, hi = problem.budget_range()
            print(
                f"wrote {path} (size {problem.problem_size}, "
                f"budget range [{lo:.2f}, {hi:.2f}])"
            )
        elif args.command == "solve":
            problem = _problem_for(args.workload, args.file)
            scheduler = get_scheduler(args.algorithm)
            result = scheduler.solve(problem, args.budget)
            if args.as_json:
                from repro.service.codec import dumps, encode_schedule

                print(
                    dumps(
                        {
                            "algorithm": result.algorithm,
                            "budget": args.budget,
                            "makespan": result.med,
                            "cost": result.total_cost,
                            "schedule": encode_schedule(
                                result.schedule, problem.catalog
                            ),
                            "steps": len(result.steps),
                        }
                    )
                )
            else:
                print(
                    f"algorithm={result.algorithm} budget={args.budget:g} "
                    f"MED={result.med:.4f} cost={result.total_cost:.4f}"
                )
                for module, type_name in sorted(
                    result.schedule.as_type_names(problem.catalog.names).items()
                ):
                    print(f"  {module} -> {type_name}")
                for step in result.steps:
                    print("  " + step.describe(problem.catalog.names))
        elif args.command == "serve":
            serve_kwargs = dict(
                host=args.host,
                port=args.port,
                max_workers=args.workers,
                queue_size=args.queue_size,
                cache_size=args.cache_size,
                cache_dir=args.cache_dir,
                default_timeout=args.timeout,
                degrade_on_timeout=args.degrade_on_timeout,
                live_dir=args.live_dir,
                live_fsync=args.live_fsync == "on",
                live_peers=args.live_peer,
                live_checkpoint_interval=args.live_checkpoint_interval,
                live_retention=args.live_retention,
                verbose=args.verbose,
            )
            if args.async_core:
                from repro.service.aio.http import serve_async

                return serve_async(
                    batch_window_ms=args.batch_window_ms,
                    batch_max=args.batch_max,
                    **serve_kwargs,
                )
            from repro.service.http import serve

            return serve(**serve_kwargs)
        elif args.command == "route":
            from repro.service.router import serve_router

            return serve_router(
                args.nodes,
                host=args.host,
                port=args.port,
                prefix_len=args.prefix_len,
                max_retries=args.max_retries,
                retry_deadline=args.deadline,
                hedge_delay=args.hedge_delay,
                breaker_threshold=args.breaker_threshold,
                breaker_reset=args.breaker_reset,
                node_timeout=args.node_timeout,
                verbose=args.verbose,
            )
        elif args.command == "submit":
            from repro.core.serialize import problem_to_dict
            from repro.service.codec import dumps
            from repro.service.http import ServiceClient
            from repro.service.resilience import RetryPolicy

            problem = _problem_for(args.workload, args.file)
            request: dict = {
                "problem": problem_to_dict(problem),
                "budget": args.budget,
            }
            if args.algorithm is not None:
                request["algorithm"] = args.algorithm
            if args.timeout is not None:
                request["timeout"] = args.timeout
            retry = (
                RetryPolicy(max_retries=args.max_retries, deadline=args.deadline)
                if args.max_retries > 0
                else None
            )
            response = ServiceClient(args.url, retry=retry).solve(request)
            print(dumps(response))
            if response.get("status") != "ok":
                return 1
            if args.validate:
                from repro.lint import lint_service_response

                report = lint_service_response(
                    problem, response, budget=args.budget
                )
                if not report.ok:
                    print(report.render(), file=sys.stderr)
                    return 1
        elif args.command == "visualize":
            from repro.algorithms import CriticalGreedyScheduler
            from repro.analysis.visualize import gantt, workflow_to_dot
            from repro.sim import WorkflowBroker

            problem = _problem_for(args.workload, args.file)
            result = CriticalGreedyScheduler().solve(problem, args.budget)
            if args.format == "dot":
                print(
                    workflow_to_dot(
                        problem.workflow,
                        schedule=result.schedule,
                        type_names=problem.catalog.names,
                    )
                )
            else:
                sim = WorkflowBroker(
                    problem=problem, schedule=result.schedule
                ).run()
                print(gantt(sim.trace))
        elif args.command == "simulate":
            from repro.algorithms import CriticalGreedyScheduler
            from repro.sim import WorkflowBroker, pack_schedule

            problem = _problem_for(args.workload, args.file)
            result = CriticalGreedyScheduler().solve(problem, args.budget)
            plan = (
                pack_schedule(problem, result.schedule, mode="adjacent")
                if args.pack
                else None
            )
            sim = WorkflowBroker(
                problem=problem, schedule=result.schedule, vm_plan=plan
            ).run()
            print(sim.trace.render())
            print(
                f"analytical MED={result.med:.4f} cost={result.total_cost:.4f}; "
                f"simulated MED={sim.makespan:.4f} cost={sim.total_cost:.4f}"
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
