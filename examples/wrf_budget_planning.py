#!/usr/bin/env python
"""WRF budget planning: the paper's testbed scenario end to end.

Loads the WRF instance (published execution-time matrix, Table VI; VM
catalog, Table V), sweeps the full budget range to expose the cost/delay
frontier, then executes the chosen schedule on the discrete-event
simulator — first under the paper's assumptions, then with realistic VM
boot latency — and applies VM-reuse packing to shrink the bill.

Run:  python examples/wrf_budget_planning.py
"""

from repro import CriticalGreedyScheduler, MedCCProblem, VMType, VMTypeCatalog
from repro.sim import WorkflowBroker, pack_schedule
from repro.workloads.wrf import WRF_TE, wrf_catalog, wrf_problem, wrf_workflow


def frontier(problem, scheduler, levels: int = 12):
    """(budget, MED, cost) points across the budget range."""
    points = []
    for budget in problem.budget_levels(levels):
        result = scheduler.solve(problem, budget)
        points.append((budget, result.med, result.total_cost, result))
    return points


def main() -> None:
    problem = wrf_problem()
    cg = CriticalGreedyScheduler()
    print(
        f"WRF grouped workflow: {len(problem.matrices.module_names)} aggregate "
        f"modules, cost range [{problem.cmin:g}, {problem.cmax:g}] "
        "(paper: [125.9, 243.6])\n"
    )

    print(f"{'budget':>8} {'MED (s)':>9} {'cost':>7}   schedule (w1..w6)")
    print("-" * 50)
    chosen = None
    for budget, med, cost, result in frontier(problem, cg):
        vec = "".join(
            str(result.schedule[m] + 1) for m in problem.matrices.module_names
        )
        print(f"{budget:8.1f} {med:9.1f} {cost:7.1f}   {vec}")
        if chosen is None and med < 300:
            chosen = (budget, result)

    assert chosen is not None
    budget, result = chosen
    print(f"\nchosen operating point: budget {budget:.1f} -> MED {result.med:.1f}s")

    # Execute under the paper's assumptions: drift must be zero.
    sim = WorkflowBroker(problem=problem, schedule=result.schedule).run()
    print(
        f"simulated (ideal cloud): makespan={sim.makespan:.1f}s "
        f"cost={sim.total_cost:.1f} (drift {sim.makespan_drift:+.1f}s)"
    )

    # VM-reuse packing (paper section VI-C3).
    plan = pack_schedule(problem, result.schedule, mode="adjacent")
    packed = WorkflowBroker(
        problem=problem, schedule=result.schedule, vm_plan=plan
    ).run()
    print(
        f"with VM reuse: {plan.num_vms} VMs instead of "
        f"{len(problem.matrices.module_names)}, cost {packed.total_cost:.1f}, "
        f"makespan unchanged ({packed.makespan:.1f}s)"
    )

    # Inject a 60s Xen boot on every type: how robust is the plan?
    booted_catalog = VMTypeCatalog(
        [
            VMType(name=t.name, power=t.power, rate=t.rate, startup_time=60.0)
            for t in wrf_catalog()
        ]
    )
    realistic = MedCCProblem(
        workflow=wrf_workflow(),
        catalog=booted_catalog,
        measured_te=dict(WRF_TE),
    )
    for prelaunch in (False, True):
        sim_boot = WorkflowBroker(
            problem=realistic, schedule=result.schedule, prelaunch=prelaunch
        ).run()
        label = "prelaunched" if prelaunch else "lazy boot"
        print(
            f"with 60s VM boots ({label}): makespan={sim_boot.makespan:.1f}s "
            f"(drift {sim_boot.makespan - result.med:+.1f}s)"
        )


if __name__ == "__main__":
    main()
