#!/usr/bin/env python
"""Quickstart: schedule a workflow under a budget with Critical-Greedy.

Builds a small mosaicking-style workflow, defines an EC2-like VM catalog,
solves MED-CC at a few budgets, and compares Critical-Greedy against the
GAIN3 baseline and the exact optimum.

Run:  python examples/quickstart.py
"""

from repro import (
    CriticalGreedyScheduler,
    ExhaustiveScheduler,
    Gain3Scheduler,
    MedCCProblem,
    VMType,
    VMTypeCatalog,
    WorkflowBuilder,
)


def build_problem() -> MedCCProblem:
    """A 7-module ingest/process/merge workflow on a 3-type catalog."""
    builder = WorkflowBuilder("quickstart")
    builder.add_module("ingest", workload=12.0)
    for i in range(4):
        builder.add_module(f"tile{i}", workload=30.0 + 14.0 * i)
        builder.add_edge("ingest", f"tile{i}", data_size=2.0)
    builder.add_module("merge", workload=25.0)
    builder.add_module("publish", workload=6.0)
    for i in range(4):
        builder.add_edge(f"tile{i}", "merge", data_size=2.0)
    builder.add_edge("merge", "publish", data_size=1.0)
    workflow = builder.normalized()  # adds zero-time entry/exit staging

    catalog = VMTypeCatalog(
        [
            VMType(name="small", power=5.0, rate=1.0),
            VMType(name="large", power=15.0, rate=3.0),
            VMType(name="xlarge", power=30.0, rate=6.0),
        ]
    )
    return MedCCProblem(workflow=workflow, catalog=catalog)


def main() -> None:
    problem = build_problem()
    lo, hi = problem.budget_range()
    print(f"workflow: {problem.workflow.name}, modules={problem.num_modules}, "
          f"types={problem.num_types}")
    print(f"meaningful budget range: [{lo:g}, {hi:g}]\n")

    cg = CriticalGreedyScheduler()
    gain = Gain3Scheduler()
    optimal = ExhaustiveScheduler()

    header = f"{'budget':>8} {'CG MED':>8} {'GAIN3 MED':>10} {'optimal':>8} {'CG cost':>8}"
    print(header)
    print("-" * len(header))
    for budget in problem.budget_levels(6):
        r_cg = cg.solve(problem, budget)
        r_gain = gain.solve(problem, budget)
        r_opt = optimal.solve(problem, budget)
        print(
            f"{budget:8.1f} {r_cg.med:8.2f} {r_gain.med:10.2f} "
            f"{r_opt.med:8.2f} {r_cg.total_cost:8.1f}"
        )

    budget = problem.median_budget()
    result = cg.solve(problem, budget)
    print(f"\nCritical-Greedy at the median budget {budget:g}:")
    for module, vm_type in sorted(
        result.schedule.as_type_names(problem.catalog.names).items()
    ):
        print(f"  {module:>8} -> {vm_type}")
    print("\nrescheduling trace (from the least-cost schedule):")
    for step in result.steps:
        print("  " + step.describe(problem.catalog.names))


if __name__ == "__main__":
    main()
