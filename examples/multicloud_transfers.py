#!/usr/bin/env python
"""Extension study: inter-cloud data transfers (the paper's future work).

Section VII: "We also plan to incorporate the cost of inter-cloud data
movement into workflow scheduling in multi-cloud environments."  This
example takes an Epigenomics-style workflow and contrasts three settings:

1. single cloud (the paper's model: free, instantaneous transfers);
2. multi-cloud with finite bandwidth and latency (transfers lengthen the
   critical path — Critical-Greedy is transfer-aware through the CP);
3. multi-cloud with per-unit transfer charges CR > 0 (Eq. 4) that eat
   into the scheduling budget.

Run:  python examples/multicloud_transfers.py
"""

from repro import CriticalGreedyScheduler, MedCCProblem, TransferModel
from repro.sim import WorkflowBroker
from repro.workloads import epigenomics_like_workflow, paper_catalog

SETTINGS = (
    ("single cloud (paper)", TransferModel()),
    ("multi-cloud links", TransferModel(bandwidth=2.0, latency=0.2)),
    ("multi-cloud + egress fees", TransferModel(bandwidth=2.0, latency=0.2, unit_cost=0.4)),
)


def main() -> None:
    workflow = epigenomics_like_workflow(lanes=4)
    catalog = paper_catalog(4)
    cg = CriticalGreedyScheduler()

    print(f"workflow: {workflow.name} ({len(workflow.schedulable_names)} modules)\n")
    reference_budget = None
    for label, transfers in SETTINGS:
        problem = MedCCProblem(
            workflow=workflow, catalog=catalog, transfers=transfers
        )
        lo, hi = problem.budget_range()
        if reference_budget is None:
            reference_budget = (lo + hi) / 2
        # The same monetary budget buys less once egress fees apply.
        budget = max(reference_budget, lo)
        result = cg.solve(problem, budget)
        sim = WorkflowBroker(problem=problem, schedule=result.schedule).run()
        print(f"{label}:")
        print(f"  budget range [{lo:.1f}, {hi:.1f}], planning budget {budget:.1f}")
        print(
            f"  CG: MED={result.med:.2f} cost={result.total_cost:.2f} "
            f"({len(result.steps)} upgrades)"
        )
        print(
            f"  simulated: makespan={sim.makespan:.2f} cost={sim.total_cost:.2f} "
            f"(drift {sim.makespan_drift:+.2f})"
        )
        if transfers.unit_cost:
            print(
                f"  egress charges: {problem.transfer_cost_total:.2f} of the "
                "budget goes to data movement before any VM is paid"
            )
        print()

    print(
        "takeaway: finite links stretch the critical path (the same budget "
        "buys a longer MED), and egress fees shrink the effective VM budget "
        "- both effects the paper defers to future work, modelled here."
    )


if __name__ == "__main__":
    main()
