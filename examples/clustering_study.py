#!/usr/bin/env python
"""Why the paper schedules *clustered* workflows: a preprocessing study.

MED-CC's task graphs are assumed pre-clustered (§III-B) so that
inter-module data transfer is negligible.  This study makes the argument
quantitative: a fine-grained Epigenomics-style workflow is scheduled
(a) raw, and (b) after linear clustering, on a cloud whose links are slow
enough to matter.  Clustering turns chain transfers into local data and
shrinks both the achievable MED and the VM count.

It also replays the paper's own clustering instance: contracting the
ungrouped three-pipeline WRF workflow (Fig. 13) with the published
grouping reproduces the grouped task graph (Fig. 14) the experiments use.

Run:  python examples/clustering_study.py
"""

from repro import CriticalGreedyScheduler, MedCCProblem, TransferModel
from repro.clustering import apply_linear_clustering, merge_modules
from repro.workloads import epigenomics_like_workflow, paper_catalog
from repro.workloads.wrf import WRF_GROUPING, wrf_ungrouped_workflow, wrf_workflow


def schedule_and_report(label: str, problem: MedCCProblem, budget: float) -> None:
    cg = CriticalGreedyScheduler()
    result = cg.solve(problem, budget)
    print(
        f"  {label:<22} modules={len(problem.matrices.module_names):3d}  "
        f"budget={budget:7.1f}  MED={result.med:8.2f}  "
        f"cost={result.total_cost:7.1f}"
    )


def main() -> None:
    transfers = TransferModel(bandwidth=0.8, latency=0.3)
    catalog = paper_catalog(4)

    raw = epigenomics_like_workflow(lanes=4)
    clustered = apply_linear_clustering(raw)
    raw_problem = MedCCProblem(
        workflow=raw, catalog=catalog, transfers=transfers
    )
    clustered_problem = MedCCProblem(
        workflow=clustered, catalog=catalog, transfers=transfers
    )
    # Same absolute budget for both: enough for either one's fastest
    # schedule, so the comparison isolates the transfer overhead.
    budget = max(raw_problem.cmax, clustered_problem.cmax)
    print("Epigenomics-style workflow on a slow-link cloud (same budget):")
    schedule_and_report("raw (fine-grained)", raw_problem, budget)
    schedule_and_report("linearly clustered", clustered_problem, budget)
    print(
        "  -> clustering internalizes the chain transfers "
        f"({len(list(raw.edges())) - len(list(clustered.edges()))} edges "
        "disappear), buying a shorter MED for less money"
    )

    print("\nThe paper's own clustering instance (WRF, Fig. 13 -> Fig. 14):")
    ungrouped = wrf_ungrouped_workflow()
    grouped = merge_modules(ungrouped, WRF_GROUPING, name="wrf-grouped")
    reference = wrf_workflow()
    print(
        f"  ungrouped programs: {len(ungrouped.schedulable_names)}  ->  "
        f"aggregate modules: {len(grouped.schedulable_names)}"
    )
    same_edges = {e.key for e in grouped.edges()} == {
        e.key for e in reference.edges()
    }
    print(
        "  contraction reproduces the grouped topology used in the "
        f"experiments: {'yes' if same_edges else 'NO'}"
    )
    for name in sorted(WRF_GROUPING):
        module = grouped.module(name)
        members = dict(module.metadata)["members"]
        print(
            f"    {name}: workload {module.workload:6.1f}  "
            f"<- {', '.join(members)}"
        )


if __name__ == "__main__":
    main()
