#!/usr/bin/env python
"""Operating a budgeted schedule on an unreliable cloud.

The MED-CC model assumes VMs never fail.  Real clouds revoke and crash
instances, and every retry both delays the workflow and *bills again* for
the dead instance's partial lease.  This study runs a Critical-Greedy
schedule for a Montage-style workflow under increasing VM hazard rates
and reports the makespan/cost inflation, plus how often the run would
have busted its planning budget — the number an operator actually needs
before promising a deadline.

Run:  python examples/fault_tolerant_operations.py
"""

from repro import CriticalGreedyScheduler, MedCCProblem
from repro.analysis.stats import bootstrap_mean_ci
from repro.sim import RandomFaults, WorkflowBroker
from repro.workloads import montage_like_workflow, paper_catalog

HAZARD_RATES = (0.0, 0.001, 0.005, 0.02)
RUNS_PER_RATE = 25


def main() -> None:
    problem = MedCCProblem(
        workflow=montage_like_workflow(6),
        catalog=paper_catalog(4),
    )
    budget = problem.median_budget()
    plan = CriticalGreedyScheduler().solve(problem, budget)
    print(
        f"workflow: {problem.workflow.name}, budget {budget:.1f}, "
        f"planned MED {plan.med:.2f}, planned cost {plan.total_cost:.1f}\n"
    )

    print(
        f"{'hazard λ':>9} {'mean MED':>18} {'mean cost':>18} "
        f"{'crashes':>8} {'over-budget':>12}"
    )
    for rate in HAZARD_RATES:
        makespans, costs, crashes, busted = [], [], 0, 0
        for seed in range(RUNS_PER_RATE):
            sim = WorkflowBroker(
                problem=problem,
                schedule=plan.schedule,
                faults=RandomFaults(rate=rate, seed=seed),
            ).run()
            makespans.append(sim.makespan)
            costs.append(sim.total_cost)
            crashes += len(sim.trace.failures)
            busted += sim.total_cost > budget + 1e-9
        med_ci = bootstrap_mean_ci(makespans, seed=1)
        cost_ci = bootstrap_mean_ci(costs, seed=1)
        print(
            f"{rate:9.3f} {med_ci.describe():>18} {cost_ci.describe():>18} "
            f"{crashes:8d} {busted:3d}/{RUNS_PER_RATE}"
        )

    print(
        "\nreading: even modest hazard rates inflate the bill beyond the "
        "planning budget in some runs — an operator should either reserve "
        "headroom below Cmax or re-plan after each crash."
    )


if __name__ == "__main__":
    main()
