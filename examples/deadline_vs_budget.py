#!/usr/bin/env python
"""The two faces of cost-aware scheduling: budget-constrained vs
deadline-constrained (the dual problem from the paper's related work).

MED-CC minimizes delay under a budget (Critical-Greedy); the dual —
surveyed by the paper via Yu et al. and Abrishami et al. — minimizes cost
under a deadline (Deadline-Greedy here).  Sweeping both traces the same
cost/delay Pareto frontier from opposite directions; this example prints
the two frontiers side by side on a CyberShake-style workflow and checks
weak duality empirically.

Run:  python examples/deadline_vs_budget.py
"""

from repro import CriticalGreedyScheduler, DeadlineGreedyScheduler, MedCCProblem
from repro.algorithms import PCPScheduler
from repro.workloads import cybershake_like_workflow, paper_catalog


def main() -> None:
    problem = MedCCProblem(
        workflow=cybershake_like_workflow(sites=4),
        catalog=paper_catalog(4),
    )
    cg = CriticalGreedyScheduler()
    dual = DeadlineGreedyScheduler()

    print(f"workflow: {problem.workflow.name}, "
          f"{len(problem.matrices.module_names)} modules")
    lo, hi = problem.budget_range()
    fast_med = problem.makespan_of(problem.fastest_schedule())
    slow_med = problem.makespan_of(problem.least_cost_schedule())
    print(f"budget range [{lo:g}, {hi:g}], MED range [{fast_med:.2f}, {slow_med:.2f}]\n")

    print("budget-constrained (Critical-Greedy):")
    print(f"{'budget':>8} {'MED':>8} {'cost':>8}")
    cg_points = []
    for budget in problem.budget_levels(8):
        result = cg.solve(problem, budget)
        cg_points.append((budget, result.med, result.total_cost))
        print(f"{budget:8.1f} {result.med:8.2f} {result.total_cost:8.1f}")

    print("\ndeadline-constrained duals (Deadline-Greedy and PCP):")
    print(f"{'deadline':>8} {'DG MED':>8} {'DG cost':>8} {'PCP MED':>8} {'PCP cost':>9}")
    pcp = PCPScheduler()
    for k in range(8):
        deadline = fast_med + (slow_med - fast_med) * k / 7
        dg = dual.solve_deadline(problem, deadline)
        pr = pcp.solve_deadline(problem, deadline)
        print(
            f"{deadline:8.2f} {dg.med:8.2f} {dg.total_cost:8.1f} "
            f"{pr.med:8.2f} {pr.total_cost:9.1f}"
        )

    # Weak duality: feed CG's achieved MED back as a deadline; the dual
    # must meet it without spending more than CG did.
    print("\nweak-duality check (dual must meet CG's MED at <= CG's cost):")
    violations = 0
    for budget, med, cost in cg_points:
        dual_result = dual.solve_deadline(problem, med)
        ok = dual_result.total_cost <= cost + 1e-9 and dual_result.med <= med + 1e-9
        violations += not ok
        print(
            f"  CG(budget={budget:.1f}): MED {med:.2f} @ cost {cost:.1f}  |  "
            f"dual(deadline={med:.2f}): MED {dual_result.med:.2f} @ "
            f"cost {dual_result.total_cost:.1f}  {'ok' if ok else 'VIOLATED'}"
        )
    print(f"\nviolations: {violations} (expected 0)")


if __name__ == "__main__":
    main()
