#!/usr/bin/env python
"""Running a forecasting campaign: an ensemble of workflows, one budget.

A weather centre does not run one WRF workflow — it runs one per region,
under a single operating budget, with regions of different importance.
This example schedules a three-member ensemble (the WRF instance plus two
synthetic regional variants) under a shared budget, comparing:

* priority admission (serve the important regions first) vs
* cheapest admission (serve as many regions as possible),

and shows how the leftover budget flows to whichever member converts
money into speed best.

Run:  python examples/ensemble_campaign.py
"""

from repro import MedCCProblem
from repro.algorithms import EnsembleMember, EnsembleScheduler
from repro.workloads import paper_catalog
from repro.workloads.synthetic import layered_workflow, montage_like_workflow
from repro.workloads.wrf import wrf_problem


def build_members() -> list[EnsembleMember]:
    catalog = paper_catalog(4)
    return [
        EnsembleMember(name="national", problem=wrf_problem(), priority=3),
        EnsembleMember(
            name="coastal",
            problem=MedCCProblem(
                workflow=layered_workflow(3, 3, base_workload=40.0),
                catalog=catalog,
            ),
            priority=2,
        ),
        EnsembleMember(
            name="mosaics",
            problem=MedCCProblem(
                workflow=montage_like_workflow(5), catalog=catalog
            ),
            priority=1,
        ),
    ]


def report(label: str, scheduler: EnsembleScheduler, budget: float) -> None:
    members = build_members()
    result = scheduler.solve(members, budget)
    print(f"{label} (budget {budget:g}):")
    print(f"  admitted: {', '.join(result.admitted)}")
    if result.rejected:
        print(f"  rejected: {', '.join(result.rejected)}")
    for name in result.admitted:
        print(
            f"    {name:<10} MED={result.meds[name]:9.2f}  "
            f"cost={result.costs[name]:8.1f}"
        )
    print(
        f"  total: cost {result.total_cost:.1f} / {budget:g}, "
        f"sum of MEDs {result.total_med:.1f}\n"
    )


def main() -> None:
    members = build_members()
    floor = sum(m.problem.cmin for m in members)
    print(
        f"ensemble of {len(members)} workflows; admitting all of them "
        f"costs at least {floor:.1f}\n"
    )

    # Scarce budget: admission policy decides who runs at all.
    scarce = floor * 0.7
    report("priority admission", EnsembleScheduler(), scarce)
    report(
        "cheapest admission", EnsembleScheduler(admission="cheapest"), scarce
    )

    # Comfortable budget: distribution decides who gets the upgrades.
    report("comfortable budget", EnsembleScheduler(), floor * 1.4)


if __name__ == "__main__":
    main()
