"""Perf-regression harness for the fast critical-path kernel.

Two entry points:

* ``pytest benchmarks/bench_fastpath.py --benchmark-only`` — paper-scale
  pytest-benchmark runs (kernel sweep + one Critical-Greedy solve) with
  the fast/reference equivalence asserted before timing;
* ``python benchmarks/bench_fastpath.py [--scale paper|stress|all]
  [--check] [--out PATH]`` — the JSON emitter behind
  ``BENCH_fastpath.json``: for each scale it measures

  - the CP kernel (µs per sweep, fast vs reference),
  - Critical-Greedy end-to-end (s per solve, fast engine + kernel vs
    reference engine + kernel disabled),
  - a budget sweep (s per grid, ``n_jobs`` 1 vs 4),

  and asserts the fast results are *identical* (schedule, step trace,
  MED, cost — no tolerance) to the reference.  ``--check`` exits
  non-zero on any divergence, which is the CI perf-smoke gate; wall
  clock is recorded but never gated, so CI stays robust to noisy
  runners.

Scales: ``paper`` is the largest size of the paper's Fig. 9 grid,
(m, |Ew|, n) = (100, 2344, 9); ``stress`` is (1000, 3000, 10) — the
acceptance scale for the >= 5x Critical-Greedy speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from bench_meta import stamp_metadata

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.sweep import sweep_budgets
from repro.core import fastpath
from repro.core.critical_path import analyze_critical_path
from repro.workloads.generator import generate_problem

PAPER_SCALE = (100, 2344, 9)
STRESS_SCALE = (1000, 3000, 10)
SCALES = {"paper": PAPER_SCALE, "stress": STRESS_SCALE}
SEED = 20130801  # ICPP 2013 — fixed so the JSON is reproducible
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def _make_problem(size):
    rng = np.random.default_rng(SEED)
    return generate_problem(size, rng)


def _mid_budget(problem) -> float:
    return 0.5 * (problem.cmin + problem.cmax)


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _time_best(fn, repeats: int) -> float:
    """Best-of-N wall time — the standard low-noise point estimate."""
    return min(_time_once(fn) for _ in range(repeats))


def _assert_equal_results(ref, fast, context: str) -> None:
    """Identity (not closeness) of two SchedulerResults."""
    if ref.schedule.assignment != fast.schedule.assignment:
        raise AssertionError(f"{context}: schedules differ")
    if ref.steps != fast.steps:
        raise AssertionError(f"{context}: step traces differ")
    if ref.evaluation.makespan != fast.evaluation.makespan:
        raise AssertionError(f"{context}: MED differs")
    if ref.evaluation.total_cost != fast.evaluation.total_cost:
        raise AssertionError(f"{context}: cost differs")


def _bench_kernel(problem, repeats: int) -> dict:
    schedule = problem.least_cost_schedule()
    durations = schedule.durations(problem.workflow, problem.matrices)
    transfers = problem.transfer_times or None

    ref = analyze_critical_path(problem.workflow, durations, transfers)
    fast = fastpath.fast_critical_path(problem.workflow, durations, transfers)
    if ref != fast.as_analysis():
        raise AssertionError("kernel: fast analysis differs from reference")

    fast_s = _time_best(
        lambda: fastpath.fast_critical_path(problem.workflow, durations, transfers),
        repeats,
    )
    ref_s = _time_best(
        lambda: analyze_critical_path(problem.workflow, durations, transfers),
        repeats,
    )
    return {
        "fast_us_per_sweep": fast_s * 1e6,
        "reference_us_per_sweep": ref_s * 1e6,
        "speedup": ref_s / fast_s,
    }


def _bench_cg(problem, budget: float) -> dict:
    fast_cg = CriticalGreedyScheduler(engine="fast")
    ref_cg = CriticalGreedyScheduler(engine="reference")

    fast_result = fast_cg.solve(problem, budget)
    fast_s = _time_once(lambda: fast_cg.solve(problem, budget))

    previous = fastpath.set_kernel_enabled(False)
    try:
        ref_result = ref_cg.solve(problem, budget)
        ref_s = _time_once(lambda: ref_cg.solve(problem, budget))
    finally:
        fastpath.set_kernel_enabled(previous)

    _assert_equal_results(ref_result, fast_result, "critical-greedy")
    return {
        "fast_s_per_solve": fast_s,
        "reference_s_per_solve": ref_s,
        "speedup": ref_s / fast_s,
        "steps": len(fast_result.steps),
        "med": fast_result.evaluation.makespan,
        "cost": fast_result.evaluation.total_cost,
    }


def _bench_sweep(problem, levels: int) -> dict:
    cg = CriticalGreedyScheduler()
    serial = sweep_budgets(problem, [cg], levels=levels)
    serial_s = _time_once(lambda: sweep_budgets(problem, [cg], levels=levels))
    parallel = sweep_budgets(problem, [cg], levels=levels, n_jobs=4)
    parallel_s = _time_once(
        lambda: sweep_budgets(problem, [cg], levels=levels, n_jobs=4)
    )
    if serial != parallel:
        raise AssertionError("sweep: n_jobs=4 result differs from serial")
    auto = sweep_budgets(problem, [cg], levels=levels, n_jobs="auto")
    auto_s = _time_once(
        lambda: sweep_budgets(problem, [cg], levels=levels, n_jobs="auto")
    )
    if serial != auto:
        raise AssertionError("sweep: n_jobs='auto' result differs from serial")
    return {
        "levels": levels,
        "serial_s_per_grid": serial_s,
        "n_jobs4_s_per_grid": parallel_s,
        "auto_s_per_grid": auto_s,
        "speedup": serial_s / parallel_s,
        "auto_speedup": serial_s / auto_s,
    }


def run_scale(name: str) -> dict:
    size = SCALES[name]
    problem = _make_problem(size)
    budget = _mid_budget(problem)
    kernel_repeats = 20 if name == "paper" else 5
    sweep_levels = 10 if name == "paper" else 4
    return {
        "size": list(size),
        "budget": budget,
        "kernel": _bench_kernel(problem, kernel_repeats),
        "critical_greedy": _bench_cg(problem, budget),
        "sweep": _bench_sweep(problem, sweep_levels),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[*SCALES, "all"], default="paper")
    parser.add_argument(
        "--check",
        action="store_true",
        help="equivalence gate: exit 1 if fast != reference anywhere",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = list(SCALES) if args.scale == "all" else [args.scale]
    # n_jobs timings only show a speedup with real cores to spare; the
    # harness asserts result *parity* regardless.  The metadata block
    # records both CPU views: cpu_count is the machine, effective_affinity
    # is what this process may actually use (containers often pin to a
    # subset — the number that decides whether forking can ever win).
    payload = {
        **stamp_metadata("benchmarks/bench_fastpath.py"),
        "seed": SEED,
        "scales": {},
    }
    try:
        for name in names:
            print(f"[bench_fastpath] scale={name} ...", flush=True)
            payload["scales"][name] = run_scale(name)
            cg = payload["scales"][name]["critical_greedy"]
            print(
                f"[bench_fastpath]   CG {cg['reference_s_per_solve']:.3f}s -> "
                f"{cg['fast_s_per_solve']:.3f}s ({cg['speedup']:.1f}x), "
                f"{cg['steps']} steps",
                flush=True,
            )
    except AssertionError as exc:
        print(f"[bench_fastpath] DIVERGENCE: {exc}", file=sys.stderr)
        if args.check:
            return 1
        raise

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_fastpath] wrote {args.out}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points (paper scale only — CI friendly)
# --------------------------------------------------------------------- #


def bench_kernel_sweep(benchmark, save_report):
    problem = _make_problem(PAPER_SCALE)
    schedule = problem.least_cost_schedule()
    durations = schedule.durations(problem.workflow, problem.matrices)
    ref = analyze_critical_path(problem.workflow, durations, None)
    result = benchmark(fastpath.fast_critical_path, problem.workflow, durations, None)
    assert result.as_analysis() == ref
    save_report(
        "fastpath_kernel",
        f"paper-scale kernel sweep: makespan={result.makespan:.6f} "
        f"(matches reference)",
    )


def bench_critical_greedy_fast(benchmark, save_report):
    problem = _make_problem(PAPER_SCALE)
    budget = _mid_budget(problem)
    fast_cg = CriticalGreedyScheduler(engine="fast")
    ref = CriticalGreedyScheduler(engine="reference").solve(problem, budget)
    result = benchmark.pedantic(
        fast_cg.solve, args=(problem, budget), rounds=3, iterations=1
    )
    _assert_equal_results(ref, result, "critical-greedy (pytest bench)")
    save_report(
        "fastpath_cg",
        f"paper-scale CG: {len(result.steps)} steps, "
        f"MED={result.evaluation.makespan:.6f} (fast == reference)",
    )


if __name__ == "__main__":
    sys.exit(main())
