"""Benchmark regenerating paper Fig. 7 (% of instances reaching optimal).

Full paper scale: 100 random instances per problem size, median budget.
"""

from repro.experiments.fig7 import run_fig7


def bench_fig7(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_fig7(instances_per_size=100), rounds=1, iterations=1
    )
    # Shape: CG reaches the optimum more often than GAIN3 at every size.
    for _, cg_pct, gain_pct in report.rows:
        assert cg_pct >= gain_pct
    save_report("fig7", report.render())
