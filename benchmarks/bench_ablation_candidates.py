"""Ablation: CG's critical-path-restricted candidate set vs all modules.

DESIGN.md calls out the candidate-set restriction as Critical-Greedy's key
design choice.  This bench runs CG with ``candidate_scope="critical"``
(the paper's algorithm) and ``candidate_scope="all"`` over a fixed set of
random instances and compares both solution quality and per-solve work
(candidate evaluations via iteration counts).

Expected outcome: restricting to critical modules never hurts the MED
(non-critical upgrades cannot shorten the makespan — they only consume
budget) and does less work per iteration.
"""

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.sweep import sweep_budgets
from repro.analysis.tables import format_table
from repro.workloads.generator import generate_problem

_SIZES = ((15, 65, 5), (30, 269, 6), (50, 503, 7))


def _problems():
    rng = np.random.default_rng(404)
    return [generate_problem(size, rng) for size in _SIZES for _ in range(3)]


def bench_ablation_candidate_scope(benchmark, save_report):
    problems = _problems()
    critical = CriticalGreedyScheduler(candidate_scope="critical")
    everything = CriticalGreedyScheduler(candidate_scope="all")

    def run():
        rows = []
        for problem in problems:
            sweep_c = sweep_budgets(problem, [critical], levels=8)
            meds_c = sweep_c.average_med("critical-greedy")
            meds_a = np.mean(
                [
                    everything.solve(problem, point.budget).med
                    for point in sweep_c.points
                ]
            )
            rows.append((problem.workflow.name, meds_c, float(meds_a)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Quality shape: the restriction never costs more than ~1% on average.
    avg_c = np.mean([r[1] for r in rows])
    avg_a = np.mean([r[2] for r in rows])
    assert avg_c <= avg_a * 1.01
    save_report(
        "ablation_candidates",
        format_table(
            ("instance", "CG critical-scope avg MED", "CG all-scope avg MED"),
            rows,
            title="Ablation: candidate scope (critical path vs all modules)",
        )
        + f"\n\nmean MED: critical={avg_c:.2f} all={avg_a:.2f}",
    )
