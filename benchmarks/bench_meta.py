"""Shared provenance stamping for every ``BENCH_*.json`` emitter.

A committed benchmark JSON is a *trajectory point*: later PRs compare
against it to argue a speedup or catch a regression.  That comparison is
only meaningful when the numeric environment is recorded alongside the
numbers — the same solve can differ across numpy releases, BLAS builds
or CPU budgets.  :func:`stamp_metadata` returns the canonical metadata
block all ``benchmarks/bench_*.py`` emitters merge into their payload:

* ``generated_by`` / ``git_sha`` — which script at which commit;
* ``python_version`` / ``numpy_version`` / ``blas`` — the numeric stack
  (BLAS name, version and runtime configuration string);
* ``cpu_count`` / ``effective_affinity`` — the machine vs what this
  process may actually use (containers often pin to a subset);
* ``bench_schema_version`` — bumped when the metadata block itself
  changes shape, so trajectory tooling can parse historical files.
"""

from __future__ import annotations

import os
import platform
import subprocess
from pathlib import Path
from typing import Any

import numpy as np

from repro.analysis.sweep import effective_cpu_count

__all__ = ["BENCH_SCHEMA_VERSION", "stamp_metadata"]

#: Version of the shared metadata block (not of any bench's own fields).
BENCH_SCHEMA_VERSION = 2

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str | None:
    """The current commit hash, or ``None`` outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _blas_info() -> dict[str, Any]:
    """Name/version/configuration of the BLAS numpy was built against."""
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
    except (TypeError, AttributeError):  # very old numpy: no dict mode
        return {"name": None, "version": None, "configuration": None}
    return {
        "name": blas.get("name"),
        "version": blas.get("version"),
        "configuration": blas.get("openblas configuration"),
    }


def stamp_metadata(generated_by: str) -> dict[str, Any]:
    """The canonical metadata block for one ``BENCH_*.json`` payload.

    Merge it first (``payload = {**stamp_metadata(...), ...}``) so a
    bench can still override or extend individual fields.
    """
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": generated_by,
        "git_sha": _git_sha(),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "blas": _blas_info(),
        "cpu_count": os.cpu_count(),
        "effective_affinity": effective_cpu_count(),
    }
