"""Closed-loop HTTP throughput: threaded server vs the async core.

``python benchmarks/bench_service.py [--scale paper|smoke]
[--concurrency 4,12,24] [--gate-speedup S] [--gate-mix duplicate|sweep]
[--out PATH]`` — the JSON emitter behind ``BENCH_service.json``.

For each (mix, concurrency) cell it boots a *fresh* threaded server and
a fresh async server (``repro serve --async``) around identical
:class:`SchedulingService` knobs, drives the same request list through
``C`` closed-loop client threads (plain :class:`ServiceClient` — the
wire protocol is shared), and reports requests/second plus the
async/threaded speedup.  Two traffic mixes bracket the design space:

* ``duplicate`` — every round sends the *same* budget from all ``C``
  clients at once (fresh budget per round, so the result cache never
  pre-empts the race).  This is the single-flight coalescer's case: the
  async core runs one solve per round where the threaded server runs up
  to ``C``.
* ``sweep`` — every request carries a distinct budget on one workflow.
  This is the micro-batcher's case: same-group misses drain into one
  structure-of-arrays ``solve_batch`` pass per window.

Before timing, one budget is solved on both servers and the response
``result`` blobs must be byte-identical (``--check`` semantics are
always on — a perf number for a wrong answer is meaningless).

``--gate-speedup S`` fails the run unless the best async/threaded ratio
across the measured concurrency levels reaches ``S`` for ``--gate-mix``;
CI gates 1.0 (never-regress) on the duplicate mix at smoke scale, while
the committed paper-scale JSON records the acceptance numbers (>=2x
duplicate-heavy, >=1.5x sweep-heavy).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import threading
import time
from pathlib import Path

from bench_fastpath import PAPER_SCALE, SEED, _make_problem
from bench_meta import stamp_metadata

from repro.core.serialize import problem_to_dict
from repro.service.aio.http import BackgroundAsyncServer
from repro.service.app import SchedulingService
from repro.service.codec import dumps
from repro.service.http import ServiceClient, make_server
from repro.service.resilience import RetryPolicy

SMOKE_SCALE = (60, 400, 8)
SCALES = {"paper": PAPER_SCALE, "smoke": SMOKE_SCALE}
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Service knobs shared by both servers (fresh instances per cell).
WORKERS = 4
QUEUE = 64
CACHE = 4096
BATCH_WINDOW_S = 0.005
BATCH_MAX = 32

#: Closed-loop rounds per cell; total requests = rounds * concurrency.
ROUNDS = 8


def _budget_grid(problem, count: int) -> list[float]:
    """``count`` distinct feasible budgets spread over the feasible band."""
    lo, hi = problem.cmin, problem.cmax
    if count == 1:
        return [0.5 * (lo + hi)]
    step = (hi - lo) / (count + 1)
    return [lo + step * (i + 1) for i in range(count)]


def _requests_for(mix: str, payload: dict, budgets: list[float], c: int) -> list[dict]:
    """The request list one cell drives; ``len == ROUNDS * c``."""
    requests: list[dict] = []
    if mix == "duplicate":
        # One fresh budget per round, repeated across every client slot:
        # all C copies race as concurrent cache misses.
        for budget in budgets[:ROUNDS]:
            requests.extend({"problem": payload, "budget": budget} for _ in range(c))
    else:
        for budget in budgets[: ROUNDS * c]:
            requests.append({"problem": payload, "budget": budget})
    return requests


class _ThreadedServer:
    """Threaded baseline with the BackgroundAsyncServer lifecycle shape."""

    def __init__(self, service: SchedulingService) -> None:
        self.service = service
        self._httpd = make_server(service)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        self.base_url = f"http://127.0.0.1:{self._httpd.server_address[1]}"

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


def _boot(kind: str) -> tuple[object, str, SchedulingService]:
    service = SchedulingService(
        max_workers=WORKERS, queue_size=QUEUE, cache_size=CACHE
    )
    if kind == "threaded":
        server = _ThreadedServer(service)
        return server, server.base_url, service
    server = BackgroundAsyncServer(
        service,
        max_workers=WORKERS,
        queue_size=QUEUE,
        batch_window=BATCH_WINDOW_S,
        batch_max=BATCH_MAX,
    )
    return server, server.base_url, service


def _drive(base_url: str, requests: list[dict], c: int) -> tuple[float, int]:
    """Closed loop: C clients drain the shared list; returns (wall_s, errors)."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    errors = [0] * c
    barrier = threading.Barrier(c + 1)

    def worker(slot: int) -> None:
        # Transport-level retry only: a connection reset under a c=24
        # accept burst is measurement noise, not a benchmark outcome.
        client = ServiceClient(
            base_url, retry=RetryPolicy(max_retries=3, base_delay=0.02)
        )
        barrier.wait(30)
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            response = client.solve(requests[index])
            if response.get("status") != "ok":
                errors[slot] += 1

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(c)]
    for thread in threads:
        thread.start()
    barrier.wait(30)
    start = time.perf_counter()
    for thread in threads:
        thread.join(600)
    return time.perf_counter() - start, sum(errors)


def _assert_parity(payload: dict, budget: float) -> None:
    """Same budget through both stacks must yield byte-identical results."""
    request = {"problem": payload, "budget": budget}
    blobs = {}
    for kind in ("threaded", "async"):
        server, base_url, service = _boot(kind)
        try:
            response = ServiceClient(base_url).solve(request)
            if response.get("status") != "ok":
                raise AssertionError(f"{kind}: parity solve failed: {response}")
            blobs[kind] = dumps(response["result"])
        finally:
            server.stop()  # type: ignore[attr-defined]
            service.close()
    if blobs["threaded"] != blobs["async"]:
        raise AssertionError("async result diverges from threaded result")


def run_cell(kind: str, mix: str, payload: dict, budgets: list[float], c: int) -> dict:
    server, base_url, service = _boot(kind)
    try:
        requests = _requests_for(mix, payload, budgets, c)
        gc.collect()
        wall_s, errors = _drive(base_url, requests, c)
        if errors:
            raise AssertionError(f"{kind}/{mix}/c={c}: {errors} failed requests")
        stats = service.stats()
        cell = {
            "requests": len(requests),
            "wall_s": wall_s,
            "throughput_rps": len(requests) / wall_s,
        }
        if kind == "async":
            core = server.core  # type: ignore[attr-defined]
            aio = core.stats()["aio"]
            cell["coalesced"] = aio["coalesced"]
            cell["batch_windows"] = aio["batch_windows"]
            cell["batched_items"] = aio["batched_items"]
        else:
            cell["cache_hits"] = stats["cache"]["hits"]
        return cell
    finally:
        server.stop()  # type: ignore[attr-defined]
        service.close()


def run_scale(name: str, concurrency: list[int]) -> dict:
    size = SCALES[name]
    problem = _make_problem(size)
    payload = problem_to_dict(problem)
    budgets = _budget_grid(problem, ROUNDS * max(concurrency))
    _assert_parity(payload, budgets[0])

    out: dict = {"size": list(size), "mixes": {}}
    for mix in ("duplicate", "sweep"):
        levels = {}
        for c in concurrency:
            threaded = run_cell("threaded", mix, payload, budgets, c)
            asynchronous = run_cell("async", mix, payload, budgets, c)
            speedup = (
                asynchronous["throughput_rps"] / threaded["throughput_rps"]
            )
            levels[str(c)] = {
                "threaded": threaded,
                "async": asynchronous,
                "speedup": speedup,
            }
            print(
                f"[bench_service]   {mix} c={c}: "
                f"threaded {threaded['throughput_rps']:.1f} rps vs "
                f"async {asynchronous['throughput_rps']:.1f} rps "
                f"({speedup:.2f}x)",
                flush=True,
            )
        levels_list = [levels[str(c)]["speedup"] for c in concurrency]
        out["mixes"][mix] = {
            "concurrency": levels,
            "best_speedup": max(levels_list),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=list(SCALES), default="paper")
    parser.add_argument(
        "--concurrency",
        default="4,12,24",
        help="comma-separated closed-loop client counts (default 4,12,24)",
    )
    parser.add_argument(
        "--gate-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless the best async/threaded ratio on --gate-mix "
        "reaches S (CI uses 1.0 on the duplicate mix at smoke scale)",
    )
    parser.add_argument(
        "--gate-mix", choices=["duplicate", "sweep"], default="duplicate"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    concurrency = [int(part) for part in args.concurrency.split(",") if part]
    payload = {
        **stamp_metadata("benchmarks/bench_service.py"),
        "seed": SEED,
        "rounds": ROUNDS,
        "service": {
            "max_workers": WORKERS,
            "queue_size": QUEUE,
            "cache_size": CACHE,
            "batch_window_ms": BATCH_WINDOW_S * 1000.0,
            "batch_max": BATCH_MAX,
        },
        "scales": {},
    }
    print(f"[bench_service] scale={args.scale} ...", flush=True)
    try:
        payload["scales"][args.scale] = run_scale(args.scale, concurrency)
    except AssertionError as exc:
        print(f"[bench_service] FAILED: {exc}", file=sys.stderr)
        return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_service] wrote {args.out}", flush=True)

    if args.gate_speedup is not None:
        best = payload["scales"][args.scale]["mixes"][args.gate_mix][
            "best_speedup"
        ]
        if best < args.gate_speedup:
            print(
                f"[bench_service] GATE FAILED: best {args.gate_mix} speedup "
                f"{best:.2f}x < required {args.gate_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"[bench_service] gate ok: {best:.2f}x >= "
            f"{args.gate_speedup:.2f}x on {args.gate_mix}",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
