"""Perf harness for the live-workflow engine's per-event re-solve.

Two entry points:

* ``pytest benchmarks/bench_live.py --benchmark-only`` — paper-scale
  pytest-benchmark run of a full drifting event stream through a warm
  :class:`repro.live.state.LiveWorkflow`, with the zero-drift identity
  asserted before timing;
* ``python benchmarks/bench_live.py [--scale paper|stress|all]
  [--check] [--gate-speedup S] [--out PATH]`` — the JSON emitter behind
  ``BENCH_live.json``: for each scale it

  - replays a full started/completed event stream (every schedulable
    module 1.25x late, so *every* completion reconciles actuals, bills
    drift and re-runs the repair + upgrade loops) through one warm
    ``LiveWorkflow`` and reports the mean per-event latency, and
  - times the stateless alternative — a from-scratch
    :class:`CriticalGreedyScheduler` solve of the whole problem, which
    is what a node without the live subsystem would pay on every event —
    and reports the ratio, and
  - micro-benchmarks the durability tax: per-record append latency on
    the live log with ``fsync`` on (the default) vs off
    (``--live-fsync=off``, unsafe), under a ``durability`` key — so the
    cost of the crash-safety guarantee is a measured number, not
    folklore.

``--check`` additionally replays a *zero-drift* stream and exits
non-zero unless the revision counter stays 0 and the final assignment
is identical to the offline plan (the warm engine is a bitwise
continuation of the solver, not a near-miss).  ``--gate-speedup S``
fails the run if the from-scratch solve is not at least ``S`` x slower
than a live event; CI gates ``5.0`` at stress scale — the acceptance
bar — while absolute wall clock is never gated.

Scales match ``bench_fastpath.py``: ``paper`` is (m, |Ew|, n) =
(100, 2344, 9), ``stress`` is (1000, 3000, 10).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from bench_fastpath import SCALES, SEED, _make_problem, _time_best
from bench_meta import stamp_metadata

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.live.state import LiveWorkflow

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_live.json"

#: Lateness factor for the drifting stream: enough to force a repair +
#: re-optimize pass on every completion, the live engine's worst case.
DRIFT = 1.25


def _mid_budget(problem) -> float:
    lo, hi = problem.budget_range()
    return 0.5 * (lo + hi)


def _make_live(problem, budget: float) -> LiveWorkflow:
    scheduler = CriticalGreedyScheduler()
    plan = scheduler.solve(problem, budget)
    return LiveWorkflow(
        "bench",
        problem,
        budget,
        plan,
        candidate_scope=scheduler.candidate_scope,
        transfer_aware=scheduler.transfer_aware,
    )


def _event_stream(problem, live: LiveWorkflow, drift: float) -> list[dict]:
    """A full-run started/completed stream in topological order."""
    workflow = problem.workflow
    matrices = problem.matrices
    events: list[dict] = []
    seq = 1
    for name in workflow.topological_order():
        module = workflow.module(name)
        if module.is_schedulable:
            row = matrices.row_index[name]
            duration = drift * matrices.time(name, live._columns[row])
        else:
            duration = float(module.fixed_time or 0.0)
        events.append({"seq": seq, "type": "started", "module": name})
        events.append(
            {"seq": seq + 1, "type": "completed", "module": name, "duration": duration}
        )
        seq += 2
    return events


def _replay(live: LiveWorkflow, events: list[dict]) -> float:
    """Feed every event; returns the wall time spent in handle_event."""
    start = time.perf_counter()
    for event in events:
        live.handle_event(event)
    return time.perf_counter() - start


def _check_zero_drift(problem, budget: float) -> None:
    plan = CriticalGreedyScheduler().solve(problem, budget)
    live = _make_live(problem, budget)
    _replay(live, _event_stream(problem, live, 1.0))
    if live.revision != 0:
        raise AssertionError(
            f"zero-drift replay bumped the revision to {live.revision}"
        )
    if not live.is_complete():
        raise AssertionError("zero-drift replay did not complete the workflow")
    if live.schedule().assignment != plan.schedule.assignment:
        raise AssertionError("zero-drift final assignment differs from offline plan")


def run_scale(name: str, *, check: bool = False) -> dict:
    size = SCALES[name]
    problem = _make_problem(size)
    budget = _mid_budget(problem)
    repeats = 3 if name == "paper" else 2

    if check:
        _check_zero_drift(problem, budget)

    # Warm path: one LiveWorkflow per repeat (construction untimed — the
    # warm engine is the thing under test), full drifting stream timed.
    best_total = None
    revisions = 0
    events = 0
    for _ in range(repeats):
        live = _make_live(problem, budget)
        stream = _event_stream(problem, live, DRIFT)
        gc.collect()
        total = _replay(live, stream)
        if not live.is_complete():
            raise AssertionError(f"{name}: drifting replay did not complete")
        if not live.over_budget and live.projected_cost > live.budget + 1e-6:
            raise AssertionError(f"{name}: revised plan exceeds the budget")
        best_total = total if best_total is None else min(best_total, total)
        revisions = live.revision
        events = len(stream)

    live_event_s = best_total / events

    # The stateless alternative: re-solve the whole problem from scratch
    # (fresh scheduler, no warm workspace) — once per event.
    gc.collect()
    solve_s = _time_best(
        lambda: CriticalGreedyScheduler().solve(problem, budget), repeats
    )

    return {
        "size": list(size),
        "budget": budget,
        "events": events,
        "revisions": revisions,
        "drift_factor": DRIFT,
        "live_event_s": live_event_s,
        "from_scratch_solve_s": solve_s,
        "speedup_vs_from_scratch": solve_s / live_event_s,
    }


def run_durability(appends: int = 512, repeats: int = 3) -> dict:
    """Per-record append latency on the live log, fsync on vs off.

    Times :meth:`repro.live.iofault.LogIO.append` over a realistic
    canonical event record — the exact call ``LiveWorkflowManager``
    makes per acknowledged event — so the JSON carries the measured
    price of the durability default and of opting out.
    """
    import tempfile

    from repro.live.iofault import LogIO
    from repro.service.codec import dumps as codec_dumps

    record = (
        codec_dumps(
            {
                "kind": "event",
                "payload": {
                    "seq": 123,
                    "type": "completed",
                    "module": "w42",
                    "duration": 1.625,
                },
                "digest": "0" * 64,
            }
        )
        + "\n"
    ).encode("utf-8")
    io = LogIO()
    out: dict = {"appends": appends, "record_bytes": len(record)}
    for fsync in (True, False):
        best = None
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="bench-live-io-") as tmp:
                path = Path(tmp) / "wf.jsonl"
                io.append(path, record, fsync=fsync)  # create outside the clock
                gc.collect()
                start = time.perf_counter()
                for _n in range(appends):
                    io.append(path, record, fsync=fsync)
                elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        key = "fsync_on_append_s" if fsync else "fsync_off_append_s"
        out[key] = best / appends
    out["fsync_cost_ratio"] = out["fsync_on_append_s"] / out["fsync_off_append_s"]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[*SCALES, "all"], default="all")
    parser.add_argument(
        "--check",
        action="store_true",
        help="identity gate: exit 1 unless a zero-drift replay keeps "
        "revision 0 and reproduces the offline assignment",
    )
    parser.add_argument(
        "--gate-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless a from-scratch solve costs at least S x one "
        "live event on every measured scale (CI uses 5.0 on stress)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = list(SCALES) if args.scale == "all" else [args.scale]
    payload = {
        **stamp_metadata("benchmarks/bench_live.py"),
        "seed": SEED,
        "scales": {},
    }
    try:
        for name in names:
            print(f"[bench_live] scale={name} ...", flush=True)
            payload["scales"][name] = run_scale(name, check=args.check)
            scale = payload["scales"][name]
            print(
                f"[bench_live]   {scale['events']} events "
                f"({scale['revisions']} revisions): "
                f"{scale['live_event_s'] * 1e3:.3f} ms/event vs "
                f"{scale['from_scratch_solve_s'] * 1e3:.3f} ms from-scratch "
                f"({scale['speedup_vs_from_scratch']:.1f}x)",
                flush=True,
            )
    except AssertionError as exc:
        print(f"[bench_live] DIVERGENCE: {exc}", file=sys.stderr)
        if args.check:
            return 1
        raise

    print("[bench_live] durability micro-bench ...", flush=True)
    payload["durability"] = run_durability()
    durability = payload["durability"]
    print(
        f"[bench_live]   append {durability['record_bytes']} B: "
        f"{durability['fsync_on_append_s'] * 1e6:.1f} us fsync=on vs "
        f"{durability['fsync_off_append_s'] * 1e6:.1f} us fsync=off "
        f"({durability['fsync_cost_ratio']:.1f}x)",
        flush=True,
    )

    if args.gate_speedup is not None:
        for name, scale in payload["scales"].items():
            if scale["speedup_vs_from_scratch"] < args.gate_speedup:
                print(
                    f"[bench_live] REGRESSION: scale={name} live event "
                    f"{scale['live_event_s'] * 1e3:.3f} ms is only "
                    f"{scale['speedup_vs_from_scratch']:.1f}x faster than a "
                    f"from-scratch solve (gate {args.gate_speedup:g}x)",
                    file=sys.stderr,
                )
                return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_live] wrote {args.out}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry point (paper scale only — CI friendly)
# --------------------------------------------------------------------- #


def bench_live_event_stream(benchmark, save_report):
    problem = _make_problem(SCALES["paper"])
    budget = _mid_budget(problem)
    _check_zero_drift(problem, budget)

    def _round():
        live = _make_live(problem, budget)
        stream = _event_stream(problem, live, DRIFT)
        _replay(live, stream)
        return live, stream

    live, stream = benchmark.pedantic(_round, rounds=3, iterations=1)
    save_report(
        "live_events",
        f"paper-scale drifting stream: {len(stream)} events, "
        f"{live.revision} revisions, zero-drift identity checked",
    )


if __name__ == "__main__":
    sys.exit(main())
