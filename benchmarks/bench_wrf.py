"""Benchmark regenerating paper Tables V-VII + Fig. 15 (WRF study)."""

from repro.experiments.wrf import run_wrf
from repro.workloads.wrf import wrf_problem


def bench_wrf(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_wrf(simulate=True), rounds=3, iterations=1
    )
    # Shape: the instance's cost range matches the paper exactly, CG never
    # loses to GAIN3, and the published CG row at budget 147.5 reproduces.
    problem = wrf_problem()
    assert abs(problem.cmin - 125.9) < 1e-6
    assert abs(problem.cmax - 243.6) < 1e-6
    for cg_med, gain_med in zip(report.data["cg_meds"], report.data["gain_meds"]):
        assert cg_med <= gain_med + 1e-9
    assert report.rows[0][1] == "111121"
    save_report("wrf_table7_fig15", report.render())
