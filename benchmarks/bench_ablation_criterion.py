"""Ablation: CG's largest-ΔT criterion vs ratio-based selection.

DESIGN.md's second called-out design choice: Critical-Greedy reschedules
by the *largest affordable time decrease* while the GAIN family uses a
*time-per-cost ratio*.  This bench separates the two axes by comparing:

* ``critical-greedy``   — CP-restricted, ΔT-first (the paper),
* ``gain3``             — all modules, relative ratio (the paper baseline),
* ``gain-absolute``     — all modules, absolute ratio (strong variant).

Expected outcome (recorded in EXPERIMENTS.md): CG clearly beats gain3; the
absolute-ratio variant is competitive with CG, showing the CP restriction
— not the ΔT-first criterion — is what protects CG from wasting budget.
"""

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.gain import Gain3Scheduler, GainAbsoluteScheduler
from repro.analysis.sweep import sweep_budgets
from repro.analysis.tables import format_table
from repro.workloads.generator import generate_problem

_SIZES = ((15, 65, 5), (30, 269, 6), (50, 503, 7))


def bench_ablation_criterion(benchmark, save_report):
    rng = np.random.default_rng(505)
    problems = [generate_problem(size, rng) for size in _SIZES for _ in range(3)]
    schedulers = [
        CriticalGreedyScheduler(),
        Gain3Scheduler(),
        GainAbsoluteScheduler(),
    ]

    def run():
        rows = []
        for problem in problems:
            sweep = sweep_budgets(problem, schedulers, levels=8)
            rows.append(
                (
                    problem.workflow.name,
                    sweep.average_med("critical-greedy"),
                    sweep.average_med("gain3"),
                    sweep.average_med("gain-absolute"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cg = np.mean([r[1] for r in rows])
    gain3 = np.mean([r[2] for r in rows])
    absolute = np.mean([r[3] for r in rows])
    assert cg <= gain3 + 1e-9  # CG beats the paper baseline on average
    save_report(
        "ablation_criterion",
        format_table(
            ("instance", "CG", "GAIN3 (relative)", "GAIN (absolute)"),
            rows,
            title="Ablation: selection criterion (avg MED, lower is better)",
        )
        + f"\n\nmeans: CG={cg:.2f} gain3={gain3:.2f} gain-absolute={absolute:.2f}",
    )
