"""Benchmark regenerating paper Table III (CG vs exhaustive optimum)."""

from repro.experiments.table3 import run_table3


def bench_table3(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_table3(instances_per_size=5), rounds=3, iterations=1
    )
    # Shape: CG can never beat the optimum and matches it in most cells.
    for row in report.rows:
        _, _, cg_med, opt_med, _ = row
        assert cg_med >= opt_med - 1e-9
    assert report.data["matches"] >= report.data["total"] * 0.5
    save_report("table3", report.render())
