"""Benchmark for VM-reuse packing (paper §V-B and §VI-C3).

The paper observes that "due to VM reuse, the number of actual VMs needed
is generally less than the number of workflow modules".  This bench packs
Critical-Greedy schedules on the numerical example, the WRF workflow and
random instances, and reports VM counts and billed-cost savings under both
packing modes.
"""

import numpy as np

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.tables import format_table
from repro.core.billing import HourlyBilling
from repro.sim.broker import WorkflowBroker
from repro.sim.packing import pack_schedule
from repro.workloads.example import example_problem
from repro.workloads.generator import generate_problem
from repro.workloads.wrf import wrf_problem


def _cases():
    rng = np.random.default_rng(707)
    cases = [("example@57", example_problem(), 57.0)]
    wrf = wrf_problem()
    cases += [(f"wrf@{b:g}", wrf, b) for b in (147.5, 186.2)]
    for size in ((15, 65, 5), (30, 269, 6)):
        problem = generate_problem(size, rng)
        budget = problem.median_budget()
        cases.append((f"random{size}", problem, budget))
    return cases


def bench_vm_reuse(benchmark, save_report):
    cg = CriticalGreedyScheduler()
    cases = _cases()

    def run():
        rows = []
        for label, problem, budget in cases:
            result = cg.solve(problem, budget)
            modules = len(problem.matrices.module_names)
            row = [label, modules, result.total_cost]
            for mode in ("adjacent", "interval"):
                plan = pack_schedule(problem, result.schedule, mode=mode)
                sim = WorkflowBroker(
                    problem=problem, schedule=result.schedule, vm_plan=plan
                ).run()
                assert abs(sim.makespan - result.med) < 1e-6
                row.extend([plan.num_vms, sim.total_cost])
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        _, modules, unpacked_cost, adj_vms, adj_cost, int_vms, int_cost = row
        assert adj_vms <= modules
        assert int_vms <= adj_vms  # interval packs at least as tight
        # Back-to-back sharing merges round-ups: never more expensive.
        assert adj_cost <= unpacked_cost + 1e-9
    assert any(row[3] < row[1] for row in rows)  # reuse actually happens
    save_report(
        "vm_reuse",
        format_table(
            (
                "case",
                "modules",
                "per-module cost",
                "VMs (adjacent)",
                "cost (adjacent)",
                "VMs (interval)",
                "cost (interval)",
            ),
            rows,
            title="VM-reuse packing: provisioned VMs and billed cost "
            "(makespan unchanged in all cases)",
        ),
    )
