"""Ablation: instance-hour round-up billing vs exact (per-second) billing.

A structural observation this reproduction surfaces (EXPERIMENTS.md): with
the paper's proportionally priced catalogs, the *entire* cost/delay
trade-off of MED-CC is created by the round-up of Eq. 7 — under exact
billing every VM type costs the same per unit of work, so the budget range
[Cmin, Cmax] collapses and the scheduling problem degenerates.

This bench quantifies that: the relative width of the budget range
``(Cmax - Cmin) / Cmin`` under hourly vs exact vs 10-minute-block billing.
"""

import numpy as np

from repro.core.billing import BlockBilling, ExactBilling, HourlyBilling
from repro.core.problem import MedCCProblem
from repro.analysis.tables import format_table
from repro.workloads.generator import generate_problem

_SIZES = ((10, 17, 4), (25, 201, 5), (50, 503, 7))

_POLICIES = (
    ("hourly (paper)", HourlyBilling()),
    ("10-min blocks", BlockBilling(1 / 6)),
    ("exact", ExactBilling()),
)


def bench_ablation_billing(benchmark, save_report):
    rng = np.random.default_rng(606)
    base_problems = [generate_problem(size, rng) for size in _SIZES]

    def run():
        rows = []
        for base in base_problems:
            widths = []
            for _, policy in _POLICIES:
                problem = MedCCProblem(
                    workflow=base.workflow,
                    catalog=base.catalog,
                    billing=policy,
                )
                widths.append((problem.cmax - problem.cmin) / problem.cmin)
            rows.append((base.workflow.name, *widths))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    hourly = np.mean([r[1] for r in rows])
    block = np.mean([r[2] for r in rows])
    exact = np.mean([r[3] for r in rows])
    # Shape: finer billing granularity shrinks the trade-off; exact
    # billing (with proportional pricing) collapses it almost entirely.
    assert hourly > block > exact - 1e-12
    assert exact < 0.05 * hourly + 1e-9
    save_report(
        "ablation_billing",
        format_table(
            ("instance", *(name for name, _ in _POLICIES)),
            rows,
            title="Ablation: relative budget-range width (Cmax-Cmin)/Cmin "
            "per billing policy",
            precision=4,
        )
        + f"\n\nmeans: hourly={hourly:.4f} block={block:.4f} exact={exact:.6f}"
        + "\nconclusion: the MED-CC cost/delay trade-off is round-up-driven "
        "under proportional pricing",
    )
