"""Ablation: model-robustness under VM startup latency and finite bandwidth.

The analytical MED-CC model assumes VMs boot instantly ("we can always
launch the VMs in advance", §VI-C2) and intra-cloud transfers are free
(§V).  This bench executes the WRF Critical-Greedy schedule on the DES
simulator while injecting boot latency and finite virtual-link bandwidth,
and reports the makespan drift from the analytical MED — quantifying how
much reality the paper's assumptions hide.
"""

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.analysis.tables import format_table
from repro.core.problem import MedCCProblem, TransferModel
from repro.core.vm import VMType, VMTypeCatalog
from repro.sim.broker import WorkflowBroker
from repro.workloads.wrf import WRF_TE, wrf_catalog, wrf_problem, wrf_workflow

#: Injected VM boot latencies (seconds) — Xen-era boots ran tens of seconds.
_STARTUPS = (0.0, 30.0, 120.0)
#: Injected link bandwidths (data units/second); edges carry size 1.0.
_BANDWIDTHS = (float("inf"), 1.0, 0.05)


def _catalog_with_startup(startup: float) -> VMTypeCatalog:
    return VMTypeCatalog(
        [
            VMType(
                name=vt.name,
                power=vt.power,
                rate=vt.rate,
                startup_time=startup,
            )
            for vt in wrf_catalog()
        ]
    )


def bench_ablation_sim_robustness(benchmark, save_report):
    base = wrf_problem()
    schedule = CriticalGreedyScheduler().solve(base, 186.2).schedule

    def run():
        rows = []
        for startup in _STARTUPS:
            for bandwidth in _BANDWIDTHS:
                problem = MedCCProblem(
                    workflow=wrf_workflow(),
                    catalog=_catalog_with_startup(startup),
                    transfers=TransferModel(bandwidth=bandwidth),
                    measured_te=dict(WRF_TE),
                )
                for prelaunch in (False, True):
                    sim = WorkflowBroker(
                        problem=problem,
                        schedule=schedule,
                        prelaunch=prelaunch,
                    ).run()
                    rows.append(
                        (
                            startup,
                            "inf" if bandwidth == float("inf") else bandwidth,
                            "prelaunch" if prelaunch else "lazy",
                            sim.makespan,
                            sim.makespan - base.makespan_of(schedule),
                            sim.total_cost,
                        )
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = [r for r in rows if r[0] == 0.0 and r[1] == "inf" and r[2] == "lazy"]
    assert baseline[0][4] == 0.0  # zero drift under model assumptions
    # Drift grows monotonically with injected startup under lazy boot.
    lazy_inf = [r[4] for r in rows if r[1] == "inf" and r[2] == "lazy"]
    assert lazy_inf == sorted(lazy_inf)
    # Prelaunch hides boot latency (less drift than lazy at same startup).
    for startup in _STARTUPS[1:]:
        lazy = next(r for r in rows if r[0] == startup and r[1] == "inf" and r[2] == "lazy")
        pre = next(
            r for r in rows if r[0] == startup and r[1] == "inf" and r[2] == "prelaunch"
        )
        assert pre[4] <= lazy[4] + 1e-9
    save_report(
        "ablation_sim",
        format_table(
            ("startup (s)", "bandwidth", "boot policy", "sim MED", "drift", "cost"),
            rows,
            title="Ablation: simulated WRF makespan under injected boot "
            "latency / finite bandwidth (analytical MED = "
            f"{baseline[0][3]:.1f}s)",
        ),
    )
