"""Perf + equivalence harness for the incremental Critical-Greedy engine.

Two entry points:

* ``pytest benchmarks/bench_incremental.py --benchmark-only`` —
  paper-scale pytest-benchmark run of the incremental engine with the
  three-engine equivalence asserted before timing;
* ``python benchmarks/bench_incremental.py [--scale paper|stress|all]
  [--check] [--gate-ratio R] [--out PATH]`` — the JSON emitter behind
  ``BENCH_incremental.json``: for each scale it measures Critical-Greedy
  end-to-end under all three engines

  - ``incremental`` — delta CP sweeps + vectorized candidate argmax +
    per-problem workspace reuse,
  - ``fast`` — one full CSR sweep per iteration + scalar tie-break scan,
  - ``reference`` — the original dict/networkx loop with the kernel
    disabled (the honest pre-kernel baseline, as in
    ``bench_fastpath.py``),

  asserts the three results are *identical* (schedule, step trace, MED,
  cost — no tolerance, byte for byte), and records the incremental sweep
  statistics (how many updates stayed incremental, span work done) plus
  the workspace-reuse effect across a budget sweep.

``--check`` exits non-zero on any divergence — the CI equivalence gate.
``--gate-ratio R`` additionally fails the run if the incremental engine
is slower than ``R ×`` the fast engine on any measured scale; CI uses
``1.0`` on the stress scale only (a generous "never slower than what it
replaces" regression gate — absolute wall clock is never gated, so noisy
runners cannot break the build).

Scales match ``bench_fastpath.py``: ``paper`` is (m, |Ew|, n) =
(100, 2344, 9), ``stress`` is (1000, 3000, 10) — the acceptance scale
for the >= 2x incremental-over-fast speedup.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path

from bench_fastpath import (
    SCALES,
    SEED,
    _assert_equal_results,
    _make_problem,
    _mid_budget,
    _time_best,
    _time_once,
)
from bench_meta import stamp_metadata

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core import fastpath

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def _bench_engines(problem, budget: float, repeats: int) -> dict:
    incremental_cg = CriticalGreedyScheduler(engine="incremental")
    fast_cg = CriticalGreedyScheduler(engine="fast")
    ref_cg = CriticalGreedyScheduler(engine="reference")

    incremental = incremental_cg.solve(problem, budget)
    fast = fast_cg.solve(problem, budget)

    # Time the two kernel engines *before* running the reference: a
    # reference solve churns through millions of short-lived dicts, and
    # the surviving-object pressure it leaves behind skews any timing
    # that follows it.  The first solves above warmed the per-problem
    # workspace, so these repeats measure the steady-state
    # (sweep-reusing) solve the budget sweeps and the service see.
    gc.collect()
    incremental_s = _time_best(
        lambda: incremental_cg.solve(problem, budget), repeats
    )
    gc.collect()
    fast_s = _time_best(lambda: fast_cg.solve(problem, budget), repeats)

    previous = fastpath.set_kernel_enabled(False)
    try:
        reference = ref_cg.solve(problem, budget)
        gc.collect()
        reference_s = _time_once(lambda: ref_cg.solve(problem, budget))
    finally:
        fastpath.set_kernel_enabled(previous)

    _assert_equal_results(reference, fast, "critical-greedy fast")
    _assert_equal_results(reference, incremental, "critical-greedy incremental")

    workspace = incremental_cg._workspace
    sweep = workspace.sweep if workspace is not None else None
    return {
        "incremental_s_per_solve": incremental_s,
        "fast_s_per_solve": fast_s,
        "reference_s_per_solve": reference_s,
        "speedup_vs_fast": fast_s / incremental_s,
        "speedup_vs_reference": reference_s / incremental_s,
        "steps": len(incremental.steps),
        "med": incremental.evaluation.makespan,
        "cost": incremental.evaluation.total_cost,
        "sweep_stats": None
        if sweep is None
        else {
            "updates": sweep.updates,
            "incremental_updates": sweep.incremental_updates,
            "full_sweeps": sweep.full_sweeps,
            "nodes_recomputed": sweep.nodes_recomputed,
            "num_nodes": sweep.index.num_nodes,
        },
    }


def _bench_workspace_reuse(problem, levels: int) -> dict:
    """Repeated solves on one problem: shared scheduler vs fresh ones.

    This is the ``sweep_budgets`` / ``compare_on_instances`` usage
    pattern — one scheduler instance solving the same problem at many
    budgets.  A shared instance keeps its :class:`IncrementalSweep`
    workspace across solves; fresh instances rebuild it every time.
    """
    budgets = problem.budget_levels(levels)
    shared = CriticalGreedyScheduler(engine="incremental")
    shared.solve(problem, budgets[0])  # warm the workspace

    def _shared() -> None:
        for budget in budgets:
            shared.solve(problem, budget)

    def _fresh() -> None:
        for budget in budgets:
            CriticalGreedyScheduler(engine="incremental").solve(problem, budget)

    shared_s = _time_best(_shared, 2)
    fresh_s = _time_best(_fresh, 2)
    return {
        "levels": levels,
        "shared_workspace_s": shared_s,
        "fresh_scheduler_s": fresh_s,
        "reuse_speedup": fresh_s / shared_s,
    }


def run_scale(name: str) -> dict:
    size = SCALES[name]
    problem = _make_problem(size)
    budget = _mid_budget(problem)
    repeats = 5 if name == "paper" else 3
    reuse_levels = 10 if name == "paper" else 4
    return {
        "size": list(size),
        "budget": budget,
        "critical_greedy": _bench_engines(problem, budget, repeats),
        "workspace_reuse": _bench_workspace_reuse(problem, reuse_levels),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[*SCALES, "all"], default="all")
    parser.add_argument(
        "--check",
        action="store_true",
        help="equivalence gate: exit 1 if any engine trio diverges",
    )
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=None,
        metavar="R",
        help="fail if incremental is slower than R x the fast engine "
        "on any measured scale (CI uses 1.0 on stress)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = list(SCALES) if args.scale == "all" else [args.scale]
    payload = {
        **stamp_metadata("benchmarks/bench_incremental.py"),
        "seed": SEED,
        "scales": {},
    }
    try:
        for name in names:
            print(f"[bench_incremental] scale={name} ...", flush=True)
            payload["scales"][name] = run_scale(name)
            cg = payload["scales"][name]["critical_greedy"]
            print(
                f"[bench_incremental]   CG fast {cg['fast_s_per_solve']:.3f}s -> "
                f"incremental {cg['incremental_s_per_solve']:.3f}s "
                f"({cg['speedup_vs_fast']:.2f}x vs fast, "
                f"{cg['speedup_vs_reference']:.1f}x vs reference), "
                f"{cg['steps']} steps",
                flush=True,
            )
    except AssertionError as exc:
        print(f"[bench_incremental] DIVERGENCE: {exc}", file=sys.stderr)
        if args.check:
            return 1
        raise

    if args.gate_ratio is not None:
        for name, scale in payload["scales"].items():
            cg = scale["critical_greedy"]
            if cg["incremental_s_per_solve"] > args.gate_ratio * cg["fast_s_per_solve"]:
                print(
                    f"[bench_incremental] REGRESSION: scale={name} incremental "
                    f"{cg['incremental_s_per_solve']:.3f}s > "
                    f"{args.gate_ratio:g} x fast {cg['fast_s_per_solve']:.3f}s",
                    file=sys.stderr,
                )
                return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_incremental] wrote {args.out}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry point (paper scale only — CI friendly)
# --------------------------------------------------------------------- #


def bench_critical_greedy_incremental(benchmark, save_report):
    problem = _make_problem(SCALES["paper"])
    budget = _mid_budget(problem)
    incremental_cg = CriticalGreedyScheduler(engine="incremental")
    ref = CriticalGreedyScheduler(engine="reference").solve(problem, budget)
    result = benchmark.pedantic(
        incremental_cg.solve, args=(problem, budget), rounds=3, iterations=1
    )
    _assert_equal_results(ref, result, "critical-greedy incremental (pytest bench)")
    save_report(
        "incremental_cg",
        f"paper-scale CG incremental engine: {len(result.steps)} steps, "
        f"MED={result.evaluation.makespan:.6f} (== fast == reference)",
    )


if __name__ == "__main__":
    sys.exit(main())
