"""Benchmarks for the extension experiments: leaderboard and sensitivity."""

from repro.experiments.leaderboard import run_leaderboard
from repro.experiments.sensitivity import run_sensitivity


def bench_leaderboard(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_leaderboard(
            sizes=((10, 17, 4), (20, 80, 5), (40, 434, 6)),
            instances=4,
            levels=6,
        ),
        rounds=1,
        iterations=1,
    )
    avg = {row[0]: row[1] for row in report.rows}
    assert avg["critical-greedy-lookahead"] <= avg["critical-greedy"] + 1e-9
    assert avg["least-cost"] >= avg["critical-greedy"] - 1e-9
    save_report("leaderboard", report.render())


def bench_sensitivity(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_sensitivity(size=(25, 201, 5), instances=3, levels=8),
        rounds=1,
        iterations=1,
    )
    cells = report.data["cells"]
    headline = cells[("lognormal s=2", "arithmetic", "gain3 (relative)")]
    assert headline > 0
    save_report("sensitivity", report.render())


def bench_frontier_quality(benchmark, save_report):
    from repro.experiments.frontier_quality import run_frontier_quality

    report = benchmark.pedantic(
        lambda: run_frontier_quality(instances_per_size=20),
        rounds=1,
        iterations=1,
    )
    overall = report.data["overall"]
    assert overall["CG-lookahead"] <= overall["CG"] + 1e-9
    assert overall["CG"] <= overall["GAIN3"] + 1e-9
    save_report("frontier_quality", report.render())
