"""Benchmark regenerating paper Table II + Fig. 6 (numerical example).

Sweeps Critical-Greedy across the example's full budget range [48, 64] and
verifies the Table II budget bands before timing the sweep.
"""

from repro.experiments.example_schedules import run_example_schedules


def bench_table2(benchmark, save_report):
    report = benchmark.pedantic(run_example_schedules, rounds=3, iterations=1)
    assert report.data["bands_match_paper"] is True
    meds = report.data["meds"]
    assert meds[0] > meds[-1]  # the staircase descends
    save_report("table2_fig6", report.render())
