"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure (or an ablation) and
writes the rendered report to ``benchmarks/results/<name>.txt`` so the
reproduced rows/series are inspectable after a ``pytest benchmarks/
--benchmark-only`` run, independent of pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """The directory collecting rendered benchmark reports."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir: Path):
    """Callable fixture: persist a rendered report under results/."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
