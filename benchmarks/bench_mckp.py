"""Benchmarks for the MCKP substrate and the Section IV reductions.

Times the three exact solvers on a shared random instance family and the
``complexity`` experiment (constructive Theorem 1 / Theorem 2 checks).
"""

import numpy as np

from repro.experiments.complexity import run_complexity
from repro.mckp.branch_bound import solve_branch_and_bound
from repro.mckp.dp import solve_integer_dp, solve_pareto
from repro.mckp.greedy import solve_greedy
from repro.mckp.problem import MCKPInstance


def _instances(num: int = 20, m: int = 12, n: int = 5) -> list[MCKPInstance]:
    rng = np.random.default_rng(77)
    out = []
    for _ in range(num):
        weights = rng.integers(1, 40, size=(m, n)).astype(float)
        profits = rng.integers(1, 60, size=(m, n)).astype(float)
        capacity = float(weights.min(axis=1).sum() + rng.integers(20, 120))
        out.append(
            MCKPInstance.from_lists(weights.tolist(), profits.tolist(), capacity)
        )
    return out


def bench_mckp_pareto_dp(benchmark):
    instances = _instances()

    def run():
        return [solve_pareto(inst).total_profit for inst in instances]

    profits = benchmark(run)
    assert all(p > 0 for p in profits)


def bench_mckp_integer_dp(benchmark):
    instances = _instances()

    def run():
        return [solve_integer_dp(inst).total_profit for inst in instances]

    profits = benchmark(run)
    reference = [solve_pareto(inst).total_profit for inst in instances]
    assert profits == reference


def bench_mckp_branch_and_bound(benchmark):
    instances = _instances(m=8)

    def run():
        return [solve_branch_and_bound(inst).total_profit for inst in instances]

    profits = benchmark(run)
    reference = [solve_pareto(inst).total_profit for inst in instances]
    assert profits == reference


def bench_mckp_greedy_gap(benchmark):
    instances = _instances()

    def run():
        return [solve_greedy(inst).total_profit for inst in instances]

    greedy = benchmark(run)
    exact = [solve_pareto(inst).total_profit for inst in instances]
    # Greedy is feasible and near-exact but never better.
    assert all(g <= e + 1e-9 for g, e in zip(greedy, exact))


def bench_complexity_reductions(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_complexity(trials=10), rounds=1, iterations=1
    )
    assert report.data["all_ok"] is True
    save_report("complexity", report.render())
