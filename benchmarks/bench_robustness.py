"""Benchmark for the estimation-error robustness study (extension)."""

from repro.experiments.robustness import run_robustness


def bench_robustness(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_robustness(runs=30), rounds=1, iterations=1
    )
    cells = report.data["cells"]
    # Margins monotonically reduce the budget-violation rate at every
    # noise level.
    for noise in (0.02, 0.05, 0.10):
        fractions = [
            cells[(margin, noise)]["busted_fraction"]
            for margin in (0.0, 0.05, 0.15)
        ]
        assert fractions[-1] <= fractions[0]
    save_report("robustness", report.render())
