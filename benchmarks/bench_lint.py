"""Cold-vs-warm harness for the deep lint pass and its content-hash cache.

Two entry points:

* ``pytest benchmarks/bench_lint.py --benchmark-only`` — pytest-benchmark
  run of the warm (fully cached) deep self-lint, with the cold/warm
  equivalence asserted before timing;
* ``python benchmarks/bench_lint.py [--repeats N] [--gate-speedup R]
  [--out PATH]`` — the JSON emitter behind ``BENCH_lint.json``: it runs
  ``repro lint --self --deep`` through :func:`repro.lint.lint_source_tree`

  - **cold** — no cache file on disk: every file is read, tokenized and
    parsed, all per-file AST rules run, and the whole-program flow pass
    (symbol table + call graph + RT/RN rules) runs from scratch;
  - **warm** — the cache file written by the cold run is reused: per-file
    results come back by content hash and the flow pass is restored from
    the project digest, so no file is parsed at all;

  asserts the two runs produce *identical* diagnostics (rule, path,
  message, suggestion — the cache must be invisible), and records the
  wall clock for both plus the resulting speedup.

``--gate-speedup R`` (CI uses ``3.0``) fails the run if the warm pass is
not at least ``R ×`` faster than the cold pass — the acceptance gate for
the incremental cache.  Absolute wall clock is never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import repro
from bench_meta import stamp_metadata

from repro.lint import all_rules, lint_source_tree

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_lint.json"
PACKAGE_DIR = Path(repro.__file__).resolve().parent
BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.json"


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _deep_lint(cache_path: Path):
    return lint_source_tree(
        [PACKAGE_DIR],
        deep=True,
        cache_path=cache_path,
        baseline_path=BASELINE if BASELINE.exists() else None,
        name="self",
    )


def _diag_keys(report) -> list[tuple[str, str, str, str]]:
    return [
        (d.rule, d.path, d.message, d.suggestion) for d in report.diagnostics
    ]


def run_bench(repeats: int) -> dict:
    """Measure cold vs warm deep lint; return the BENCH payload fragment."""
    with tempfile.TemporaryDirectory(prefix="repro-lint-bench-") as tmp:
        cache = Path(tmp) / "lint-cache.json"

        # Cold: remove the cache before every repetition so each timing
        # includes read + tokenize + parse + all rule passes.
        cold_reports = []
        cold_times = []
        for _ in range(repeats):
            cache.unlink(missing_ok=True)
            cold_times.append(_time_once(lambda: cold_reports.append(_deep_lint(cache))))
        cold_s = min(cold_times)

        # Warm: the cache file left behind by the last cold run is now
        # fully populated; repeats hit it end to end.
        warm_reports = []
        warm_times = [
            _time_once(lambda: warm_reports.append(_deep_lint(cache)))
            for _ in range(repeats)
        ]
        warm_s = min(warm_times)

    cold = cold_reports[-1]
    warm = warm_reports[-1]
    if _diag_keys(cold) != _diag_keys(warm):
        raise AssertionError(
            "lint cache changed the diagnostics: cold and warm runs must "
            "be indistinguishable"
        )

    files = sum(1 for _ in PACKAGE_DIR.rglob("*.py"))
    return {
        "files": files,
        "rules": len(all_rules()),
        "diagnostics": len(cold.diagnostics),
        "exit_code": cold.exit_code(),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "repeats": repeats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--gate-speedup",
        type=float,
        default=None,
        help="fail unless warm is at least this many times faster than cold",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    print(
        f"[bench_lint] deep self-lint over {PACKAGE_DIR} "
        f"(repeats={args.repeats}) ...",
        flush=True,
    )
    lint = run_bench(args.repeats)
    print(
        f"[bench_lint]   cold {lint['cold_s']:.3f}s -> warm "
        f"{lint['warm_s']:.3f}s ({lint['speedup']:.1f}x), "
        f"{lint['files']} files, {lint['rules']} rules, "
        f"{lint['diagnostics']} diagnostics",
        flush=True,
    )

    if args.gate_speedup is not None and lint["speedup"] < args.gate_speedup:
        print(
            f"[bench_lint] REGRESSION: warm speedup {lint['speedup']:.2f}x "
            f"< required {args.gate_speedup:g}x",
            file=sys.stderr,
        )
        return 1

    payload = {
        **stamp_metadata("benchmarks/bench_lint.py"),
        "lint": lint,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_lint] wrote {args.out}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry point (warm path only — CI friendly)
# --------------------------------------------------------------------- #


def bench_deep_lint_warm(benchmark, save_report, tmp_path):
    cache = tmp_path / "lint-cache.json"
    cold = _deep_lint(cache)  # populates the cache
    warm = benchmark.pedantic(
        lambda: _deep_lint(cache), rounds=3, iterations=1
    )
    assert _diag_keys(cold) == _diag_keys(warm)
    save_report(
        "lint_warm",
        f"deep self-lint, warm cache: {len(warm.diagnostics)} diagnostics, "
        f"exit={warm.exit_code()}",
    )


if __name__ == "__main__":
    sys.exit(main())
