"""Benchmark regenerating paper Table IV + Fig. 8 (all 20 problem sizes).

One random instance per size, 20 budget levels — the paper's exact grid.
"""

from repro.experiments.table4 import run_table4


def bench_table4(benchmark, save_report):
    report = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    improvements = report.data["improvements"]
    # Shape: CG never loses on average, wins overall, and the largest
    # sizes improve more than the smallest one.
    assert all(imp > -2.0 for imp in improvements)
    assert report.data["overall_improvement"] > 0
    assert max(improvements[10:]) > improvements[0]
    save_report("table4_fig8", report.render())
