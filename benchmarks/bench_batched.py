"""Perf + identity harness for the batched (SoA) Critical-Greedy kernel.

Two entry points:

* ``pytest benchmarks/bench_batched.py --benchmark-only`` — paper-scale
  pytest-benchmark run of a 10-level batched budget sweep with the
  per-row identity asserted before timing;
* ``python benchmarks/bench_batched.py [--scale paper|stress|all]
  [--check] [--gate-ratio R] [--out PATH]`` — the JSON emitter behind
  ``BENCH_batched.json``: for each scale it runs a 10-level budget sweep
  three ways

  - ``batched`` — one :meth:`CriticalGreedyScheduler.solve_batch` call
    over :class:`repro.core.fastpath.BatchedSweep` (all budgets in one
    structure-of-arrays run, prefix-sharing the common step work),
  - ``serial`` — the warmed shared-scheduler loop the sweeps used before
    (one incremental-engine solve per budget, workspace reused),
  - ``reference`` — the original dict/networkx engine with the kernel
    disabled (every paper-scale row; one mid row at stress scale, where
    a full reference sweep would take minutes),

  and asserts every batched row is *identical* (schedule, step trace,
  MED, cost, extras — no tolerance, byte for byte) to its serial and
  reference counterparts.

``--check`` exits non-zero on any divergence — the CI identity gate.
``--gate-ratio R`` additionally fails the run if the batched sweep is
slower than ``R ×`` the serial incremental sweep on any measured scale;
CI uses ``1.0`` on stress (never slower than the loop it replaces —
absolute wall clock is never gated, so noisy runners cannot break the
build).

Scales match ``bench_fastpath.py``: ``paper`` is (m, |Ew|, n) =
(100, 2344, 9), ``stress`` is (1000, 3000, 10) — the acceptance scale
for the >= 3x batched-over-serial speedup.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path

from bench_fastpath import (
    SCALES,
    SEED,
    _assert_equal_results,
    _make_problem,
    _time_best,
)
from bench_meta import stamp_metadata

from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.core import fastpath

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_batched.json"

#: Budget levels per sweep — the acceptance-criteria grid width.
LEVELS = 10


def _assert_row_identical(expected, actual, context: str) -> None:
    """Byte-for-byte identity of one batched row against an oracle."""
    _assert_equal_results(expected, actual, context)
    if expected.extras != actual.extras:
        raise AssertionError(f"{context}: extras differ")
    if expected.budget != actual.budget:
        raise AssertionError(f"{context}: budgets differ")


def run_scale(name: str, *, check_reference: bool = True) -> dict:
    size = SCALES[name]
    problem = _make_problem(size)
    budgets = problem.budget_levels(LEVELS)
    repeats = 3 if name == "paper" else 2

    batched_cg = CriticalGreedyScheduler(engine="incremental")
    serial_cg = CriticalGreedyScheduler(engine="incremental")

    batched = batched_cg.solve_batch(problem, budgets)
    serial = [serial_cg.solve(problem, budget) for budget in budgets]
    for level, (batched_row, serial_row) in enumerate(zip(batched, serial), start=1):
        _assert_row_identical(
            serial_row, batched_row, f"{name} level {level}: batched vs incremental"
        )

    reference_rows = 0
    if check_reference:
        # Every row at paper scale; a full reference sweep at stress
        # scale would take minutes, so CI-honesty is one mid row there.
        check_levels = (
            range(len(budgets)) if name == "paper" else [len(budgets) // 2]
        )
        ref_cg = CriticalGreedyScheduler(engine="reference")
        previous = fastpath.set_kernel_enabled(False)
        try:
            for idx in check_levels:
                reference = ref_cg.solve(problem, budgets[idx])
                _assert_row_identical(
                    reference,
                    batched[idx],
                    f"{name} level {idx + 1}: batched vs reference",
                )
                reference_rows += 1
        finally:
            fastpath.set_kernel_enabled(previous)

    # Both contenders are warm (first runs above); serial keeps its
    # IncrementalSweep workspace across budgets, which is the strongest
    # serial baseline the sweeps had before batching.
    gc.collect()
    batched_s = _time_best(lambda: batched_cg.solve_batch(problem, budgets), repeats)
    gc.collect()
    serial_s = _time_best(
        lambda: [serial_cg.solve(problem, budget) for budget in budgets], repeats
    )

    return {
        "size": list(size),
        "levels": LEVELS,
        "budget_lo": budgets[0],
        "budget_hi": budgets[-1],
        "total_steps": sum(len(row.steps) for row in batched),
        "reference_rows_checked": reference_rows,
        "batched_s_per_sweep": batched_s,
        "serial_s_per_sweep": serial_s,
        "speedup_vs_serial": serial_s / batched_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=[*SCALES, "all"], default="all")
    parser.add_argument(
        "--check",
        action="store_true",
        help="identity gate: exit 1 if any batched row diverges from the "
        "incremental or reference engine",
    )
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=None,
        metavar="R",
        help="fail if the batched sweep is slower than R x the serial "
        "incremental sweep on any measured scale (CI uses 1.0 on stress)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    names = list(SCALES) if args.scale == "all" else [args.scale]
    payload = {
        **stamp_metadata("benchmarks/bench_batched.py"),
        "seed": SEED,
        "scales": {},
    }
    try:
        for name in names:
            print(f"[bench_batched] scale={name} ...", flush=True)
            payload["scales"][name] = run_scale(name)
            scale = payload["scales"][name]
            print(
                f"[bench_batched]   {LEVELS}-level sweep: serial "
                f"{scale['serial_s_per_sweep']:.3f}s -> batched "
                f"{scale['batched_s_per_sweep']:.3f}s "
                f"({scale['speedup_vs_serial']:.2f}x), "
                f"{scale['total_steps']} steps, "
                f"{scale['reference_rows_checked']} reference rows checked",
                flush=True,
            )
    except AssertionError as exc:
        print(f"[bench_batched] DIVERGENCE: {exc}", file=sys.stderr)
        if args.check:
            return 1
        raise

    if args.gate_ratio is not None:
        for name, scale in payload["scales"].items():
            if scale["batched_s_per_sweep"] > args.gate_ratio * scale["serial_s_per_sweep"]:
                print(
                    f"[bench_batched] REGRESSION: scale={name} batched "
                    f"{scale['batched_s_per_sweep']:.3f}s > "
                    f"{args.gate_ratio:g} x serial "
                    f"{scale['serial_s_per_sweep']:.3f}s",
                    file=sys.stderr,
                )
                return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench_batched] wrote {args.out}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry point (paper scale only — CI friendly)
# --------------------------------------------------------------------- #


def bench_critical_greedy_batched(benchmark, save_report):
    problem = _make_problem(SCALES["paper"])
    budgets = problem.budget_levels(LEVELS)
    batched_cg = CriticalGreedyScheduler(engine="incremental")
    serial_cg = CriticalGreedyScheduler(engine="incremental")
    serial = [serial_cg.solve(problem, budget) for budget in budgets]
    batched = benchmark.pedantic(
        batched_cg.solve_batch, args=(problem, budgets), rounds=3, iterations=1
    )
    for level, (serial_row, batched_row) in enumerate(zip(serial, batched), start=1):
        _assert_row_identical(
            serial_row, batched_row, f"pytest bench level {level}"
        )
    save_report(
        "batched_cg",
        f"paper-scale {LEVELS}-level batched sweep: "
        f"{sum(len(row.steps) for row in batched)} steps across rows, "
        f"every row == incremental engine",
    )


if __name__ == "__main__":
    sys.exit(main())
