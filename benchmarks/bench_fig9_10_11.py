"""Benchmarks regenerating paper Figs. 9, 10 and 11 (improvement views).

One shared grid (cached across the three benches): all 20 paper sizes,
3 instances per size, 10 budget levels — a reduced-instance version of the
paper's 10x20 grid that preserves every axis.  The grid is computed inside
the first bench; the other two reuse the cache, so the reported times are
compute (fig9) and render-only (fig10/fig11).
"""

from repro.experiments.fig9_10_11 import run_fig9, run_fig10, run_fig11
from repro.experiments.grid import DEFAULT_GRID_SIZES

_PARAMS = dict(
    sizes=DEFAULT_GRID_SIZES,
    instances=3,
    levels=10,
    seed=911,
)


def bench_fig9(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_fig9(**_PARAMS), rounds=1, iterations=1
    )
    per_size = report.data["per_size"]
    # Shape: positive overall; the large-size half improves more than the
    # small-size half (paper: improvement grows with problem size).
    assert report.data["overall"] > 0
    small_half = sum(per_size[:10]) / 10
    large_half = sum(per_size[10:]) / 10
    assert large_half > small_half - 3.0
    save_report("fig9", report.render())


def bench_fig10(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_fig10(**_PARAMS), rounds=1, iterations=1
    )
    per_level = report.data["per_level"]
    # Shape: higher budget levels improve more than the tightest level
    # (paper: "the performance improvement increases as the budget
    # increases").
    assert max(per_level[5:]) > per_level[0]
    save_report("fig10", report.render())


def bench_fig11(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_fig11(**_PARAMS), rounds=1, iterations=1
    )
    surface = report.data["surface"]
    assert len(surface) == len(DEFAULT_GRID_SIZES)
    save_report("fig11", report.render())
