"""Ablation: plain Critical-Greedy vs the lookahead portfolio vs annealing.

Quantifies what the two extension schedulers buy over the paper's
Algorithm 1, with paired statistics (bootstrap CI + sign test) instead of
bare averages.
"""

import numpy as np

from repro.algorithms.annealing import AnnealingScheduler
from repro.algorithms.critical_greedy import CriticalGreedyScheduler
from repro.algorithms.lookahead import LookaheadCriticalGreedyScheduler
from repro.analysis.stats import paired_comparison
from repro.analysis.tables import format_table
from repro.workloads.generator import generate_problem

_SIZES = ((15, 65, 5), (25, 201, 5), (40, 434, 6))


def bench_ablation_lookahead(benchmark, save_report):
    rng = np.random.default_rng(808)
    problems = [generate_problem(size, rng) for size in _SIZES for _ in range(4)]
    plain = CriticalGreedyScheduler()
    lookahead = LookaheadCriticalGreedyScheduler()
    annealing = AnnealingScheduler(iterations=400, seed=3)

    def run():
        rows = []
        meds = {"plain": [], "lookahead": [], "annealing": []}
        for problem in problems:
            budget = problem.median_budget()
            p = plain.solve(problem, budget).med
            l = lookahead.solve(problem, budget).med
            a = annealing.solve(problem, budget).med
            meds["plain"].append(p)
            meds["lookahead"].append(l)
            meds["annealing"].append(a)
            rows.append((problem.workflow.name, p, l, a))
        return rows, meds

    rows, meds = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both extensions are never-worse by construction.
    assert all(l <= p + 1e-9 for p, l in zip(meds["plain"], meds["lookahead"]))
    assert all(a <= p + 1e-9 for p, a in zip(meds["plain"], meds["annealing"]))

    look_cmp = paired_comparison(meds["lookahead"], meds["plain"])
    anneal_cmp = paired_comparison(meds["annealing"], meds["plain"])
    save_report(
        "ablation_lookahead",
        format_table(
            ("instance", "plain CG", "lookahead", "annealing"),
            rows,
            title="Ablation: extension schedulers vs plain Critical-Greedy "
            "(MED at the median budget, lower is better)",
        )
        + "\n\n"
        + look_cmp.describe("lookahead", "plain CG")
        + "\n"
        + anneal_cmp.describe("annealing", "plain CG"),
    )
